"""Ablations: bucket families, scheduler strategies, I/O skipping, Bloom ε.

Not paper figures — these regenerate the design-choice evidence DESIGN.md
section 6 calls out.
"""

from __future__ import annotations

from repro.experiments.ablations import (
    run_bloom_eps_ablation,
    run_bucket_ablation,
    run_io_skip_ablation,
    run_scheduler_ablation,
)


def test_ablation_buckets(benchmark, save_result):
    table = benchmark.pedantic(run_bucket_ablation, rounds=1, iterations=1)
    drifts = {row[0]: float(row[2]) for row in table.rows}
    # Fibonacci tracks the requested alpha at least as well as uniform
    # buckets of the same count (the design claim).
    assert drifts["fibonacci"] <= drifts["uniform"] + 0.05
    save_result("ablation_buckets", table.format())


def test_ablation_schedulers(benchmark, save_result):
    table = benchmark.pedantic(run_scheduler_ablation, rounds=1, iterations=1)
    by_name = {row[0]: float(row[1]) for row in table.rows}
    # locality >= greedy Algorithm 1 >= fractional bound.
    assert by_name["Algorithm 1 (greedy)"] <= by_name["locality (stock Hadoop)"]
    assert by_name["fractional lower bound"] <= by_name["Algorithm 1 (greedy)"] + 0.01
    save_result("ablation_schedulers", table.format())


def test_ablation_io_skip(benchmark, save_result):
    table = benchmark.pedantic(run_io_skip_ablation, rounds=1, iterations=1)
    scan_all, skip = table.rows
    assert int(skip[1]) < int(scan_all[1])  # fewer blocks read
    assert float(skip[3]) <= float(scan_all[3])  # no slower
    save_result("ablation_io_skip", table.format())


def test_ablation_bloom_eps(benchmark, save_result):
    table = benchmark.pedantic(run_bloom_eps_ablation, rounds=1, iterations=1)
    mem = [float(r[1]) for r in table.rows]
    assert all(a >= b for a, b in zip(mem, mem[1:]))  # tighter eps costs more
    save_result("ablation_bloom_eps", table.format())
