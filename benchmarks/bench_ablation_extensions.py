"""Ablations of the extension features (paper future-work directions).

- aggregation-transfer minimization (Section IV-B future work)
- speculative execution vs proactive balancing
"""

from __future__ import annotations

from repro.experiments.ablations import (
    run_aggregation_ablation,
    run_speculation_ablation,
    run_tail_store_ablation,
)


def test_ablation_aggregation(benchmark, save_result):
    table = benchmark.pedantic(run_aggregation_ablation, rounds=1, iterations=1)
    kib = [float(row[1]) for row in table.rows]
    baseline, greedy, hungarian = kib
    # co-location never increases shuffle volume; Hungarian <= greedy.
    assert greedy <= baseline
    assert hungarian <= greedy + 0.1
    save_result("ablation_aggregation", table.format())


def test_ablation_speculation(benchmark, save_result):
    table = benchmark.pedantic(run_speculation_ablation, rounds=1, iterations=1)
    by_name = {row[0]: float(row[1]) for row in table.rows}
    # Speculation cannot beat proactive balancing on data-imbalance
    # stragglers (the backup reprocesses the same oversized input) —
    # true for both the analytic and the event-driven model.
    for variant in (
        "stock + speculation (analytic)",
        "stock + speculation (event-driven)",
    ):
        assert by_name["DataNet (Algorithm 1)"] <= by_name[variant]
        # and speculation never hurts vs doing nothing
        assert by_name[variant] <= by_name["stock locality"] + 1e-6
    save_result("ablation_speculation", table.format())


def test_ablation_tail_store(benchmark, save_result):
    table = benchmark.pedantic(run_tail_store_ablation, rounds=1, iterations=1)
    by_store = {row[0]: row for row in table.rows}
    mem_bloom = float(by_store["bloom"][1])
    mem_cm = float(by_store["countmin"][1])
    acc_bloom = float(by_store["bloom"][2])
    acc_cm = float(by_store["countmin"][2])
    # Count-Min buys accuracy with memory; Bloom stays the frugal choice.
    assert mem_cm > mem_bloom
    assert acc_cm >= acc_bloom - 0.01
    save_result("ablation_tail_store", table.format())
