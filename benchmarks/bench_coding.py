"""Throughput benchmarks for the GF(256) Reed–Solomon codec.

Measures the three coded hot paths — encode, degraded decode, and
single-fragment reconstruction — at the reference (4, 2) geometry over a
64 KiB block payload, and writes the resulting MB/s figures to
``BENCH_coding.json`` at the repo root so throughput regressions show up
in review diffs.  The systematic fast path (all k data fragments present)
is benchmarked separately: it must stay near memcpy speed, since healthy
coded reads take it on every block.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.coding import RSCodec

K, M = 4, 2
PAYLOAD = bytes((i * 31 + 7) % 256 for i in range(64 * 1024))

_RESULTS: dict = {}


@pytest.fixture(scope="module")
def codec() -> RSCodec:
    return RSCodec(K, M)


@pytest.fixture(scope="module")
def fragments(codec):
    return codec.encode(PAYLOAD)


@pytest.fixture(scope="module", autouse=True)
def bench_json():
    """Collect per-path throughput and persist it after the module runs."""
    yield
    if not _RESULTS:
        return
    out = pathlib.Path(__file__).resolve().parent.parent / "BENCH_coding.json"
    payload = {
        "geometry": {"k": K, "m": M, "payload_bytes": len(PAYLOAD)},
        "throughput_mb_per_s": {
            name: round(mbps, 2) for name, mbps in sorted(_RESULTS.items())
        },
    }
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\n[coding throughput saved to {out}]")


def _record(name: str, benchmark, nbytes: int) -> None:
    _RESULTS[name] = nbytes / benchmark.stats["mean"] / 1e6


def test_perf_rs_encode(benchmark, codec):
    fragments = benchmark(codec.encode, PAYLOAD)
    assert len(fragments) == K + M
    _record("encode", benchmark, len(PAYLOAD))


def test_perf_rs_decode_systematic(benchmark, codec, fragments):
    """The healthy-read path: all k data fragments present, no GF math."""
    available = {i: fragments[i] for i in range(K)}

    def decode():
        return codec.reconstruct(available, len(PAYLOAD))

    assert benchmark(decode) == PAYLOAD
    _record("decode_systematic", benchmark, len(PAYLOAD))


def test_perf_rs_decode_degraded(benchmark, codec, fragments):
    """A degraded read: one data fragment lost, parity takes its place."""
    use = [1, 2, 3, K]  # fragment 0 lost; lowest parity stands in
    available = {i: fragments[i] for i in use}

    def decode():
        return codec.reconstruct(available, len(PAYLOAD), indices=use)

    assert benchmark(decode) == PAYLOAD
    _record("decode_degraded", benchmark, len(PAYLOAD))


def test_perf_rs_reconstruct_fragment(benchmark, codec, fragments):
    """Node-loss repair: decode from k survivors, re-encode the lost one."""
    survivors = {i: fragments[i] for i in range(1, K + 1)}

    def rebuild():
        payload = codec.reconstruct(
            survivors, len(PAYLOAD), indices=sorted(survivors)
        )
        return codec.encode(payload)[0]

    assert benchmark(rebuild) == fragments[0]
    _record("reconstruct_fragment", benchmark, len(PAYLOAD))
