"""Concurrent multi-job batch on the event-driven simulator (extension).

Slot contention compounds data imbalance: a hot node delays every job's
maps, so DataNet's balanced placement improves the whole batch and lifts
cluster utilization.
"""

from __future__ import annotations

from repro.experiments.concurrent import run_concurrent


def test_concurrent_batch(benchmark, save_result):
    result = benchmark.pedantic(run_concurrent, rounds=1, iterations=1)

    # the batch completes sooner with DataNet...
    assert result.batch_improvement > 0.05
    # ...and every individual job is at least not hurt
    for job, without in result.job_spans["without"].items():
        assert result.job_spans["with"][job] <= without * 1.10
    # balanced placement keeps more slots busy
    assert result.utilization["with"] >= result.utilization["without"]

    save_result("concurrent_batch", result.format())
