"""Micro-benchmarks of the core data structures (true pytest-benchmark runs).

These measure the library's own hot paths — the quantities a user of the
real system would care about: ElasticMap single-scan build rate, Bloom
filter throughput, bucket-separator throughput, and scheduling latency.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bipartite import BipartiteGraph
from repro.core.bloom import BloomFilter
from repro.core.bucketizer import BucketSeparator, BucketSpec
from repro.core.builder import ElasticMapBuilder
from repro.core.flow import optimal_assignment
from repro.core.scheduler import DistributionAwareScheduler


@pytest.fixture(scope="module")
def scan_input():
    """64 blocks x 2000 records of (sub_id, nbytes) observations."""
    rng = np.random.default_rng(0)
    blocks = []
    for bid in range(64):
        sids = rng.integers(0, 400, size=2000)
        sizes = rng.integers(50, 400, size=2000)
        blocks.append(
            (bid, [(f"s{sid}", int(sz)) for sid, sz in zip(sids, sizes)])
        )
    return blocks


@pytest.fixture(scope="module")
def random_graph():
    rng = np.random.default_rng(1)
    placement = {
        b: [int(n) for n in rng.choice(64, size=3, replace=False)]
        for b in range(512)
    }
    weights = {b: int(w) for b, w in enumerate(rng.gamma(1.2, 7.0, 512) * 1000)}
    return BipartiteGraph(placement, weights, nodes=list(range(64)))


def test_perf_bloom_insert(benchmark):
    keys = [f"subdataset-{i}" for i in range(5000)]

    def insert():
        bf = BloomFilter(capacity=5000, error_rate=0.01)
        bf.update(keys)
        return bf

    bf = benchmark(insert)
    assert all(k in bf for k in keys[:100])


def test_perf_bloom_query(benchmark):
    bf = BloomFilter(capacity=5000, error_rate=0.01)
    keys = [f"subdataset-{i}" for i in range(5000)]
    bf.update(keys)
    probes = keys[:2500] + [f"missing-{i}" for i in range(2500)]

    result = benchmark(lambda: sum(1 for p in probes if p in bf))
    assert result >= 2500


def test_perf_bucket_separator(benchmark):
    rng = np.random.default_rng(2)
    obs = [(f"s{i}", int(n)) for i, n in zip(rng.integers(0, 500, 20000),
                                             rng.integers(50, 5000, 20000))]

    def run():
        sep = BucketSeparator(BucketSpec.fibonacci(base=64))
        sep.observe_many(obs)
        return sep.separate(alpha=0.3)

    result = benchmark(run)
    assert result.num_subdatasets == 500


def test_perf_elasticmap_build(benchmark, scan_input):
    def build():
        builder = ElasticMapBuilder(alpha=0.3, spec=BucketSpec.fibonacci(base=64))
        return builder.build(iter(scan_input))

    # scan_input holds generators' worth of tuples; rebuild the iterable
    array = benchmark(build)
    assert len(array) == 64


def test_perf_algorithm1(benchmark, random_graph):
    scheduler = DistributionAwareScheduler()
    assignment = benchmark(lambda: scheduler.schedule(random_graph))
    assert assignment.num_tasks == 512


def test_perf_maxflow_optimal(benchmark, random_graph):
    assignment = benchmark.pedantic(
        lambda: optimal_assignment(random_graph), rounds=1, iterations=1
    )
    assert assignment.num_tasks == 512
