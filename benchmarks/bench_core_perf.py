"""Micro-benchmarks of the core data structures (true pytest-benchmark runs).

These measure the library's own hot paths — the quantities a user of the
real system would care about: ElasticMap single-scan build rate, Bloom
filter throughput, bucket-separator throughput, and scheduling latency.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.coding import CodingSpec
from repro.core.bipartite import BipartiteGraph
from repro.core.bloom import BloomFilter
from repro.core.bucketizer import BucketSeparator, BucketSpec
from repro.core.builder import ElasticMapBuilder
from repro.core.countmin import CountMinSketch
from repro.core.flow import optimal_assignment
from repro.core.scheduler import DistributionAwareScheduler
from repro.hdfs import CodedReader, HDFSCluster


@pytest.fixture(scope="module")
def scan_input():
    """64 blocks x 2000 records of (sub_id, nbytes) observations."""
    rng = np.random.default_rng(0)
    blocks = []
    for bid in range(64):
        sids = rng.integers(0, 400, size=2000)
        sizes = rng.integers(50, 400, size=2000)
        blocks.append(
            (bid, [(f"s{sid}", int(sz)) for sid, sz in zip(sids, sizes)])
        )
    return blocks


@pytest.fixture(scope="module")
def scan_arrays(scan_input):
    """The same scan as ``scan_input``, in columnar (ids, sizes) form."""
    return [
        (bid, [sid for sid, _ in obs], [sz for _, sz in obs])
        for bid, obs in scan_input
    ]


@pytest.fixture(scope="module")
def coded_cluster():
    """A small erasure-coded cluster (k=4, m=2) with one written dataset."""
    from tests.conftest import make_records

    cluster = HDFSCluster(
        num_nodes=8,
        block_size=2048,
        replication=3,
        rng=np.random.default_rng(11),
        coding=CodingSpec(4, 2),
    )
    cluster.write_dataset("d", make_records({"hot": 150, "cold": 50}, payload_len=30))
    return cluster


@pytest.fixture(scope="module")
def random_graph():
    rng = np.random.default_rng(1)
    placement = {
        b: [int(n) for n in rng.choice(64, size=3, replace=False)]
        for b in range(512)
    }
    weights = {b: int(w) for b, w in enumerate(rng.gamma(1.2, 7.0, 512) * 1000)}
    return BipartiteGraph(placement, weights, nodes=list(range(64)))


def test_perf_bloom_insert(benchmark):
    keys = [f"subdataset-{i}" for i in range(5000)]

    def insert():
        bf = BloomFilter(capacity=5000, error_rate=0.01)
        bf.update(keys)
        return bf

    bf = benchmark(insert)
    assert all(k in bf for k in keys[:100])


def test_perf_bloom_query(benchmark):
    bf = BloomFilter(capacity=5000, error_rate=0.01)
    keys = [f"subdataset-{i}" for i in range(5000)]
    bf.update(keys)
    probes = keys[:2500] + [f"missing-{i}" for i in range(2500)]

    result = benchmark(lambda: sum(1 for p in probes if p in bf))
    assert result >= 2500


def test_perf_bucket_separator(benchmark):
    rng = np.random.default_rng(2)
    obs = [(f"s{i}", int(n)) for i, n in zip(rng.integers(0, 500, 20000),
                                             rng.integers(50, 5000, 20000))]

    def run():
        sep = BucketSeparator(BucketSpec.fibonacci(base=64))
        sep.observe_many(obs)
        return sep.separate(alpha=0.3)

    result = benchmark(run)
    assert result.num_subdatasets == 500


def test_perf_elasticmap_build(benchmark, scan_input):
    def build():
        builder = ElasticMapBuilder(alpha=0.3, spec=BucketSpec.fibonacci(base=64))
        return builder.build(iter(scan_input))

    # scan_input holds generators' worth of tuples; rebuild the iterable
    array = benchmark(build)
    assert len(array) == 64


def test_perf_bloom_insert_batch(benchmark):
    keys = [f"subdataset-{i}" for i in range(5000)]

    def insert():
        bf = BloomFilter(capacity=5000, error_rate=0.01)
        bf.add_many(keys)
        return bf

    bf = benchmark(insert)
    assert all(k in bf for k in keys[:100])


def test_perf_bloom_query_batch(benchmark):
    bf = BloomFilter(capacity=5000, error_rate=0.01)
    keys = [f"subdataset-{i}" for i in range(5000)]
    bf.add_many(keys)
    probes = keys[:2500] + [f"missing-{i}" for i in range(2500)]

    result = benchmark(lambda: int(bf.contains_many(probes).sum()))
    assert result >= 2500


def test_perf_bucket_separator_batch(benchmark):
    rng = np.random.default_rng(2)
    ids = [f"s{i}" for i in rng.integers(0, 500, 20000)]
    sizes = [int(n) for n in rng.integers(50, 5000, 20000)]

    def run():
        sep = BucketSeparator(BucketSpec.fibonacci(base=64))
        sep.observe_batch(ids, sizes)
        return sep.separate(alpha=0.3)

    result = benchmark(run)
    assert result.num_subdatasets == 500


def test_perf_countmin_update_many(benchmark):
    rng = np.random.default_rng(3)
    keys = [f"s{i}" for i in range(8000)]
    amounts = [int(a) for a in rng.integers(1, 5000, 8000)]

    def run():
        sketch = CountMinSketch(epsilon=0.001, delta=0.01, seed=5)
        sketch.update_many(keys, amounts)
        return sketch

    sketch = benchmark(run)
    assert sketch.total == sum(amounts)


def test_perf_elasticmap_build_arrays(benchmark, scan_arrays):
    def build():
        builder = ElasticMapBuilder(alpha=0.3, spec=BucketSpec.fibonacci(base=64))
        return builder.build_arrays(scan_arrays)

    array = benchmark(build)
    assert len(array) == 64


def test_perf_coded_read(benchmark, coded_cluster):
    per_block = [
        (
            bid,
            coded_cluster.namenode.block_locations("d", bid),
            coded_cluster.coded_block("d", bid).payload_len,
        )
        for bid in coded_cluster.namenode.blocks_of("d")
    ]

    def read_all():
        reader = CodedReader(coded_cluster)
        total = 0.0
        for bid, holders, nbytes in per_block:
            total += reader.read_cost(
                "d", bid, holders[0], tuple(holders),
                nbytes=nbytes,
                read_local=lambda b: b * 1e-6,
                read_remote=lambda b: b * 3e-6,
                write_local=lambda b: b * 1e-6,
            )
        return total

    total = benchmark(read_all)
    assert total > 0


def test_perf_algorithm1(benchmark, random_graph):
    scheduler = DistributionAwareScheduler()
    assignment = benchmark(lambda: scheduler.schedule(random_graph))
    assert assignment.num_tasks == 512


def test_perf_maxflow_optimal(benchmark, random_graph):
    assignment = benchmark.pedantic(
        lambda: optimal_assignment(random_graph), rounds=1, iterations=1
    )
    assert assignment.num_tasks == 512
