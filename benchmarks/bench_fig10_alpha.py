"""Figure 10: workload balance vs the hash-map fraction α.

Paper: "with only about 15 % of the sub-datasets recorded in the hash map,
DataNet is able to achieve a satisfactory workload balance ... changing
the percentage from 15 to 100 will have little effect".
"""

from __future__ import annotations

from repro.experiments.fig10 import run_fig10


def test_fig10_alpha(benchmark, save_result):
    result = benchmark.pedantic(run_fig10, rounds=1, iterations=1)

    # Balance stabilizes beyond ~15 % alpha.
    assert result.stable_after(0.15, tol=0.12)

    # The worst balance is at the smallest alpha.
    smallest = min(result.summaries)
    assert result.summaries[smallest].maximum == max(
        s.maximum for s in result.summaries.values()
    )

    # At alpha >= 15 % the normalized max sits in the paper's ~0.9 band
    # relative to the small-alpha worst case.
    stable = [s.maximum for a, s in result.summaries.items() if a >= 0.15]
    assert all(m <= 0.99 for m in stable)

    save_result("fig10_alpha", result.format())
