"""Figure 1: content clustering causes imbalanced computing (motivation).

Regenerates both panels at reference scale: (a) the target movie's bytes
per chronological block, (b) the filtered workload per node under stock
locality scheduling.  Shape claims checked: the sub-dataset concentrates
in a minority of blocks, and the node workloads are imbalanced.
"""

from __future__ import annotations

from repro.experiments.fig1 import run_fig1


def test_fig1_motivation(benchmark, save_result):
    result = benchmark.pedantic(run_fig1, rounds=1, iterations=1)

    # Fig. 1a: "the first 30 blocks contain the most of our desirable data"
    # — the densest 30 blocks must hold a disproportionate share.
    assert result.concentration_30 > 0.25
    nonzero = sum(1 for v in result.block_series if v > 0)
    assert nonzero < len(result.block_series)  # some blocks hold nothing

    # Fig. 1b: locality scheduling leaves the nodes imbalanced.
    assert result.workload_imbalance > 1.3

    save_result("fig1_motivation", result.format())
