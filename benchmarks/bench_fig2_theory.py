"""Figure 2: P(extreme workload) grows with cluster size (Section II-B).

Regenerates the four analytic curves with the paper's parameters and the
expected extreme-node counts at m=128, cross-checked by Monte-Carlo.
"""

from __future__ import annotations

import pytest

from repro.experiments.fig2 import run_fig2


def test_fig2_theory(benchmark, save_result):
    result = benchmark.pedantic(
        run_fig2, kwargs={"mc_trials": 300}, rounds=1, iterations=1
    )

    # The paper's exact headline number: ~4.0 nodes above 2·E at m=128.
    assert result.expected_counts_m128[
        "E[#nodes > 2E] (paper's 4.0)"
    ] == pytest.approx(4.0, abs=0.1)

    # Every curve increases with cluster size (the figure's message).
    for label, points in result.curves.items():
        probs = [p.probability for p in points]
        assert probs[-1] > probs[0], label

    # Monte-Carlo agrees with the closed form.
    for label, analytic in result.expected_counts_m128.items():
        mc = result.monte_carlo_counts_m128[label]
        assert mc == pytest.approx(analytic, rel=0.4, abs=0.4), label

    save_result("fig2_theory", result.format())
