"""Figure 5: the headline with/without-DataNet comparison (32 nodes).

Paper: improvements of 20 % (MovingAverage), 39.1 % (WordCount), 40.6 %
(Histogram) and 42 % (TopKSearch).  Checked shape: DataNet wins on every
application, compute-heavier applications win more, and the filtered
workload is visibly rebalanced (Fig. 5c).
"""

from __future__ import annotations

from repro.experiments.fig5 import PAPER_IMPROVEMENTS, run_fig5
from repro.experiments.pipeline import APP_ORDER


def test_fig5_overall(benchmark, save_result):
    result = benchmark.pedantic(run_fig5, rounds=1, iterations=1)

    improvements = {app: result.overall[app]["improvement"] for app in APP_ORDER}

    # DataNet wins on every application.
    for app, imp in improvements.items():
        assert imp > 0.0, f"{app} regressed: {imp:.1%}"

    # Ordering: moving_average gains least; top_k_search most.
    assert improvements["moving_average"] == min(improvements.values())
    assert improvements["top_k_search"] == max(improvements.values())

    # Magnitudes within a band of the paper's numbers.
    for app, paper in PAPER_IMPROVEMENTS.items():
        assert abs(improvements[app] - paper) < 0.15, (
            f"{app}: measured {improvements[app]:.1%} vs paper {paper:.1%}"
        )

    # Fig. 5c: rebalancing visible.
    assert result.imbalance_with < result.imbalance_without

    save_result("fig5_overall", result.format())
