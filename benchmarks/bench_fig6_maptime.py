"""Figure 6: map execution times on the filtered sub-dataset.

Paper: TopK's slowest map is 64 s vs fastest 5 s without DataNet (6a);
the min-max gap widens with computational weight (6b/c).
"""

from __future__ import annotations

from repro.experiments.fig6 import run_fig6


def test_fig6_maptime(benchmark, save_result):
    result = benchmark.pedantic(run_fig6, rounds=1, iterations=1)

    # Fig. 6a: a wide spread of TopK map times without DataNet...
    assert result.topk_spread_without > 1.5
    # ...that DataNet substantially narrows.
    with_times = list(result.topk_map_times_with.values())
    spread_with = max(with_times) / max(min(with_times), 1e-9)
    assert spread_with < result.topk_spread_without

    # Fig. 6b/c: the gap grows with compute weight
    # (MovingAverage < WordCount < TopKSearch).
    gap_mavg = result.gap("moving_average", "without")
    gap_wc = result.gap("word_count", "without")
    gap_topk = result.gap("top_k_search", "without")
    assert gap_mavg < gap_wc < gap_topk

    save_result("fig6_maptime", result.format())
