"""Figure 7: shuffle-phase comparison.

Paper: "the shuffle phase without the use of DataNet takes 4-5X longer
than with DataNet", and TopK's speedup exceeds WordCount's because its
longer maps make the straggler wait dominate.
"""

from __future__ import annotations

from repro.experiments.fig7 import run_fig7


def test_fig7_shuffle(benchmark, save_result):
    result = benchmark.pedantic(run_fig7, rounds=1, iterations=1)

    wc = result.speedup_of("word_count")
    topk = result.speedup_of("top_k_search")

    # Multi-x shuffle speedup (paper band: 4-5x; accept a generous window
    # around it since the straggler wait is placement-sensitive).
    assert 2.0 < wc < 10.0
    assert 2.0 < topk < 10.0

    # TopK's shuffle speedup >= WordCount's (longer maps -> longer wait).
    assert topk >= wc * 0.9

    save_result("fig7_shuffle", result.format())
