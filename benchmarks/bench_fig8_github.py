"""Figure 8 + §V-A.4: GitHub IssuesEvent — imbalance without clustering.

Paper: the distribution over blocks is uneven despite no content
clustering; DataNet still helps (longest TopK map 125 s → 107 s ≈ 14 %)
but less than on the movie data.
"""

from __future__ import annotations

from repro.experiments.fig5 import run_fig5
from repro.experiments.fig8 import run_fig8


def test_fig8_github(benchmark, save_result):
    result = benchmark.pedantic(run_fig8, rounds=1, iterations=1)

    # Fig. 8a: uneven distribution over blocks even without clustering.
    assert result.block_imbalance > 1.5

    # Longest map improves, in the paper's modest band (14.4 %).
    assert 0.0 < result.map_improvement < 0.35

    # "the overall improvement is much less than that of the movie dataset"
    movie = run_fig5().overall["top_k_search"]["improvement"]
    assert result.overall_improvement < movie

    save_result("fig8_github", result.format())
