"""Figure 9: Eq. 6 estimate accuracy per sub-dataset vs its size.

Paper: large (hash-map-resident) sub-datasets estimate accurately; small
(Bloom-resident) ones deviate — harmlessly, since they cannot cause
imbalance.
"""

from __future__ import annotations

from repro.experiments.fig9 import run_fig9


def test_fig9_accuracy(benchmark, save_result):
    result = benchmark.pedantic(run_fig9, rounds=1, iterations=1)

    small_err = result.mean_abs_error_below(result.small_threshold)
    large_err = result.mean_abs_error_above(result.small_threshold)

    # Large sub-datasets estimate much better than small ones.
    assert large_err < small_err
    assert large_err < 0.25  # near-exact for the movies that matter

    # Estimates for the largest decile are essentially perfect.
    top = result.points[-len(result.points) // 10 :]
    mean_top_ratio = sum(p.ratio for p in top) / len(top)
    assert abs(mean_top_ratio - 1.0) < 0.1

    save_result("fig9_accuracy", result.format())
