"""§V-A.4: the dynamic-rebalance alternative vs DataNet.

Paper: runtime migration balances the load but moves a large share of the
sub-dataset (>30 % on their testbed) across the network and touches almost
every node — costs DataNet avoids by scheduling with foresight.
"""

from __future__ import annotations

from repro.experiments.migration import run_migration


def test_migration_baseline(benchmark, save_result):
    result = benchmark.pedantic(run_migration, rounds=1, iterations=1)

    # A significant share of the sub-dataset must move at runtime.
    assert result.stats.migration_fraction > 0.10
    # Many nodes participate ("almost every cluster node will transfer
    # or receive sub-datasets").
    assert result.stats.nodes_touched >= 4
    # DataNet is at least as fast as migrate-then-analyze.
    assert result.time_datanet <= result.time_dynamic

    save_result("migration_baseline", result.format())
