#!/usr/bin/env python
"""Performance harness for the background placement rebalancer.

Runs the fixed-seed rebalance suite — annealing planner throughput,
executor apply rate, and the three-way makespan comparison — and appends
one schema-validated record to ``BENCH_rebalance.json`` at the repo
root, so planner or executor regressions show up as a drop between
consecutive records measured by the same harness.

Usage::

    python benchmarks/bench_rebalance.py [--quick] [--seed N] [--out PATH]

``--quick`` shrinks the annealing budget ~4x for CI smoke runs; the
record schema is identical.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Callable, Dict, List, Tuple

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_REPO_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import numpy as np  # noqa: E402

from repro import DataNet, HDFSCluster, Record  # noqa: E402
from repro.rebalance import (  # noqa: E402
    RebalanceExecutor,
    RebalancePlanner,
    WorkloadProfile,
)

SCHEMA_NAME = "bench-rebalance/v1"
DEFAULT_OUT = os.path.join(_REPO_ROOT, "BENCH_rebalance.json")

#: result section → numeric fields every record must carry
_RESULT_FIELDS: Dict[str, Tuple[str, ...]] = {
    "planning": (
        "blocks",
        "iterations",
        "proposals_per_s",
        "cost_improvement",
    ),
    "execution": (
        "moves",
        "bytes_migrated",
        "moves_per_s",
        "bytes_per_s",
    ),
    "comparison": (
        "makespan_scheduling_only_s",
        "makespan_rebalanced_s",
        "speedup",
        "migration_fraction",
    ),
}


def _time(fn: Callable[[], object], *, repeat: int = 2) -> float:
    """Best-of-``repeat`` wall time of ``fn()`` in seconds (> 0)."""
    best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return max(best, 1e-9)


def _environment(seed: int):
    """Seed-deterministic skewed dataset: a clustered hot run plus a tail."""
    rng = np.random.default_rng(seed)
    cluster = HDFSCluster(
        num_nodes=10, block_size=2048, replication=3, rng=rng
    )
    records = [Record("hot", float(t), "h" * 30) for t in range(400)]
    records += [
        Record(f"s{i % 8}", 400.0 + i, "c" * 30) for i in range(600)
    ]
    dataset = cluster.write_dataset("d", records)
    datanet = DataNet.build(dataset, alpha=0.3)
    sizes = dataset.subdataset_sizes()
    weights = {sid: float(nbytes) for sid, nbytes in sizes.items()}
    weights["hot"] = 4.0 * max(weights.values())
    return cluster, dataset, datanet, WorkloadProfile(weights)


def _bench_planning(seed: int, quick: bool) -> Dict[str, float]:
    iterations = 800 if quick else 3000
    _cluster, dataset, datanet, profile = _environment(seed)

    def plan():
        return RebalancePlanner(
            dataset, datanet, profile, seed=seed, iterations=iterations
        ).plan()

    t = _time(plan, repeat=2)
    result = plan()
    return {
        "blocks": float(dataset.num_blocks),
        "iterations": float(iterations),
        "proposals_per_s": iterations / t,
        "cost_improvement": result.improvement,
    }


def _bench_execution(seed: int, quick: bool) -> Dict[str, float]:
    iterations = 800 if quick else 3000
    _cluster, dataset, datanet, profile = _environment(seed)
    plan = RebalancePlanner(
        dataset, datanet, profile, seed=seed, iterations=iterations
    ).plan()

    def apply_once() -> None:
        cluster, ds, dn, _p = _environment(seed)
        cluster.watch_placement(ds.name, dn)
        RebalanceExecutor(cluster).apply(plan)

    # time includes the environment rebuild; subtract the rebuild baseline
    t_total = _time(apply_once, repeat=2)
    t_setup = _time(lambda: _environment(seed), repeat=2)
    t = max(t_total - t_setup, 1e-9)
    return {
        "moves": float(plan.num_moves),
        "bytes_migrated": float(plan.total_bytes),
        "moves_per_s": plan.num_moves / t,
        "bytes_per_s": plan.total_bytes / t,
    }


def _bench_comparison(seed: int, quick: bool) -> Dict[str, float]:
    from repro.experiments import ReferenceConfig
    from repro.experiments.rebalance import run_rebalance_comparison

    result = run_rebalance_comparison(
        ReferenceConfig.small(),
        workload="movielens",
        iterations=1500 if quick else 6000,
        seed=seed,
    )
    return {
        "makespan_scheduling_only_s": result.time_scheduling_only,
        "makespan_rebalanced_s": result.time_rebalanced,
        "speedup": result.time_scheduling_only
        / max(result.time_rebalanced, 1e-9),
        "migration_fraction": result.migration_fraction,
    }


def run_rebalance_suite(
    *, quick: bool = False, seed: int = 7
) -> Dict[str, object]:
    """Run every rebalance benchmark and return one record."""
    results: Dict[str, Dict[str, float]] = {
        "planning": _bench_planning(seed, quick),
        "execution": _bench_execution(seed, quick),
        "comparison": _bench_comparison(seed, quick),
    }
    return {
        "schema": SCHEMA_NAME,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "seed": seed,
        "quick": quick,
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "results": results,
    }


def validate_record(record: object) -> List[str]:
    """Schema check; returns a list of problems (empty = valid).

    Hand-rolled like :func:`repro.bench.validate_record`: the container
    carries no jsonschema package and the schema is small.
    """
    problems: List[str] = []
    if not isinstance(record, dict):
        return [f"record must be an object, got {type(record).__name__}"]
    if record.get("schema") != SCHEMA_NAME:
        problems.append(
            f"schema must be {SCHEMA_NAME!r}, got {record.get('schema')!r}"
        )
    for key, kind in (
        ("timestamp", str),
        ("seed", int),
        ("quick", bool),
        ("python", str),
        ("numpy", str),
    ):
        if not isinstance(record.get(key), kind):
            problems.append(f"{key} must be {kind.__name__}")
    results = record.get("results")
    if not isinstance(results, dict):
        problems.append("results must be an object")
        return problems
    for section, fields in _RESULT_FIELDS.items():
        data = results.get(section)
        if not isinstance(data, dict):
            problems.append(f"results.{section} missing")
            continue
        for f in fields:
            value = data.get(f)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                problems.append(f"results.{section}.{f} must be a number")
            elif value < 0:
                problems.append(f"results.{section}.{f} must be non-negative")
    return problems


def load_records(path: str) -> List[Dict[str, object]]:
    if not os.path.exists(path):
        return []
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, list):
        raise ValueError(f"{path}: expected a JSON array of records")
    return data


def append_record(path: str, record: Dict[str, object]) -> int:
    problems = validate_record(record)
    if problems:
        raise ValueError("invalid bench record: " + "; ".join(problems))
    records = load_records(path)
    records.append(record)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(records, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return len(records)


def format_record(record: Dict[str, object]) -> str:
    results: Dict[str, Dict[str, float]] = record["results"]  # type: ignore[assignment]
    plan, execu, comp = (
        results["planning"],
        results["execution"],
        results["comparison"],
    )
    return "\n".join(
        [
            f"bench-rebalance @ {record['timestamp']}  "
            f"(seed={record['seed']}, quick={record['quick']})",
            f"planning   : {plan['proposals_per_s']:>10,.0f} proposals/s  "
            f"({plan['cost_improvement']:.1%} cost improvement, "
            f"{plan['blocks']:.0f} blocks)",
            f"execution  : {execu['moves_per_s']:>10,.1f} moves/s      "
            f"({execu['moves']:.0f} moves, {execu['bytes_migrated']:,.0f} B)",
            f"comparison : {comp['speedup']:>10.3f}x makespan    "
            f"({comp['makespan_scheduling_only_s']:.1f}s -> "
            f"{comp['makespan_rebalanced_s']:.1f}s, "
            f"{comp['migration_fraction']:.1%} migrated)",
        ]
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shrink the annealing budget ~4x (CI smoke mode; same schema)",
    )
    parser.add_argument("--seed", type=int, default=7, help="workload seed")
    parser.add_argument(
        "--out",
        default=DEFAULT_OUT,
        help="record history to append to (default: BENCH_rebalance.json)",
    )
    parser.add_argument(
        "--no-append",
        action="store_true",
        help="print the record without touching the history file",
    )
    args = parser.parse_args(argv)

    record = run_rebalance_suite(quick=args.quick, seed=args.seed)
    print(format_record(record))
    if not args.no_append:
        count = append_record(args.out, record)
        print(f"appended record #{count} to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
