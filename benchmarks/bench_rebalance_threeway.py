"""Extension: fix placement vs schedule around it vs migrate at runtime.

Not in the paper — DataNet only *schedules around* skewed placement.
The background annealed rebalancer (`repro.rebalance`) *fixes* the
layout off the job clock under a migration-byte budget; the same
Algorithm 1 then runs on the improved placement.  The three arms share
one environment per workload, so the makespans are directly comparable.
"""

from __future__ import annotations

import pytest

from repro.experiments import ReferenceConfig
from repro.experiments.rebalance import run_rebalance_comparison


@pytest.mark.parametrize("workload", ["movielens", "github_events"])
def test_rebalance_threeway(benchmark, save_result, workload):
    result = benchmark.pedantic(
        run_rebalance_comparison,
        args=(ReferenceConfig.small(),),
        kwargs={"workload": workload},
        rounds=1,
        iterations=1,
    )

    # Rebalance-then-schedule must beat scheduling-only on the same data.
    assert result.time_rebalanced < result.time_scheduling_only
    # The background migration stays within the 25 % byte budget.
    assert result.migration_fraction <= 0.25
    # The annealer found a genuinely cheaper layout.
    assert result.plan.cost_after < result.plan.cost_before

    save_result(f"rebalance_threeway_{workload}", result.format())
