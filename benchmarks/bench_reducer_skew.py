"""LIBRA orthogonality bench: reducer-skew sampling vs map-side balance.

The paper's related-work claim, measured: sampling flattens reducer loads,
DataNet flattens map inputs, and neither does the other's job — they
compose.
"""

from __future__ import annotations

from repro.experiments.reducer_skew import run_reducer_skew


def test_reducer_skew_orthogonality(benchmark, save_result):
    result = benchmark.pedantic(run_reducer_skew, rounds=1, iterations=1)

    # sampling balances the reducers...
    assert result.sampled_imbalance <= result.hash_imbalance
    # ...but leaves the map-side gap between stock and DataNet intact
    assert result.map_imbalance_without > result.map_imbalance_with

    save_result("reducer_skew", result.format())
