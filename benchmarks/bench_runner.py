#!/usr/bin/env python
"""Standalone entry point for the core benchmark suite.

Runs the fixed-seed core suite (the same one behind ``repro bench``) and
appends a schema-validated record to ``BENCH_core.json`` at the repo
root, building the per-PR performance trajectory.

Usage::

    python benchmarks/bench_runner.py [--quick] [--seed N] [--out PATH]

The measurement logic lives in :mod:`repro.bench` so the installed
package and this script always agree; this wrapper only fixes up
``sys.path`` for running straight from a checkout.
"""

from __future__ import annotations

import argparse
import os
import sys

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_REPO_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.bench import (  # noqa: E402  (path setup must precede import)
    append_record,
    format_record,
    run_core_suite,
)

DEFAULT_OUT = os.path.join(_REPO_ROOT, "BENCH_core.json")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shrink workloads ~20x (CI smoke mode; same record schema)",
    )
    parser.add_argument("--seed", type=int, default=1729, help="workload seed")
    parser.add_argument(
        "--out",
        default=DEFAULT_OUT,
        help="record history to append to (default: BENCH_core.json)",
    )
    parser.add_argument(
        "--no-append",
        action="store_true",
        help="print the record without touching the history file",
    )
    args = parser.parse_args(argv)

    record = run_core_suite(quick=args.quick, seed=args.seed)
    print(format_record(record))
    if not args.no_append:
        count = append_record(args.out, record)
        print(f"appended record #{count} to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
