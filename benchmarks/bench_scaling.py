"""Cluster-size scaling and heterogeneous-cluster benches.

Not paper figures — they validate Section II-B's prediction end to end
(stock imbalance grows with the node count) and Section IV-B's capacity-
aware scheduling claim.
"""

from __future__ import annotations

from repro.experiments.heterogeneous import run_heterogeneous
from repro.experiments.scaling import run_scaling


def test_scaling_with_cluster_size(benchmark, save_result):
    result = benchmark.pedantic(
        run_scaling, kwargs={"cluster_sizes": (8, 16, 32, 64)}, rounds=1, iterations=1
    )

    # Section II-B: stock imbalance grows as blocks-per-node shrinks
    # (monotone over the range where DataNet can still balance).
    without = result.imbalances_without()
    assert without[0] < without[2]

    # DataNet never loses and always balances at least as well.
    for p in result.points:
        assert p.imbalance_with <= p.imbalance_without + 0.05
        assert p.topk_improvement > 0

    save_result("scaling", result.format())


def test_heterogeneous_capacities(benchmark, save_result):
    result = benchmark.pedantic(run_heterogeneous, rounds=1, iterations=1)

    ms = result.makespans
    # capacity-aware <= capacity-blind <= stock (completion-time proxy)
    assert ms["Algorithm 1 (capacity-aware)"] <= ms["Algorithm 1 (capacity-blind)"]
    assert ms["Algorithm 1 (capacity-blind)"] <= ms["stock locality"]

    # fast nodes carry roughly their capacity share of the bytes
    assert 0.55 < result.fast_fraction_aware < 0.75

    save_result("heterogeneous", result.format())
