"""Table I: the per-block movie → review-count map (raw hash-map form)."""

from __future__ import annotations

from repro.experiments.table1 import run_table1


def test_table1_blockmap(benchmark, save_result):
    result = benchmark.pedantic(run_table1, rounds=1, iterations=1)

    # The table's point: a block holds MANY sub-datasets, a few dominant.
    assert result.num_movies > 20
    counts = [c for _sid, c, _b in result.rows]
    assert counts[0] > 5 * counts[-1]  # dominant vs long tail

    save_result("table1_blockmap", result.format())
