"""Table II: ElasticMap memory efficiency vs accuracy.

Paper: realized α from 51 % down to 21 % drops accuracy χ from 97 % to
80 % while the raw-to-metadata representation ratio rises 1857 → 3497.
Shape checked: both monotone trends, χ in the paper's band.
"""

from __future__ import annotations

from repro.experiments.table2 import run_table2


def test_table2_elasticmap(benchmark, save_result):
    result = benchmark.pedantic(run_table2, rounds=1, iterations=1)

    rows = result.rows  # ordered high alpha -> low alpha
    alphas = [r.realized_alpha for r in rows]
    accuracies = [r.accuracy for r in rows]
    ratios = [r.representation_ratio for r in rows]

    # More hash map -> more accuracy, less compression (monotone trends).
    assert all(a >= b - 0.02 for a, b in zip(alphas, alphas[1:]))
    assert all(a >= b - 0.02 for a, b in zip(accuracies, accuracies[1:]))
    assert all(a <= b * 1.05 for a, b in zip(ratios, ratios[1:]))

    # Accuracy band comparable to the paper's 97 % -> 80 %.
    assert accuracies[0] > 0.88
    assert accuracies[-1] > 0.6
    assert accuracies[0] - accuracies[-1] > 0.05

    save_result("table2_elasticmap", result.format())
