"""Shared fixtures for the benchmark harness.

Every bench regenerates one paper table/figure: it runs the experiment
driver (timed via pytest-benchmark), checks the paper's shape claims, and
writes the reproduced rows/series to ``results/<experiment>.txt`` so they
can be inspected after ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import pathlib

import pytest


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    """Directory collecting the reproduced tables/figures as text files."""
    path = pathlib.Path(__file__).resolve().parent.parent / "results"
    path.mkdir(exist_ok=True)
    return path


@pytest.fixture
def save_result(results_dir):
    """Write one experiment's formatted output to results/ and echo it."""

    def _save(name: str, text: str) -> None:
        out = results_dir / f"{name}.txt"
        out.write_text(text + "\n", encoding="utf-8")
        print(f"\n{text}\n[saved to {out}]")

    return _save
