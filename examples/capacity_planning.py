#!/usr/bin/env python
"""Capacity planning with the Section II-B theory and the Eq. 5 memory model.

Answers three operator questions before any job runs:

1. How large can my cluster get before stock scheduling degrades (i.e.
   when do I start *needing* DataNet)?
2. What hash-map fraction α fits my metadata memory budget?
3. How much metadata will the ElasticMap cost at that α?

Then validates the first answer against a Monte-Carlo block deal.

Run:  python examples/capacity_planning.py
"""

from __future__ import annotations

import numpy as np

from repro.metrics import format_table
from repro.theory import (
    WorkloadModel,
    max_cluster_for_imbalance,
    metadata_budget,
    plan,
    recommend_alpha,
)
from repro.units import MiB, format_size


def main() -> None:
    # The paper's workload shape: 512 blocks, Γ(1.2, 7) per-block amounts.
    model = WorkloadModel(k=1.2, theta=7.0, num_blocks=512)

    # 1. When does stock scheduling break down?
    rows = []
    for tolerance in (0.5, 1.0, 2.0, 4.0):
        m = max_cluster_for_imbalance(
            model, expected_overloaded_nodes=tolerance
        )
        rows.append([f"{tolerance:.1f}", m])
    print(
        format_table(
            ["tolerated overloaded nodes (E[> 2E(Z)])", "max cluster size"],
            rows,
            title="How big before stock scheduling degrades?",
        )
    )

    # Monte-Carlo sanity check at the 1.0 boundary.
    rng = np.random.default_rng(0)
    m = max_cluster_for_imbalance(model, expected_overloaded_nodes=1.0)
    over = np.mean(
        [
            (
                model.sample_node_workloads(m, rng)
                > 2 * model.expected_node_workload(m)
            ).sum()
            for _ in range(300)
        ]
    )
    print(f"\nMonte-Carlo at m={m}: {over:.2f} overloaded nodes on average")

    # 2./3. Metadata sizing for a big deployment.
    rows = []
    for budget in (2 * MiB, 8 * MiB, 32 * MiB):
        try:
            alpha = recommend_alpha(256, 2000, budget)
            cost = metadata_budget(256, 2000, alpha)
            rows.append([format_size(budget), f"{alpha:.0%}", format_size(cost)])
        except Exception as exc:  # noqa: BLE001 - demo output
            rows.append([format_size(budget), "-", f"({exc})"])
    print()
    print(
        format_table(
            ["metadata budget", "recommended alpha", "actual footprint"],
            rows,
            title="Alpha for a 256-block x 2000-sub-dataset deployment",
        )
    )

    # Full one-shot plan.
    print()
    report = plan(
        num_blocks=256,
        subdatasets_per_block=2000,
        target_nodes=128,
        metadata_budget_bytes=8 * MiB,
    )
    print(report.format())


if __name__ == "__main__":
    main()
