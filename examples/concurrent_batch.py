#!/usr/bin/env python
"""Four analysis jobs sharing the cluster — event-driven simulation.

Runs the paper's whole application suite *concurrently* (one shared
selection pass, then all four analysis jobs submitted together) under
stock and DataNet scheduling, and draws the resulting schedules as text
Gantt charts.  Watch the idle gaps ('.') on the stock timeline: every job
waits on the same overloaded nodes.

Run:  python examples/concurrent_batch.py [--small] [--slots N]
"""

from __future__ import annotations

import argparse

from repro.experiments.concurrent import run_concurrent
from repro.experiments.config import ReferenceConfig
from repro.sim import render_gantt


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--small", action="store_true")
    parser.add_argument("--slots", type=int, default=2, help="map slots per node")
    args = parser.parse_args()
    cfg = ReferenceConfig.small() if args.small else ReferenceConfig()

    result = run_concurrent(cfg, slots_per_node=args.slots)
    print(result.format())

    # show a subset of nodes so the chart stays readable
    nodes = sorted(
        {t.node for t in result.timelines["without"].tasks.values()}, key=repr
    )[:12]
    for method in ("without", "with"):
        print(f"\n=== schedule {method} DataNet (first {len(nodes)} nodes) ===")
        print(render_gantt(result.timelines[method], width=76, nodes=nodes))


if __name__ == "__main__":
    main()
