#!/usr/bin/env python
"""Tuning ElasticMap: the memory/accuracy/balance trade-off.

Sweeps the hash-map fraction α (Table II, Figure 10) and the Bloom error
rate, and shows the memory-budget sizing mode where ElasticMap adapts the
per-block hash-map population to fit a bit budget (Eq. 5 inverted).

Run:  python examples/elasticmap_tuning.py [--small]
"""

from __future__ import annotations

import argparse

from repro.core.builder import ElasticMapBuilder
from repro.experiments.ablations import run_bloom_eps_ablation, run_bucket_ablation
from repro.experiments.config import ReferenceConfig, build_movie_environment
from repro.experiments.fig10 import run_fig10
from repro.experiments.table2 import run_table2
from repro.metrics import format_kv
from repro.units import format_size


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--small", action="store_true")
    args = parser.parse_args()
    cfg = ReferenceConfig.small() if args.small else ReferenceConfig()

    print(run_table2(cfg).format())
    print()
    print(run_fig10(cfg).format())
    print()
    print(run_bloom_eps_ablation(cfg).format())
    print()
    print(run_bucket_ablation(cfg).format())

    # Memory-budget mode: hand the builder a per-block bit budget instead
    # of a fraction; it admits whole buckets top-down while Eq. 5 fits.
    env = build_movie_environment(cfg)
    for budget_kib in (1, 4, 16):
        builder = ElasticMapBuilder(
            alpha=None,
            budget_bits_per_block=budget_kib * 8192.0,
            spec=cfg.bucket_spec(),
        )
        array = builder.build(env.dataset.scan_blocks())
        chi = array.accuracy(env.dataset.subdataset_ids(), env.dataset.total_bytes)
        print()
        print(
            format_kv(
                {
                    "per-block budget": f"{budget_kib} KiB",
                    "realized alpha": f"{builder.stats.mean_alpha:.0%}",
                    "total metadata": format_size(array.memory_bytes()),
                    "accuracy (chi)": f"{chi:.1%}",
                },
                title=f"Budget-driven sizing @ {budget_kib} KiB/block",
            )
        )


if __name__ == "__main__":
    main()
