#!/usr/bin/env python
"""Operating DataNet under failures.

Shows the operational machinery around the paper's core:

1. **DataNode loss** — a node dies, HDFS re-replicates its blocks, and
   Algorithm 1 keeps balancing over the surviving nodes.
2. **Metadata-server loss** — the ElasticMap lives in a distributed
   metadata store (the paper's future-work direction); queries fail over
   to replica meta-nodes transparently.

Run:  python examples/failure_recovery.py
"""

from __future__ import annotations

import numpy as np

from repro import DataNet, HDFSCluster
from repro.core.bipartite import BipartiteGraph
from repro.core.bucketizer import BucketSpec
from repro.core.metastore import DistributedMetaStore
from repro.core.scheduler import DistributionAwareScheduler
from repro.hdfs import FailureManager
from repro.metrics import format_kv, imbalance_ratio
from repro.units import KiB, format_size
from repro.workloads import MovieLensGenerator, most_popular


def main() -> None:
    rng = np.random.default_rng(13)
    cluster = HDFSCluster(num_nodes=12, block_size=32 * KiB, rng=rng)
    records = MovieLensGenerator(
        num_movies=300, total_reviews=30_000, duration_days=90.0, rng=rng
    ).generate()
    dataset = cluster.write_dataset("movies", records)
    movie = most_popular(records)
    datanet = DataNet.build(
        dataset, alpha=0.3, spec=BucketSpec.for_block_size(cluster.block_size)
    )

    # --- 1. DataNode failure -------------------------------------------------
    manager = FailureManager(cluster)
    before = datanet.schedule(movie, skip_absent=False)
    events = manager.fail_node(0)
    counts = manager.verify_replication("movies")

    # reschedule over live nodes only
    weights = datanet.elasticmap.block_weights(movie)
    placement = {
        bid: [n for n in nodes if manager.is_alive(n)]
        for bid, nodes in dataset.placement().items()
    }
    graph = BipartiteGraph(
        placement,
        {b: weights.get(b, 0) for b in placement},
        nodes=manager.live_nodes,
    )
    after = DistributionAwareScheduler().schedule(graph)

    print(
        format_kv(
            {
                "node failed": 0,
                "blocks re-replicated": len(events),
                "bytes copied": format_size(manager.bytes_re_replicated()),
                "replication restored": all(c == 3 for c in counts.values()),
                "imbalance before failure": f"{imbalance_ratio(before.workload_by_node.values()):.2f}",
                "imbalance after (11 nodes)": f"{imbalance_ratio(after.workload_by_node.values()):.2f}",
                "dead node got tasks": 0 in after.blocks_by_node,
            },
            title="DataNode failure + re-replication",
        )
    )

    # --- 2. Metadata-server failure -------------------------------------------
    store = DistributedMetaStore(num_nodes=4, replication=2)
    store.load_array(datanet.elasticmap)
    est_before = store.estimate_total_size(movie)
    store.fail_node("meta-1")
    est_after = store.estimate_total_size(movie)

    print()
    print(
        format_kv(
            {
                "meta-nodes": 4,
                "metadata replication": 2,
                "storage per live node": {
                    k: format_size(v) for k, v in store.storage_by_node().items()
                },
                "estimate before failure": format_size(est_before),
                "estimate after meta-1 died": format_size(est_after),
                "answers identical": est_before == est_after,
            },
            title="Distributed metadata store failover",
        )
    )


if __name__ == "__main__":
    main()
