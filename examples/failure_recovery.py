#!/usr/bin/env python
"""Operating DataNet under failures.

Shows the operational machinery around the paper's core:

1. **DataNode loss** — a node dies, HDFS re-replicates its blocks, and
   Algorithm 1 keeps balancing over the surviving nodes.
2. **Metadata-server loss** — the ElasticMap lives in a distributed
   metadata store (the paper's future-work direction); queries fail over
   to replica meta-nodes transparently.
3. **Replica bit rot** — silent corruption on one copy is caught by the
   checksum scrubber and repaired from a verified-good replica; a whole
   chaos run proves the analysis output never changes.

Run:  python examples/failure_recovery.py
"""

from __future__ import annotations

import numpy as np

from repro import DataNet, HDFSCluster
from repro.core.bipartite import BipartiteGraph
from repro.core.bucketizer import BucketSpec
from repro.core.metastore import DistributedMetaStore
from repro.core.scheduler import DistributionAwareScheduler
from repro.hdfs import FailureManager
from repro.metrics import format_kv, imbalance_ratio
from repro.units import KiB, format_size
from repro.workloads import MovieLensGenerator, most_popular


def main() -> None:
    rng = np.random.default_rng(13)
    cluster = HDFSCluster(num_nodes=12, block_size=32 * KiB, rng=rng)
    records = MovieLensGenerator(
        num_movies=300, total_reviews=30_000, duration_days=90.0, rng=rng
    ).generate()
    dataset = cluster.write_dataset("movies", records)
    movie = most_popular(records)
    datanet = DataNet.build(
        dataset, alpha=0.3, spec=BucketSpec.for_block_size(cluster.block_size)
    )

    # --- 1. DataNode failure -------------------------------------------------
    manager = FailureManager(cluster)
    before = datanet.schedule(movie, skip_absent=False)
    events = manager.fail_node(0)
    counts = manager.verify_replication("movies")

    # reschedule over live nodes only
    weights = datanet.elasticmap.block_weights(movie)
    placement = {
        bid: [n for n in nodes if manager.is_alive(n)]
        for bid, nodes in dataset.placement().items()
    }
    graph = BipartiteGraph(
        placement,
        {b: weights.get(b, 0) for b in placement},
        nodes=manager.live_nodes,
    )
    after = DistributionAwareScheduler().schedule(graph)

    print(
        format_kv(
            {
                "node failed": 0,
                "blocks re-replicated": len(events),
                "bytes copied": format_size(manager.bytes_re_replicated()),
                "replication restored": all(c == 3 for c in counts.values()),
                "imbalance before failure": f"{imbalance_ratio(before.workload_by_node.values()):.2f}",
                "imbalance after (11 nodes)": f"{imbalance_ratio(after.workload_by_node.values()):.2f}",
                "dead node got tasks": 0 in after.blocks_by_node,
            },
            title="DataNode failure + re-replication",
        )
    )

    # --- 2. Metadata-server failure -------------------------------------------
    store = DistributedMetaStore(num_nodes=4, replication=2)
    store.load_array(datanet.elasticmap)
    est_before = store.estimate_total_size(movie)
    store.fail_node("meta-1")
    est_after = store.estimate_total_size(movie)

    print()
    print(
        format_kv(
            {
                "meta-nodes": 4,
                "metadata replication": 2,
                "storage per live node": {
                    k: format_size(v) for k, v in store.storage_by_node().items()
                },
                "estimate before failure": format_size(est_before),
                "estimate after meta-1 died": format_size(est_after),
                "answers identical": est_before == est_after,
            },
            title="Distributed metadata store failover",
        )
    )

    # --- 3. Replica bit rot + scrub --------------------------------------------
    # Rot two replicas in place (the shared block content is untouched —
    # only those copies now serve a bad checksum), then let the scrubber
    # sweep every replica and repair from verified-good peers.
    from repro.faults import BitRot, ChaosRunner, FaultPlan
    from repro.hdfs import Scrubber
    from repro.mapreduce.apps.word_count import word_count_job

    placement = dataset.placement()
    victims = [(placement[0][0], 0), (placement[1][1], 1)]
    for node, block in victims:
        cluster.corrupt_replica("movies", node, block)
    report = Scrubber(cluster, failures=manager).scrub("movies")

    print()
    print(
        format_kv(
            {
                "replicas rotted": len(victims),
                "replicas scanned": report.replicas_scanned,
                "bytes scanned": format_size(report.bytes_scanned),
                "corrupt found": report.corrupt_found,
                "repaired": report.repaired,
                "cluster clean again": Scrubber(cluster, failures=manager)
                .scrub("movies")
                .clean,
            },
            title="Bit rot caught and repaired by the scrubber",
        )
    )

    # End to end: a chaos run with planned rot must produce the exact
    # fault-free output — the read path detects, repairs and re-reads.
    chaos_cluster = HDFSCluster(
        num_nodes=8, block_size=32 * KiB, rng=np.random.default_rng(29)
    )
    chaos_dataset = chaos_cluster.write_dataset("movies", records)
    plan = FaultPlan(seed=17, bit_rots=(BitRot(0, 0), BitRot(3, 2)))
    chaos = ChaosRunner(chaos_cluster, plan).run(
        chaos_dataset, movie, word_count_job()
    )

    print()
    print(
        format_kv(
            {
                "corruptions injected": chaos.integrity.corruptions_injected,
                "corruptions repaired": chaos.integrity.corruptions_repaired,
                "output matches fault-free run": chaos.output_matches_baseline,
            },
            title="Chaos run under bit rot",
        )
    )


if __name__ == "__main__":
    main()
