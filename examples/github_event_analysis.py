#!/usr/bin/env python
"""Sub-dataset analysis on GitHub-style event logs (paper Section V-A.4).

Event streams have no content clustering — rates are stationary — yet the
per-block distribution of any one event type is still uneven, so stock
block scheduling still lands imbalanced filtered workloads.  DataNet's
ElasticMap balances them; the gain is real but smaller than on the
clustered movie data, exactly the paper's Figure 8 finding.

Also demonstrates the extra applications (grep) and the I/O saving from
skipping blocks that provably lack the target event type.

Run:  python examples/github_event_analysis.py [--events N] [--target TYPE]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import DataNet, HDFSCluster
from repro.core.bucketizer import BucketSpec
from repro.experiments.fig8 import run_fig8
from repro.mapreduce import ClusterCostModel, MapReduceEngine
from repro.mapreduce.apps import grep_job
from repro.metrics import format_kv
from repro.units import KiB, format_size
from repro.workloads import GitHubEventsGenerator


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--events", type=int, default=100_000)
    parser.add_argument("--target", default="IssuesEvent")
    args = parser.parse_args()

    # Figure 8 reproduction (TopK on the target event type, both methods).
    print(run_fig8(target=args.target, total_events=args.events).format())

    # A grep job on a different event type, using ElasticMap block skipping.
    rng = np.random.default_rng(11)
    cluster = HDFSCluster(num_nodes=16, block_size=64 * KiB, rng=rng)
    records = GitHubEventsGenerator(args.events // 2, rng=rng).generate()
    dataset = cluster.write_dataset("github", records)
    datanet = DataNet.build(
        dataset, alpha=0.3, spec=BucketSpec.for_block_size(cluster.block_size)
    )
    engine = MapReduceEngine(cluster, ClusterCostModel(data_scale=1024.0))

    target = "ReleaseEvent"  # a rare type: skipping saves the most I/O
    assignment = datanet.schedule(target, skip_absent=True)
    job = grep_job("release")
    selection = engine.run_selection(dataset, target, assignment, job.profile)
    result = engine.run_analysis(job, selection.local_data)

    print()
    print(
        format_kv(
            {
                "grep target": target,
                "blocks scanned": f"{selection.blocks_read} of {dataset.num_blocks}",
                "bytes read": format_size(selection.bytes_read),
                "records found": sum(len(v) for v in selection.local_data.values()),
                "grep matches": result.output.get("release", 0),
                "analysis time": f"{result.total_time:.1f} s (simulated)",
            },
            title="Rare-event grep with ElasticMap block skipping",
        )
    )


if __name__ == "__main__":
    main()
