#!/usr/bin/env python
"""Surviving gray failures: slow nodes, flaky links, a rack partition.

Crashes are the easy case — the node is gone and everyone knows it.
Gray failures are the expensive one: nodes that still answer but 8x
slower, links that drop packets and add latency, a rack that falls off
the network and comes back.  This drill runs one analysis job through
all three at once and shows the resilience machinery earning its keep:

1. **Health accrual** — a phi-accrual detector turns heartbeat gaps into
   a continuous suspicion / health score per node (no binary timeout).
2. **Partition-aware scheduling** — the bipartite graph is restricted to
   reachable replicas; blocks stranded behind the cut are deferred until
   it heals instead of failing the job.
3. **Health-weighted placement** — Algorithm 1 runs with capacities
   scaled by health, steering work off the slow nodes up front.
4. **Hedged reads** — remote reads that cross an adaptive p90 latency
   threshold race a backup replica; first response wins, a dedup ledger
   makes sure no byte is ever counted twice.

The same plan is then replayed with the detector and hedging switched
off: the output is *still* byte-identical (correctness never depends on
the optimizations) but the makespan blows up, because the slow nodes get
a full share of work and every straggling read is waited out.

Run:  python examples/gray_failure_drill.py
"""

from __future__ import annotations

import numpy as np

from repro import HDFSCluster
from repro.faults import (
    ChaosRunner,
    FaultPlan,
    FlakyLink,
    NetworkPartition,
    RetryPolicy,
    SlowNode,
)
from repro.hdfs import Record
from repro.mapreduce.apps.word_count import word_count_job
from repro.metrics import format_kv


def make_records(spec: dict[str, int], payload_len: int = 30) -> list[Record]:
    """Interleave ``count`` records per sub-dataset id chronologically."""
    out: list[Record] = []
    t = 0.0
    remaining = dict(spec)
    while any(v > 0 for v in remaining.values()):
        for sid in list(remaining):
            if remaining[sid] > 0:
                out.append(Record(sid, t, "x" * payload_len))
                remaining[sid] -= 1
                t += 1.0
    return out


def fresh_cluster() -> tuple[HDFSCluster, str]:
    cluster = HDFSCluster(
        10,
        block_size=1024,
        replication=3,
        num_racks=4,
        rng=np.random.default_rng(11),
    )
    cluster.write_dataset("events", make_records({"hot": 2000, "cold": 600}))
    return cluster, "events"


def gray_plan() -> FaultPlan:
    return FaultPlan(
        seed=5,
        slow_nodes=tuple(SlowNode(n, factor=8.0) for n in (1, 4, 7)),
        flaky_links=tuple(
            FlakyLink(a, 9, loss=0.2, latency_s=0.3) for a in (0, 2, 3, 6, 8)
        ),
        partitions=(NetworkPartition(rack=1, start=0.5, heals_at=1.5),),
    )


def run(detect: bool, hedge: bool):
    cluster, name = fresh_cluster()
    runner = ChaosRunner(
        cluster,
        gray_plan(),
        retry=RetryPolicy(heartbeat_timeout_s=0.5),
        detect=detect,
        hedge=hedge,
    )
    return runner.run(cluster.dataset(name), "hot", word_count_job())


def main() -> None:
    with_detector = run(detect=True, hedge=True)
    without = run(detect=False, hedge=False)
    baseline = with_detector.baseline.makespan

    assert with_detector.output_matches_baseline
    assert without.output_matches_baseline
    assert without.job.output == with_detector.job.output

    print(
        format_kv(
            {
                "healthy makespan (s)": f"{baseline:.2f}",
                "gray, detector+hedging (s)": f"{with_detector.makespan:.2f}"
                f"  ({with_detector.makespan / baseline:.2f}x)",
                "gray, neither (s)": f"{without.makespan:.2f}"
                f"  ({without.makespan / baseline:.2f}x)",
                "output byte-identical": "both runs",
                "partition events": with_detector.partition_events,
                "blocks deferred to heal": len(with_detector.deferred_blocks),
                "hedged reads / won": f"{with_detector.hedged_reads}"
                f" / {with_detector.hedges_won}",
            },
            title="Gray-failure drill (3/10 nodes 8x slow, rack cut 0.5-1.5s)",
        )
    )
    print()
    worst = sorted(with_detector.health.items(), key=lambda kv: kv[1])[:4]
    print("lowest health scores (1.0 = healthy):")
    for node, score in worst:
        print(f"  node {node}: {score:.3f}")
    print()
    print(with_detector.summary().format())


if __name__ == "__main__":
    main()
