#!/usr/bin/env python
"""Section II-B theory: why bigger clusters see worse sub-dataset imbalance.

Prints the Figure 2 curves (P(extreme node workload) vs cluster size for
Gamma-distributed per-block sub-dataset amounts), the paper's expected
extreme-node counts at m=128, and a Monte-Carlo cross-check, then renders
a terminal sparkline of each curve.

Run:  python examples/imbalance_theory.py
"""

from __future__ import annotations

from repro.experiments.fig2 import run_fig2
from repro.theory import WorkloadModel

_BARS = " ▁▂▃▄▅▆▇█"


def sparkline(values: list[float]) -> str:
    """Map a series onto unicode block characters."""
    hi = max(values) or 1.0
    return "".join(_BARS[min(int(v / hi * (len(_BARS) - 1)), len(_BARS) - 1)] for v in values)


def main() -> None:
    result = run_fig2(mc_trials=200)
    print(result.format())

    print("\nCurve shapes (cluster size 2 -> 384):")
    for label, points in result.curves.items():
        series = [p.probability for p in points]
        print(f"  {label:<14} {sparkline(series[::4])}")

    # How the per-node fair share shrinks while extremes persist.
    model = WorkloadModel()
    print("\nPer-node expected workload vs cluster size:")
    for m in (8, 32, 128, 384):
        e = model.expected_node_workload(m)
        p = model.prob_above(m, 2.0)
        print(f"  m={m:>3}: E(Z)={e:7.1f}   P(Z > 2E)={p:.4f}")


if __name__ == "__main__":
    main()
