#!/usr/bin/env python
"""Survive a metadata-plane leader crash without losing a byte.

The service's write-ahead journal is replicated across three replicas
and committed at majority quorum.  Mid-ingest, the leader is killed:
the phi-accrual detector notices the silent heartbeats, a Raft-lite
election seats a successor, the new epoch is fenced onto the quorum and
the cluster (so the deposed leader's writes are rejected, not merged),
and the committed journal is recovered from the surviving majority.
In-flight jobs are parked and replayed — nothing is shed.

The proof is the digest triple: metadata, results, and layout digests of
the failover run are byte-identical to the crash-free run at the same
seed.

Run:  python examples/metadata_failover_drill.py
"""

from __future__ import annotations

from dataclasses import replace

from repro.rebalance import layout_digest
from repro.serve import DrillConfig, build_drill

config = DrillConfig(seed=7, num_nodes=12, jobs=12, journal_replicas=3)


def run(cfg):
    setup = build_drill(cfg)
    summary = setup.service.run(setup.requests, setup.appends)
    return summary, layout_digest(setup.service._view)


print("=== healthy run, 3 journal replicas ===")
healthy, healthy_layout = run(config)
print(healthy.format())

print()
print("=== same schedule, leader killed mid-ingest ===")
crashed, crashed_layout = run(replace(config, leader_crash=True))
print(crashed.format())

print()
print("failover check")
print(f"  leadership changes:     {crashed.leadership_changes}")
print(f"  failover downtime:      {crashed.failover_downtime:.2f}s")
print(f"  jobs parked + replayed: {crashed.requeued_on_crash}")
print(f"  silent drops:           {crashed.silent_drops}")
print(f"  metadata digests agree: {crashed.metadata_digest == healthy.metadata_digest}")
print(f"  results digests agree:  {crashed.results_digest == healthy.results_digest}")
print(f"  layout digests agree:   {crashed_layout == healthy_layout}")

print()
print("=== failover latency vs replica count ===")
print(f"{'replicas':>8} {'downtime (s)':>12} {'parked':>7} {'digests':>8}")
for replicas in (1, 3, 5):
    clean, clean_layout = run(replace(config, journal_replicas=replicas))
    failed, failed_layout = run(
        replace(config, journal_replicas=replicas, leader_crash=True)
    )
    identical = (
        failed.metadata_digest == clean.metadata_digest
        and failed.results_digest == clean.results_digest
        and failed_layout == clean_layout
    )
    print(
        f"{replicas:>8} {failed.failover_downtime:>12.2f} "
        f"{failed.requeued_on_crash:>7} {'match' if identical else 'DIFFER':>8}"
    )
