#!/usr/bin/env python
"""The paper's headline experiment: four analysis jobs on a movie sub-dataset.

Reproduces the Section V-A workflow end to end — selection phase (filter
the target movie's reviews out of the full dataset), then Moving Average,
Word Count, Aggregate Word Histogram and Top K Search over the filtered
data — once with stock Hadoop scheduling and once with DataNet, printing
the Fig. 5/6/7 comparisons plus a sample of each job's *actual output*
(the engine really executes the map/reduce functions).

Run:  python examples/movie_analysis.py [--small]
"""

from __future__ import annotations

import argparse

from repro.experiments.config import ReferenceConfig
from repro.experiments.fig5 import run_fig5
from repro.experiments.fig6 import run_fig6
from repro.experiments.fig7 import run_fig7
from repro.experiments.pipeline import run_reference_pipeline


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--small", action="store_true", help="run the fast scaled-down variant"
    )
    args = parser.parse_args()
    cfg = ReferenceConfig.small() if args.small else ReferenceConfig()

    pipe = run_reference_pipeline(cfg)
    print(f"target sub-dataset: {pipe.env.target}\n")
    print(run_fig5(cfg).format())
    print()
    print(run_fig6(cfg).format())
    print()
    print(run_fig7(cfg).format())

    # Show that outputs are real and identical under both schedules.
    wc = pipe.with_datanet.jobs["word_count"].output
    top_words = sorted(wc, key=wc.get, reverse=True)[:5]
    print("\nWordCount top words:", {w: wc[w] for w in top_words})
    topk = pipe.with_datanet.jobs["top_k_search"].output["topk"]
    print("TopK best match:", topk[0] if topk else None)
    mavg = pipe.with_datanet.jobs["moving_average"].output
    first_windows = dict(sorted(mavg.items())[:3])
    print("MovingAverage first windows:", {
        w: (round(avg, 2), n) for w, (avg, n) in first_windows.items()
    })
    same = all(
        pipe.with_datanet.jobs[app].output == pipe.without_datanet.jobs[app].output
        for app in pipe.with_datanet.jobs
    )
    print(f"outputs identical across scheduling methods: {same}")


if __name__ == "__main__":
    main()
