#!/usr/bin/env python
"""Run the DataNet deployment as a long-lived multi-tenant service.

Three tenants share one cluster through admission control: a weight-2
tenant, a weight-1 tenant, and a rate-limited tenant whose quota sheds
part of its stream with typed rejections.  Fresh reviews stream in as
append batches and are indexed incrementally through the write-ahead
metadata journal; then the same schedule is replayed with a driver crash
landing mid-append, and the digests prove recovery is byte-identical.

Run:  python examples/multi_tenant_service.py
"""

from __future__ import annotations

from dataclasses import replace

from repro.serve import DrillConfig, run_service_drill

config = DrillConfig(seed=7, num_nodes=12, jobs=18)

print("=== healthy run ===")
healthy = run_service_drill(config)
print(healthy.format())

print()
print("=== same schedule, driver crash mid-append ===")
crashed = run_service_drill(replace(config, crash=True))
print(crashed.format())

print()
print("journal recovery check")
print(f"  metadata digests agree: {crashed.metadata_digest == healthy.metadata_digest}")
print(f"  results digests agree:  {crashed.results_digest == healthy.results_digest}")
print(f"  jobs requeued on crash: {crashed.requeued_on_crash}")

print()
print("=== 4x overload on a single slot: backpressure sheds, never drops ===")
overload = run_service_drill(
    replace(config, pressure=4.0, slots=1, high_water=4, jobs=24)
)
print(overload.format())
print()
print(
    f"every submission accounted for: {overload.submitted} submitted = "
    f"{overload.admitted} admitted + {overload.rejected_total} typed "
    f"rejections ({overload.rejected}); silent drops: {overload.silent_drops}"
)
