#!/usr/bin/env python
"""Quickstart: index a dataset with DataNet and schedule a balanced analysis.

Walks the full public API surface in ~60 lines:

1. stand up a simulated HDFS cluster,
2. write a content-clustered movie review log into it,
3. build the ElasticMap metadata with a single scan (``DataNet.build``),
4. ask where a sub-dataset lives and how big it is (Eq. 6),
5. schedule its analysis tasks with Algorithm 1 and compare the workload
   balance against stock Hadoop locality scheduling.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import DataNet, HDFSCluster
from repro.core.bucketizer import BucketSpec
from repro.mapreduce import LocalityScheduler
from repro.metrics import format_kv, imbalance_ratio
from repro.units import KiB, format_size
from repro.workloads import MovieLensGenerator, most_popular


def main() -> None:
    rng = np.random.default_rng(7)

    # 1. A 16-node cluster storing 64 KiB blocks with 3-way replication.
    cluster = HDFSCluster(num_nodes=16, block_size=64 * KiB, rng=rng)

    # 2. 50k chronologically ordered movie reviews; popular movies cluster
    #    around their release dates (the paper's content clustering).
    records = MovieLensGenerator(
        num_movies=500, total_reviews=50_000, duration_days=90.0, rng=rng
    ).generate()
    dataset = cluster.write_dataset("movies", records)

    # 3. One scan builds the per-block ElasticMap (hash map for dominant
    #    sub-datasets, Bloom filter for the tail).
    datanet = DataNet.build(
        dataset, alpha=0.3, spec=BucketSpec.for_block_size(cluster.block_size)
    )

    # 4. Query the metadata about the most popular movie.
    movie = most_popular(records)
    estimate = datanet.estimate_total_size(movie)
    truth = dataset.subdataset_total_bytes(movie)
    holding = datanet.blocks_containing(movie)

    # 5. Schedule its analysis with Algorithm 1 vs stock locality.
    aware = datanet.schedule(movie, skip_absent=False)
    stock = LocalityScheduler().schedule(
        datanet.bipartite_graph(movie, skip_absent=False)
    )

    print(
        format_kv(
            {
                "dataset": f"{dataset.num_blocks} blocks, {format_size(dataset.total_bytes)}",
                "target sub-dataset": movie,
                "blocks holding it": f"{len(holding)} of {dataset.num_blocks}",
                "size estimate (Eq. 6)": format_size(estimate),
                "size ground truth": format_size(truth),
                "metadata footprint": format_size(datanet.memory_bytes()),
                "stock imbalance (max/mean)": f"{imbalance_ratio(stock.workload_by_node.values()):.2f}",
                "DataNet imbalance (max/mean)": f"{imbalance_ratio(aware.workload_by_node.values()):.2f}",
                "DataNet locality": f"{aware.locality_fraction:.0%}",
            },
            title="DataNet quickstart",
        )
    )


if __name__ == "__main__":
    main()
