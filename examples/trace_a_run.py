#!/usr/bin/env python
"""See inside one analysis run: spans, metrics, and a Perfetto trace.

Builds a small cluster, runs word count over the hottest sub-dataset with
a live :class:`~repro.obs.Observability` bundle threaded through, then
writes the three artifact formats (open ``trace.json`` at
https://ui.perfetto.dev) and prints the span tree.

Run:  python examples/trace_a_run.py [--out DIR]
"""

from __future__ import annotations

import argparse
from pathlib import Path

import numpy as np

from repro import DataNet, HDFSCluster
from repro.mapreduce.apps.word_count import word_count_job
from repro.mapreduce.engine import MapReduceEngine
from repro.obs import Observability
from repro.obs.export import snapshot_text, write_chrome_trace, write_jsonl
from repro.workloads import MovieLensGenerator


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=".", help="artifact directory")
    args = parser.parse_args()

    rng = np.random.default_rng(7)
    records = MovieLensGenerator(
        num_movies=40, total_reviews=5_000, rng=rng
    ).generate()
    cluster = HDFSCluster(num_nodes=4, block_size=64 * 1024, rng=rng)
    dataset = cluster.write_dataset("movies", records)
    sub_id = max(dataset.subdataset_ids(), key=dataset.subdataset_total_bytes)

    obs = Observability.create()  # live tracer + metrics registry
    datanet = DataNet.build(dataset, alpha=0.3, obs=obs)
    engine = MapReduceEngine(cluster, obs=obs)
    result = engine.run_job(
        dataset, sub_id, word_count_job(), datanet.schedule(sub_id)
    )
    print(f"job over {sub_id!r} finished in {result.total_time:.3f} sim-seconds\n")

    for depth, span in obs.tracer.walk():
        interval = (
            f"[{span.sim_start:.3f}, {span.sim_end:.3f}]s"
            if span.sim_start is not None and span.sim_end is not None
            else "(wall only)"
        )
        print(f"{'  ' * depth}{span.name} <{span.category}> {interval}")

    Path(args.out).mkdir(parents=True, exist_ok=True)
    write_chrome_trace(f"{args.out}/trace.json", obs.tracer)
    write_jsonl(f"{args.out}/events.jsonl", tracer=obs.tracer, metrics=obs.metrics)
    print(f"\nwrote {args.out}/trace.json and {args.out}/events.jsonl\n")
    print(snapshot_text(tracer=obs.tracer, metrics=obs.metrics))


if __name__ == "__main__":
    main()
