#!/usr/bin/env python
"""WorldCup'98-style burst traffic: a third clustering regime.

The paper cites the World Cup HTTP trace [3] as a canonical sub-dataset
workload.  Match traffic forms extreme bursts around kickoff — even
sharper clustering than movie reviews — and is a stress test for DataNet:
a match's requests may fit in just a handful of consecutive blocks.

This example analyzes one match's traffic (grep over its requests), and
jointly schedules a *family* of sub-datasets (a whole tournament round)
with ``DataNet.schedule_many``.

Run:  python examples/worldcup_bursts.py
"""

from __future__ import annotations

import numpy as np

from repro import DataNet, HDFSCluster
from repro.core.bucketizer import BucketSpec
from repro.mapreduce import ClusterCostModel, LocalityScheduler, MapReduceEngine
from repro.mapreduce.apps import grep_job
from repro.metrics import format_kv, imbalance_ratio
from repro.units import KiB, format_size
from repro.workloads import WorldCupGenerator


def main() -> None:
    rng = np.random.default_rng(1998)
    cluster = HDFSCluster(num_nodes=16, block_size=32 * KiB, rng=rng)
    generator = WorldCupGenerator(
        num_matches=64,
        total_requests=60_000,
        duration_days=33.0,
        burst_sigma_days=0.15,
        rng=rng,
    )
    records = generator.generate()
    dataset = cluster.write_dataset("worldcup", records)
    datanet = DataNet.build(
        dataset, alpha=0.3, spec=BucketSpec.for_block_size(cluster.block_size)
    )
    engine = MapReduceEngine(cluster, ClusterCostModel(data_scale=2048.0))

    # single match: the final (rank 0 by traffic)
    sizes = dataset.subdataset_sizes()
    final = max(sizes, key=sizes.get)
    per_block = dataset.subdataset_bytes_per_block(final)
    stock = LocalityScheduler().schedule(
        datanet.bipartite_graph(final, skip_absent=False)
    )
    aware = datanet.schedule(final, skip_absent=False)

    job = grep_job("goal|match|score")
    sel = engine.run_selection(dataset, final, aware, job.profile)
    result = engine.run_analysis(job, sel.local_data)

    print(
        format_kv(
            {
                "match": final,
                "traffic": format_size(sizes[final]),
                "blocks holding it": f"{len(per_block)} of {dataset.num_blocks}",
                "burst concentration (top 5 blocks)": f"{sum(sorted(per_block.values())[-5:]) / sizes[final]:.0%}",
                "stock imbalance": f"{imbalance_ratio(stock.workload_by_node.values()):.2f}",
                "DataNet imbalance": f"{imbalance_ratio(aware.workload_by_node.values()):.2f}",
                "grep matches": result.output.get("goal|match|score", 0),
            },
            title="Single-match burst analysis",
        )
    )

    # a whole round: jointly balance the 8 quarter/semi/final matches
    round_matches = sorted(sizes, key=sizes.get, reverse=True)[:8]
    joint = datanet.schedule_many(round_matches, skip_absent=False)
    print()
    print(
        format_kv(
            {
                "matches": len(round_matches),
                "combined traffic": format_size(
                    sum(sizes[m] for m in round_matches)
                ),
                "joint imbalance (max/mean)": f"{imbalance_ratio(joint.workload_by_node.values()):.2f}",
                "locality": f"{joint.locality_fraction:.0%}",
            },
            title="Joint scheduling of a tournament round (schedule_many)",
        )
    )


if __name__ == "__main__":
    main()
