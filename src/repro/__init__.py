"""repro — a full reproduction of *DataNet: A Data Distribution-aware
Method for Sub-dataset Analysis on Distributed File Systems* (IPDPS 2016).

Quickstart::

    import numpy as np
    from repro import HDFSCluster, DataNet
    from repro.workloads import MovieLensGenerator

    rng = np.random.default_rng(7)
    cluster = HDFSCluster(num_nodes=32, block_size=1 << 16, rng=rng)
    records = MovieLensGenerator(num_movies=500, rng=rng).generate()
    dataset = cluster.write_dataset("movies", records)

    datanet = DataNet.build(dataset, alpha=0.3)   # single-scan ElasticMap
    movie = dataset.subdataset_ids()[0]
    print(datanet.estimate_total_size(movie))     # Eq. 6 size estimate
    assignment = datanet.schedule(movie)          # Algorithm 1

Package layout: ``repro.core`` (ElasticMap, schedulers — the paper's
contribution), ``repro.hdfs`` (storage substrate), ``repro.mapreduce``
(execution substrate), ``repro.workloads`` (synthetic datasets),
``repro.theory`` (Section II-B analysis), ``repro.baselines``,
``repro.metrics`` and ``repro.experiments`` (one driver per paper
figure/table).
"""

from .core import (
    BloomFilter,
    BucketSeparator,
    BucketSpec,
    BlockElasticMap,
    ElasticMapArray,
    ElasticMapBuilder,
    MemoryModel,
    BipartiteGraph,
    DistributionAwareScheduler,
    Assignment,
    DataNet,
    optimal_assignment,
)
from .hdfs import HDFSCluster, DatasetView, Record
from .errors import ReproError
from .obs import NULL_OBS, Observability

__version__ = "1.0.0"

__all__ = [
    "BloomFilter",
    "BucketSeparator",
    "BucketSpec",
    "BlockElasticMap",
    "ElasticMapArray",
    "ElasticMapBuilder",
    "MemoryModel",
    "BipartiteGraph",
    "DistributionAwareScheduler",
    "Assignment",
    "DataNet",
    "optimal_assignment",
    "HDFSCluster",
    "DatasetView",
    "Record",
    "ReproError",
    "Observability",
    "NULL_OBS",
    "__version__",
]
