"""Comparison baselines.

- :mod:`repro.baselines.default_hadoop` — re-export of the stock
  block-locality scheduler (the paper's "without DataNet").
- :mod:`repro.baselines.dynamic_rebalance` — SkewTune-style runtime
  migration (paper Section V-A.4's alternative: observe the imbalance
  after selection, then move data; the paper measures >30 % of the
  sub-dataset migrating).
- :mod:`repro.baselines.sampling` — LIBRA-style intermediate-data sampling
  to balance *reducers* (orthogonal to DataNet, included for the related-
  work comparison benches).
"""

from .default_hadoop import DefaultHadoopScheduler
from .dynamic_rebalance import DynamicRebalancer, MigrationStats
from .sampling import SamplingPartitioner

__all__ = [
    "DefaultHadoopScheduler",
    "DynamicRebalancer",
    "MigrationStats",
    "SamplingPartitioner",
]
