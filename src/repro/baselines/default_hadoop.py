"""The stock Hadoop scheduler, re-exported under its baseline role.

The class lives in :mod:`repro.mapreduce.scheduler` (it is part of the
MapReduce substrate); this alias exists so baseline enumeration in
experiments and ablations reads naturally.
"""

from __future__ import annotations

from ..mapreduce.scheduler import LocalityScheduler

__all__ = ["DefaultHadoopScheduler"]


class DefaultHadoopScheduler(LocalityScheduler):
    """Block-locality-driven assignment, blind to sub-dataset distribution.

    Identical to :class:`~repro.mapreduce.scheduler.LocalityScheduler`;
    see that class for the behaviour.
    """
