"""SkewTune-style dynamic workload rebalancing (paper Section V-A.4).

The alternative to DataNet the paper discusses: run the selection phase
with stock scheduling, *observe* the resulting per-node sub-dataset sizes,
then migrate data from overloaded to underloaded nodes before analysis.
It reaches a balanced state but pays for it at runtime: the paper measures
"the overall percentage of data migration is more than 30 %", plus
monitoring overhead and network occupancy — costs DataNet avoids by
foreseeing the imbalance.

:class:`DynamicRebalancer` implements the migration: greedy largest-
surplus-to-largest-deficit record moves until every node is within
``tolerance`` of the mean, with migration time modeled as pipelined
point-to-point transfers (each node sends/receives serially; distinct
pairs move in parallel).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Tuple

from ..errors import ConfigError
from ..hdfs.records import Record
from ..mapreduce.costmodel import ClusterCostModel

__all__ = ["DynamicRebalancer", "MigrationStats"]

NodeId = Hashable


@dataclass
class MigrationStats:
    """What the rebalance cost.

    Attributes:
        migrated_bytes: sub-dataset bytes moved between nodes.
        total_bytes: total sub-dataset bytes (denominator of the paper's
            ">30 % of data migrated" figure).
        migration_time: modeled seconds for all transfers (pipelined).
        monitor_time: modeled seconds spent collecting runtime statistics.
        transfers: ``(src, dst, bytes)`` per migration edge.
        nodes_touched: count of nodes that sent or received data.
    """

    migrated_bytes: int
    total_bytes: int
    migration_time: float
    monitor_time: float
    transfers: List[Tuple[NodeId, NodeId, int]]
    nodes_touched: int

    @property
    def migration_fraction(self) -> float:
        """Fraction of the sub-dataset that moved (paper: > 0.30)."""
        return self.migrated_bytes / self.total_bytes if self.total_bytes else 0.0

    @property
    def overhead_time(self) -> float:
        """Total runtime overhead the rebalance added."""
        return self.migration_time + self.monitor_time


class DynamicRebalancer:
    """Post-hoc migration toward the mean per-node workload.

    Args:
        cost: cluster cost model (network speed prices the migration).
        tolerance: stop once every node is within ``tolerance`` (fraction
            of the mean) of the mean workload.
        monitor_overhead_s: fixed statistics-collection cost (progress
            reports from every node, as SkewTune's scan does).
    """

    def __init__(
        self,
        cost: ClusterCostModel | None = None,
        *,
        tolerance: float = 0.1,
        monitor_overhead_s: float = 2.0,
    ) -> None:
        if not (0.0 < tolerance < 1.0):
            raise ConfigError("tolerance must be in (0, 1)")
        if monitor_overhead_s < 0:
            raise ConfigError("monitor_overhead_s must be non-negative")
        self.cost = cost or ClusterCostModel()
        self.tolerance = tolerance
        self.monitor_overhead_s = monitor_overhead_s

    def rebalance(
        self, local_data: Mapping[NodeId, List[Record]]
    ) -> Tuple[Dict[NodeId, List[Record]], MigrationStats]:
        """Migrate records until per-node bytes are within tolerance of mean.

        Returns the balanced ``local_data`` (new dict; inputs untouched)
        and the :class:`MigrationStats`.
        """
        if not local_data:
            raise ConfigError("rebalance requires at least one node")
        data: Dict[NodeId, List[Record]] = {
            n: list(records) for n, records in local_data.items()
        }
        loads: Dict[NodeId, int] = {
            n: sum(r.nbytes for r in records) for n, records in data.items()
        }
        total = sum(loads.values())
        mean = total / len(loads)
        band = self.tolerance * mean

        transfers: List[Tuple[NodeId, NodeId, int]] = []
        migrated = 0
        # Greedy: repeatedly move records from the most overloaded node to
        # the most underloaded one.
        while True:
            src = max(loads, key=lambda n: loads[n])
            dst = min(loads, key=lambda n: loads[n])
            surplus = loads[src] - mean
            deficit = mean - loads[dst]
            if surplus <= band and deficit <= band:
                break
            want = min(surplus, deficit)
            if want <= 0:
                break
            moved_bytes = 0
            moved: List[Record] = []
            while data[src] and moved_bytes < want:
                r = data[src].pop()
                moved.append(r)
                moved_bytes += r.nbytes
            if not moved:
                break
            data[dst].extend(moved)
            loads[src] -= moved_bytes
            loads[dst] += moved_bytes
            migrated += moved_bytes
            transfers.append((src, dst, moved_bytes))

        # Pipelined transfer time: per-node serialized send/receive volume,
        # different pairs in parallel -> the busiest endpoint bounds time.
        endpoint_bytes: Dict[NodeId, int] = {}
        for src, dst, nbytes in transfers:
            endpoint_bytes[src] = endpoint_bytes.get(src, 0) + nbytes
            endpoint_bytes[dst] = endpoint_bytes.get(dst, 0) + nbytes
        migration_time = (
            max((self.cost.transfer(b) for b in endpoint_bytes.values()), default=0.0)
        )
        stats = MigrationStats(
            migrated_bytes=migrated,
            total_bytes=total,
            migration_time=migration_time,
            monitor_time=self.monitor_overhead_s,
            transfers=transfers,
            nodes_touched=len(endpoint_bytes),
        )
        return data, stats
