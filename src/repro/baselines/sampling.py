"""LIBRA-style sampling partitioner (paper related work [7]).

LIBRA balances *reducer* load by sampling the intermediate data to
estimate per-key frequencies and then packing keys onto reducers by
estimated weight instead of hashing.  It addresses a different skew than
DataNet (reduce-side vs map-side input), which is why the paper calls the
two orthogonal; the comparison bench demonstrates exactly that — sampling
fixes reducer skew but leaves the map-side imbalance untouched.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterable, List, Tuple

import numpy as np

from ..errors import ConfigError

__all__ = ["SamplingPartitioner"]


class SamplingPartitioner:
    """Key→reducer assignment built from a sample of intermediate pairs.

    Args:
        num_reducers: reducer count to pack keys onto.
        sample_rate: fraction of intermediate pairs to sample.
        rng: generator for sampling (seed for determinism).

    Usage::

        part = SamplingPartitioner(4, rng=rng)
        part.fit(intermediate_pairs)          # [(key, value), ...]
        job.partition = part                  # callable key -> reducer
    """

    def __init__(
        self,
        num_reducers: int,
        *,
        sample_rate: float = 0.1,
        rng: np.random.Generator | None = None,
    ) -> None:
        if num_reducers <= 0:
            raise ConfigError("num_reducers must be positive")
        if not (0.0 < sample_rate <= 1.0):
            raise ConfigError("sample_rate must be in (0, 1]")
        self.num_reducers = num_reducers
        self.sample_rate = sample_rate
        self.rng = rng if rng is not None else np.random.default_rng()
        self._assignment: Dict[Hashable, int] = {}
        self._fitted = False

    def fit(self, pairs: Iterable[Tuple[Any, Any]]) -> "SamplingPartitioner":
        """Sample the pairs, estimate key weights, pack keys LPT-greedily."""
        counts: Dict[Hashable, int] = {}
        for key, _value in pairs:
            if self.sample_rate >= 1.0 or self.rng.random() < self.sample_rate:
                counts[key] = counts.get(key, 0) + 1
        loads = [0.0] * self.num_reducers
        # Largest (estimated) key first onto the least-loaded reducer.
        for key in sorted(counts, key=lambda k: (-counts[k], repr(k))):
            r = int(np.argmin(loads))
            self._assignment[key] = r
            loads[r] += counts[key]
        self._fitted = True
        return self

    def __call__(self, key: Hashable) -> int:
        """Reducer index for ``key`` (unsampled keys fall back to hashing)."""
        if not self._fitted:
            raise ConfigError("SamplingPartitioner used before fit()")
        if key in self._assignment:
            return self._assignment[key]
        import hashlib

        digest = hashlib.blake2b(repr(key).encode(), digest_size=8).digest()
        return int.from_bytes(digest, "little") % self.num_reducers

    def reducer_loads(self, pairs: Iterable[Tuple[Any, Any]]) -> List[int]:
        """Pair counts per reducer under this partitioner (for evaluation)."""
        loads = [0] * self.num_reducers
        for key, _v in pairs:
            loads[self(key)] += 1
        return loads
