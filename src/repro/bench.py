"""The core performance suite behind ``repro bench`` and ``BENCH_core.json``.

Every PR appends one schema-validated record to ``BENCH_core.json``, so the
repository carries its own performance trajectory: regressions show up as a
drop between consecutive records measured by the *same* harness at the
*same* fixed seeds.  Each kernel is measured twice — the NumPy batch path
and the scalar reference oracle — and the recorded speedup is the claim
the vectorization work has to keep honest.

The suite is wall-clock timing over seed-deterministic workloads: the
*data* never changes between runs, only the machine's speed.  ``quick``
mode shrinks the workloads ~20x for CI smoke runs; the recorded schema is
identical.
"""

from __future__ import annotations

import json
import os
import random
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

__all__ = [
    "SCHEMA_NAME",
    "run_core_suite",
    "validate_record",
    "append_record",
    "load_records",
    "format_record",
]

SCHEMA_NAME = "bench-core/v1"

#: result section → numeric fields every record must carry
_RESULT_FIELDS: Dict[str, Tuple[str, ...]] = {
    "elasticmap_build": (
        "records",
        "blocks",
        "vectorized_records_per_s",
        "scalar_records_per_s",
        "speedup",
    ),
    "bloom_membership": (
        "keys",
        "lookups",
        "vectorized_lookups_per_s",
        "scalar_lookups_per_s",
        "vectorized_adds_per_s",
        "scalar_adds_per_s",
        "speedup",
    ),
    "bucketizer": (
        "records",
        "vectorized_records_per_s",
        "scalar_records_per_s",
        "speedup",
    ),
    "countmin": (
        "updates",
        "vectorized_updates_per_s",
        "scalar_updates_per_s",
        "speedup",
    ),
    "simulator": (
        "tasks",
        "events",
        "events_per_s",
        "reference_events_per_s",
        "speedup",
    ),
    "scheduling": (
        "blocks",
        "cached_graphs_per_s",
        "uncached_graphs_per_s",
        "speedup",
    ),
}


def _time(fn: Callable[[], object], *, repeat: int = 2) -> float:
    """Best-of-``repeat`` wall time of ``fn()`` in seconds (> 0)."""
    best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return max(best, 1e-9)


def _make_scan(
    rng: random.Random, blocks: int, records_per_block: int, sids: int
) -> List[Tuple[int, List[str], List[int]]]:
    """Seed-deterministic columnar scan input: skewed sizes, shared sids."""
    out = []
    size_choices = [64, 512, 4096, 20_000, 65_536, 500_000]
    weights = [30, 25, 20, 15, 7, 3]
    for bid in range(blocks):
        ids = [f"sid-{rng.randrange(sids)}" for _ in range(records_per_block)]
        sizes = rng.choices(size_choices, weights=weights, k=records_per_block)
        out.append((bid, ids, sizes))
    return out


def _bench_elasticmap_build(rng: random.Random, quick: bool) -> Dict[str, float]:
    from .core.builder import ElasticMapBuilder

    blocks = 16 if quick else 64
    per_block = 3_125 if quick else 15_625  # 50k / 1M records total
    scan = _make_scan(rng, blocks, per_block, sids=4_000)
    records = blocks * per_block

    def vec() -> None:
        ElasticMapBuilder(alpha=0.3, vectorized=True).build_arrays(scan)

    def sca() -> None:
        builder = ElasticMapBuilder(alpha=0.3, vectorized=False)
        builder.build(
            [(bid, zip(ids, sizes)) for bid, ids, sizes in scan]
        )

    t_vec = _time(vec, repeat=3)
    t_sca = _time(sca)
    return {
        "records": records,
        "blocks": blocks,
        "vectorized_records_per_s": records / t_vec,
        "scalar_records_per_s": records / t_sca,
        "speedup": t_sca / t_vec,
    }


def _bench_bloom(rng: random.Random, quick: bool) -> Dict[str, float]:
    from .core.bloom import BloomFilter

    n = 50_000 if quick else 1_000_000
    keys = [f"sid-{i}-{rng.randrange(1 << 30)}" for i in range(n)]
    probes = keys[: n // 2] + [f"absent-{i}" for i in range(n // 2)]
    # the scalar oracle is priced on a sample large enough to be stable
    # but small enough to keep the suite interactive; rates are size-free
    sample = min(n, 100_000)

    vec_filter = BloomFilter(capacity=n, error_rate=0.01, seed=7)
    t_vec_add = _time(lambda: vec_filter.add_many(keys))
    t_vec_q = _time(lambda: vec_filter.contains_many(probes), repeat=3)

    sca_filter = BloomFilter(capacity=n, error_rate=0.01, seed=7)

    def sca_add() -> None:
        for k in keys[:sample]:
            sca_filter.add(k)

    def sca_query() -> None:
        for k in probes[:sample]:
            k in sca_filter  # noqa: B015 - timing the membership test

    t_sca_add = _time(sca_add)
    t_sca_q = _time(sca_query)
    vec_rate = len(probes) / t_vec_q
    sca_rate = sample / t_sca_q
    return {
        "keys": n,
        "lookups": len(probes),
        "scalar_sample": sample,
        "vectorized_lookups_per_s": vec_rate,
        "scalar_lookups_per_s": sca_rate,
        "vectorized_adds_per_s": n / t_vec_add,
        "scalar_adds_per_s": sample / t_sca_add,
        "speedup": vec_rate / sca_rate,
    }


def _bench_bucketizer(rng: random.Random, quick: bool) -> Dict[str, float]:
    from .core.bucketizer import BucketSeparator

    n = 50_000 if quick else 500_000
    ids = [f"sid-{rng.randrange(5_000)}" for _ in range(n)]
    sizes = [rng.choice([64, 512, 4096, 20_000, 500_000]) for _ in range(n)]
    sample = min(n, 100_000)

    def vec() -> None:
        BucketSeparator().observe_batch(ids, sizes)

    def sca() -> None:
        sep = BucketSeparator()
        for sid, nbytes in zip(ids[:sample], sizes[:sample]):
            sep.observe(sid, nbytes)

    t_vec = _time(vec)
    t_sca = _time(sca, repeat=1)
    vec_rate = n / t_vec
    sca_rate = sample / t_sca
    return {
        "records": n,
        "vectorized_records_per_s": vec_rate,
        "scalar_records_per_s": sca_rate,
        "speedup": vec_rate / sca_rate,
    }


def _bench_countmin(rng: random.Random, quick: bool) -> Dict[str, float]:
    from .core.countmin import CountMinSketch

    n = 20_000 if quick else 200_000
    keys = [f"sid-{i}" for i in range(n)]  # distinct: the vectorized fast path
    amounts = [rng.randrange(1, 10_000) for _ in range(n)]
    sample = min(n, 50_000)

    def vec() -> None:
        CountMinSketch(epsilon=0.001, delta=0.01, seed=3).update_many(keys, amounts)

    def sca() -> None:
        sketch = CountMinSketch(epsilon=0.001, delta=0.01, seed=3)
        for k, a in zip(keys[:sample], amounts[:sample]):
            sketch.add(k, a)

    t_vec = _time(vec)
    t_sca = _time(sca, repeat=1)
    vec_rate = n / t_vec
    sca_rate = sample / t_sca
    return {
        "updates": n,
        "vectorized_updates_per_s": vec_rate,
        "scalar_updates_per_s": sca_rate,
        "speedup": vec_rate / sca_rate,
    }


def _make_tasks(rng: random.Random, n_tasks: int, n_nodes: int):
    from .sim.tasks import SimTask

    tasks = []
    for i in range(n_tasks):
        n_deps = min(i, rng.choice([0, 0, 1, 2]))
        deps = frozenset(
            f"task-{j:06d}" for j in rng.sample(range(i), n_deps)
        )
        tasks.append(
            SimTask(
                task_id=f"task-{i:06d}",
                node=f"node-{rng.randrange(n_nodes)}",
                duration=rng.choice([0.5, 1.0, 2.0, 4.0]),
                deps=deps,
            )
        )
    return tasks


def _bench_simulator(rng: random.Random, quick: bool) -> Dict[str, float]:
    from .faults.injector import FaultInjector
    from .faults.plan import FaultPlan
    from .sim.simulator import DiscreteEventSimulator

    n_tasks = 2_000 if quick else 50_000
    tasks = _make_tasks(rng, n_tasks, n_nodes=100)
    sim = DiscreteEventSimulator(slots_per_node=2)
    result = sim.run(list(tasks))
    events = result.events_processed

    t_fast = _time(lambda: sim.run(list(tasks)))
    # the fault-aware loop with an empty plan is the reference
    # implementation the fast path must stay bit-identical to
    t_ref = _time(
        lambda: sim.run(list(tasks), injector=FaultInjector(FaultPlan()))
    )
    return {
        "tasks": n_tasks,
        "events": events,
        "events_per_s": events / t_fast,
        "reference_events_per_s": events / t_ref,
        "speedup": t_ref / t_fast,
    }


def _bench_scheduling(rng: random.Random, quick: bool) -> Dict[str, float]:
    from .core.builder import ElasticMapBuilder
    from .core.datanet import DataNet

    blocks = 64 if quick else 512
    scan = _make_scan(rng, blocks, 400, sids=800)
    array = ElasticMapBuilder(alpha=0.3).build_arrays(scan)
    placement = {
        bid: [f"node-{(bid + r) % 20}" for r in range(3)] for bid in range(blocks)
    }
    datanet = DataNet(array, placement)
    sids = [f"sid-{i}" for i in range(40)]
    rounds = 5

    def cached() -> None:
        for _ in range(rounds):
            for sid in sids:
                datanet.bipartite_graph(sid)

    def uncached() -> None:
        for _ in range(rounds):
            for sid in sids:
                fresh = DataNet(array, placement)
                fresh.bipartite_graph(sid)

    graphs = rounds * len(sids)
    t_cached = _time(cached)
    t_uncached = _time(uncached, repeat=1)
    cached_rate = graphs / t_cached
    uncached_rate = graphs / t_uncached
    return {
        "blocks": blocks,
        "cached_graphs_per_s": cached_rate,
        "uncached_graphs_per_s": uncached_rate,
        "speedup": cached_rate / uncached_rate,
    }


def run_core_suite(*, quick: bool = False, seed: int = 1729) -> Dict[str, object]:
    """Run every core benchmark and return one BENCH_core.json record."""
    import numpy as np

    results: Dict[str, Dict[str, float]] = {}
    for name, fn in (
        ("elasticmap_build", _bench_elasticmap_build),
        ("bloom_membership", _bench_bloom),
        ("bucketizer", _bench_bucketizer),
        ("countmin", _bench_countmin),
        ("simulator", _bench_simulator),
        ("scheduling", _bench_scheduling),
    ):
        results[name] = fn(random.Random(seed), quick)
    return {
        "schema": SCHEMA_NAME,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "seed": seed,
        "quick": quick,
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "results": results,
    }


def validate_record(record: object) -> List[str]:
    """Schema check for one record; returns a list of problems (empty = ok).

    Hand-rolled on purpose: the container carries no jsonschema package,
    and the schema is small enough that explicitness beats a dependency.
    """
    problems: List[str] = []
    if not isinstance(record, dict):
        return [f"record must be an object, got {type(record).__name__}"]
    if record.get("schema") != SCHEMA_NAME:
        problems.append(
            f"schema must be {SCHEMA_NAME!r}, got {record.get('schema')!r}"
        )
    for key, kind in (
        ("timestamp", str),
        ("seed", int),
        ("quick", bool),
        ("python", str),
        ("numpy", str),
    ):
        if not isinstance(record.get(key), kind):
            problems.append(f"{key} must be {kind.__name__}")
    results = record.get("results")
    if not isinstance(results, dict):
        problems.append("results must be an object")
        return problems
    for section, fields in _RESULT_FIELDS.items():
        data = results.get(section)
        if not isinstance(data, dict):
            problems.append(f"results.{section} missing")
            continue
        for f in fields:
            value = data.get(f)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                problems.append(f"results.{section}.{f} must be a number")
            elif value < 0:
                problems.append(f"results.{section}.{f} must be non-negative")
    return problems


def load_records(path: str) -> List[Dict[str, object]]:
    """Read a BENCH_core.json history (a JSON array; [] when absent)."""
    if not os.path.exists(path):
        return []
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, list):
        raise ValueError(f"{path}: expected a JSON array of records")
    return data


def append_record(path: str, record: Dict[str, object]) -> int:
    """Validate + append one record to the history; returns record count.

    Raises:
        ValueError: when the record fails schema validation.
    """
    problems = validate_record(record)
    if problems:
        raise ValueError("invalid bench record: " + "; ".join(problems))
    records = load_records(path)
    records.append(record)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(records, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return len(records)


def format_record(record: Dict[str, object]) -> str:
    """Human-readable one-record summary table."""
    lines = [
        f"bench-core @ {record['timestamp']}  "
        f"(seed={record['seed']}, quick={record['quick']})",
        f"{'benchmark':<18} {'vectorized':>14} {'scalar':>14} {'speedup':>9}",
    ]
    results: Dict[str, Dict[str, float]] = record["results"]  # type: ignore[assignment]
    rows = (
        ("elasticmap_build", "vectorized_records_per_s", "scalar_records_per_s", "rec/s"),
        ("bloom_membership", "vectorized_lookups_per_s", "scalar_lookups_per_s", "qry/s"),
        ("bucketizer", "vectorized_records_per_s", "scalar_records_per_s", "rec/s"),
        ("countmin", "vectorized_updates_per_s", "scalar_updates_per_s", "upd/s"),
        ("simulator", "events_per_s", "reference_events_per_s", "ev/s"),
        ("scheduling", "cached_graphs_per_s", "uncached_graphs_per_s", "gph/s"),
    )
    for section, vec_key, sca_key, unit in rows:
        data = results[section]
        lines.append(
            f"{section:<18} {data[vec_key]:>11,.0f} {unit[:3]:<3}"
            f" {data[sca_key]:>10,.0f} {unit[:3]:<3} {data['speedup']:>8.2f}x"
        )
    return "\n".join(lines)
