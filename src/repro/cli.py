"""Command-line interface.

Usage (after ``pip install -e .``)::

    repro info                        # what this is
    repro experiment fig5             # regenerate one paper figure/table
    repro experiment all --small      # regenerate everything, fast variant
    repro generate movielens -n 50000 -o reviews.tsv
    repro index reviews.tsv --alpha 0.3 --query movie-00000
    repro theory                      # Section II-B curves

``python -m repro ...`` works identically.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from . import __version__
from .errors import ReproError

__all__ = ["main", "build_parser"]

#: Experiment id → lazy runner returning a formatted string.
EXPERIMENTS: Dict[str, str] = {
    "fig1": "Figure 1 — content clustering & imbalance (motivation)",
    "fig2": "Figure 2 — extreme-workload probability vs cluster size",
    "table1": "Table I — per-block sub-dataset size map",
    "fig5": "Figure 5 — overall with/without DataNet comparison",
    "fig6": "Figure 6 — map execution time distributions",
    "fig7": "Figure 7 — shuffle phase comparison",
    "fig8": "Figure 8 — GitHub events experiment",
    "table2": "Table II — ElasticMap memory/accuracy trade-off",
    "fig9": "Figure 9 — per-sub-dataset estimate accuracy",
    "fig10": "Figure 10 — balance vs alpha",
    "migration": "Section V-A.4 — dynamic rebalance baseline",
    "rebalance": "Extension — background annealed rebalance, three-way comparison",
    "scaling": "Extension — imbalance vs cluster size (theory, end to end)",
    "hetero": "Extension — capacity-aware scheduling on a mixed cluster",
    "concurrent": "Extension — four jobs sharing the cluster (event-driven sim)",
    "skew": "Related work — LIBRA reducer-skew sampling is orthogonal to DataNet",
    "ablations": "Design ablations (buckets/schedulers/I-O/bloom/aggregation)",
}


def _run_experiment(exp_id: str, small: bool) -> str:
    """Dispatch one experiment id to its driver and return the report."""
    from .experiments.config import ReferenceConfig

    cfg = ReferenceConfig.small() if small else ReferenceConfig()
    if exp_id == "fig1":
        from .experiments.fig1 import run_fig1

        return run_fig1(cfg).format()
    if exp_id == "fig2":
        from .experiments.fig2 import run_fig2

        return run_fig2(mc_trials=200).format()
    if exp_id == "table1":
        from .experiments.table1 import run_table1

        return run_table1(cfg).format()
    if exp_id == "fig5":
        from .experiments.fig5 import run_fig5

        return run_fig5(cfg).format()
    if exp_id == "fig6":
        from .experiments.fig6 import run_fig6

        return run_fig6(cfg).format()
    if exp_id == "fig7":
        from .experiments.fig7 import run_fig7

        return run_fig7(cfg).format()
    if exp_id == "fig8":
        from .experiments.fig8 import run_fig8

        return run_fig8(cfg).format()
    if exp_id == "table2":
        from .experiments.table2 import run_table2

        return run_table2(cfg).format()
    if exp_id == "fig9":
        from .experiments.fig9 import run_fig9

        return run_fig9(cfg).format()
    if exp_id == "fig10":
        from .experiments.fig10 import run_fig10

        return run_fig10(cfg).format()
    if exp_id == "migration":
        from .experiments.migration import run_migration

        return run_migration(cfg).format()
    if exp_id == "rebalance":
        from .experiments.rebalance import run_rebalance_comparison

        iters = 6000 if small else 2000
        parts = [
            run_rebalance_comparison(cfg, workload=wl, iterations=iters).format()
            for wl in ("movielens", "github_events")
        ]
        return "\n\n".join(parts)
    if exp_id == "scaling":
        from .experiments.scaling import run_scaling

        sizes = (4, 8, 16) if small else (8, 16, 32, 64)
        return run_scaling(cfg, cluster_sizes=sizes).format()
    if exp_id == "hetero":
        from .experiments.heterogeneous import run_heterogeneous

        return run_heterogeneous(cfg).format()
    if exp_id == "concurrent":
        from .experiments.concurrent import run_concurrent

        return run_concurrent(cfg).format()
    if exp_id == "skew":
        from .experiments.reducer_skew import run_reducer_skew

        return run_reducer_skew(cfg).format()
    if exp_id == "ablations":
        from .experiments import ablations

        parts = [
            ablations.run_bucket_ablation(cfg).format(),
            ablations.run_tail_store_ablation(cfg).format(),
            ablations.run_scheduler_ablation(cfg).format(),
            ablations.run_io_skip_ablation(cfg).format(),
            ablations.run_bloom_eps_ablation(cfg).format(),
            ablations.run_aggregation_ablation(cfg).format(),
            ablations.run_speculation_ablation(cfg).format(),
        ]
        return "\n\n".join(parts)
    raise ReproError(f"unknown experiment id {exp_id!r}")


# -- subcommand handlers -------------------------------------------------------


def _cmd_info(args: argparse.Namespace) -> int:
    print(
        f"repro {__version__} — reproduction of 'DataNet: A Data "
        "Distribution-aware Method for Sub-dataset Analysis on Distributed "
        "File Systems' (IPDPS 2016).\n"
        "Experiments available via `repro experiment <id>`:"
    )
    for exp_id, desc in EXPERIMENTS.items():
        print(f"  {exp_id:<10} {desc}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    targets: List[str] = (
        list(EXPERIMENTS) if args.id == "all" else [args.id]
    )
    for exp_id in targets:
        report = _run_experiment(exp_id, args.small)
        print(report)
        print()
        if args.out:
            out_dir = Path(args.out)
            out_dir.mkdir(parents=True, exist_ok=True)
            (out_dir / f"{exp_id}.txt").write_text(report + "\n", encoding="utf-8")
    return 0


def _generate_records(workload: str, num_records: int, keys: int, rng) -> list:
    """Generate one of the three reference workload families."""
    if workload == "movielens":
        from .workloads import MovieLensGenerator

        return MovieLensGenerator(
            num_movies=keys, total_reviews=num_records, rng=rng
        ).generate()
    if workload == "github":
        from .workloads import GitHubEventsGenerator

        return GitHubEventsGenerator(num_records, rng=rng).generate()
    if workload == "worldcup":
        from .workloads import WorldCupGenerator

        return WorldCupGenerator(
            num_matches=max(keys, 1), total_requests=num_records, rng=rng
        ).generate()
    raise ReproError(f"unknown workload {workload!r}")


def _cmd_generate(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    records = _generate_records(args.workload, args.records, args.keys, rng)
    with open(args.output, "w", encoding="utf-8") as fh:
        for record in records:
            fh.write(record.serialize() + "\n")
    print(f"wrote {len(records)} records to {args.output}")
    return 0


def _cmd_index(args: argparse.Namespace) -> int:
    from .core.bucketizer import BucketSpec
    from .core.datanet import DataNet
    from .hdfs.cluster import HDFSCluster
    from .hdfs.records import Record
    from .metrics import format_kv
    from .units import format_size, parse_size

    block_size = parse_size(args.block_size)
    records = []
    with open(args.input, "r", encoding="utf-8") as fh:
        for line in fh:
            if line.strip():
                records.append(Record.deserialize(line))
    cluster = HDFSCluster(
        num_nodes=args.nodes,
        block_size=block_size,
        rng=np.random.default_rng(args.seed),
    )
    dataset = cluster.write_dataset("cli", records)
    datanet = DataNet.build(
        dataset, alpha=args.alpha, spec=BucketSpec.for_block_size(block_size)
    )
    info = {
        "records": len(records),
        "blocks": dataset.num_blocks,
        "data": format_size(dataset.total_bytes),
        "sub-datasets": len(dataset.subdataset_ids()),
        "metadata": format_size(datanet.memory_bytes()),
        "representation ratio": f"{datanet.representation_ratio(dataset.total_bytes):.0f}",
    }
    print(format_kv(info, title=f"ElasticMap over {args.input} (alpha={args.alpha})"))
    if args.save:
        written = datanet.save(args.save)
        print(f"metadata saved to {args.save} ({written} bytes)")
    if args.query:
        est = datanet.estimate_total_size(args.query)
        truth = dataset.subdataset_total_bytes(args.query)
        blocks = datanet.blocks_containing(args.query)
        assignment = datanet.schedule(args.query)
        print()
        print(
            format_kv(
                {
                    "estimate (Eq. 6)": format_size(est),
                    "ground truth": format_size(truth),
                    "blocks holding it": len(blocks),
                    "balanced max/mean": f"{assignment.imbalance:.2f}",
                },
                title=f"sub-dataset {args.query!r}",
            )
        )
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from .experiments.concurrent import run_concurrent
    from .experiments.config import ReferenceConfig
    from .sim import render_gantt

    cfg = ReferenceConfig.small() if args.small else ReferenceConfig()
    coding = _coding_spec(args.coding, cfg.num_nodes)
    if coding is not None:
        from dataclasses import replace

        cfg = replace(cfg, coding=coding)
    result = run_concurrent(cfg, slots_per_node=args.slots)
    print(result.format())
    nodes = sorted(
        {t.node for t in result.timelines["with"].tasks.values()}, key=repr
    )[: args.rows]
    for method in ("without", "with"):
        print(f"\n=== schedule {method} DataNet ===")
        print(
            render_gantt(
                result.timelines[method], width=args.width, nodes=nodes
            )
        )
    if args.obs:
        # No tracer ran inside the batch; the timeline itself becomes the
        # trace, so the same Gantt data opens in Perfetto.
        _write_obs_artifacts(args.obs, timeline=result.timelines["with"])
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from .theory.planner import plan
    from .units import parse_size

    report = plan(
        num_blocks=args.blocks,
        subdatasets_per_block=args.subdatasets,
        target_nodes=args.nodes,
        metadata_budget_bytes=float(parse_size(args.budget)),
        gamma_k=args.gamma_k,
        gamma_theta=args.gamma_theta,
    )
    print(report.format())
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    from .core.datanet import DataNet
    from .metrics import format_kv
    from .units import format_size

    datanet = DataNet.load(args.metadata)
    assignment = datanet.schedule(args.sub_id)
    print(
        format_kv(
            {
                "blocks covered": datanet.num_blocks,
                "blocks holding it": len(datanet.blocks_containing(args.sub_id)),
                "size estimate (Eq. 6)": format_size(
                    datanet.estimate_total_size(args.sub_id)
                ),
                "balanced max/mean": f"{assignment.imbalance:.2f}",
                "locality": f"{assignment.locality_fraction:.0%}",
            },
            title=f"sub-dataset {args.sub_id!r} via {args.metadata}",
        )
    )
    return 0


def _parse_node_at(value: str, what: str) -> tuple:
    """Parse ``NODE@X`` (e.g. ``2@1.5``) into ``(int node, float x)``."""
    node_s, sep, x_s = value.partition("@")
    try:
        if not sep:
            return int(node_s), None
        return int(node_s), float(x_s)
    except ValueError:
        raise ReproError(f"bad --{what} value {value!r}, expected NODE@NUMBER")


def _parse_slow_spec(value: str) -> tuple:
    """Parse ``NODE@FACTOR[:START[-END]]`` into ``(node, factor, start, end)``."""
    head, sep, window = value.partition(":")
    node, factor = _parse_node_at(head, "slow-node")
    if factor is None:
        raise ReproError(
            f"bad --slow-node value {value!r}, expected NODE@FACTOR[:START[-END]]"
        )
    start, end = 0.0, None
    if sep:
        start_s, dash, end_s = window.partition("-")
        try:
            start = float(start_s)
            end = float(end_s) if dash else None
        except ValueError:
            raise ReproError(
                f"bad --slow-node window {window!r}, expected START[-END]"
            )
    return node, factor, start, end


def _parse_link_spec(value: str) -> tuple:
    """Parse ``A-B@LOSS[:LATENCY]`` into ``(a, b, loss, latency_s)``."""
    head, _, rest = value.partition("@")
    a_s, dash, b_s = head.partition("-")
    try:
        if not dash or not rest:
            raise ValueError
        loss_s, colon, lat_s = rest.partition(":")
        return int(a_s), int(b_s), float(loss_s), float(lat_s) if colon else 0.0
    except ValueError:
        raise ReproError(
            f"bad --flaky-link value {value!r}, expected A-B@LOSS[:LATENCY]"
        )


def _parse_partition_spec(value: str) -> tuple:
    """Parse ``rackR@START-HEAL`` or ``N,M@START-HEAL``.

    Returns ``(rack, nodes, start, heals_at)`` with exactly one of
    ``rack``/``nodes`` set, matching ``NetworkPartition``'s scopes.
    """
    scope, sep, window = value.partition("@")
    start_s, dash, heal_s = window.partition("-")
    try:
        if not sep or not dash:
            raise ValueError
        start, heal = float(start_s), float(heal_s)
        if scope.startswith("rack"):
            return int(scope[4:]), (), start, heal
        return None, tuple(int(n) for n in scope.split(",")), start, heal
    except ValueError:
        raise ReproError(
            f"bad --partition value {value!r}, "
            "expected rackR@START-HEAL or N,M@START-HEAL"
        )


def _coding_spec(value, num_nodes: int):
    """Parse and validate a ``--coding k,m`` flag before any data is written.

    Malformed text and infeasible (k, m) (k+m exceeding the node count)
    both fail here with a :class:`~repro.errors.ConfigError` — at parse
    time, not as a placement error mid-run.
    """
    if not value:
        return None
    from .coding import parse_coding, validate_coding

    return validate_coding(parse_coding(value), num_nodes)


def _parse_node_block(value: str, what: str) -> tuple:
    """Parse ``NODE@BLOCK`` (e.g. ``2@5``) into ``(int node, int block)``."""
    node_s, sep, block_s = value.partition("@")
    try:
        if not sep:
            raise ValueError
        return int(node_s), int(block_s)
    except ValueError:
        raise ReproError(f"bad --{what} value {value!r}, expected NODE@BLOCK")


def _corrupt_replicas(cluster, dataset, rots, corrupt_count, rng, what) -> int:
    """Plant bit rot for the scrub/chaos CLI; returns replicas corrupted.

    Explicit ``NODE@BLOCK`` rots fall back to the block's first replica
    when the named node holds none (placement is seeded; users cannot
    know it).  ``corrupt_count`` rots are drawn from the seeded RNG over
    all replicas, so the same seed corrupts the same copies.
    """
    placement = dataset.placement()
    corrupted = set()
    for value in rots:
        node, block = _parse_node_block(value, what)
        if block not in placement:
            raise ReproError(f"--{what}: dataset has no block {block}")
        replicas = placement[block]
        target = node if node in replicas else replicas[0]
        corrupted.add((target, block))
    if corrupt_count:
        pairs = [(n, b) for b in sorted(placement) for n in placement[b]]
        count = min(corrupt_count, len(pairs))
        for i in sorted(int(j) for j in rng.choice(len(pairs), size=count, replace=False)):
            corrupted.add(pairs[i])
    for node, block in sorted(corrupted, key=lambda p: (p[1], p[0])):
        cluster.corrupt_replica(dataset.name, node, block)
    return len(corrupted)


def _cmd_scrub(args: argparse.Namespace) -> int:
    from .hdfs import Scrubber
    from .hdfs.cluster import HDFSCluster
    from .units import parse_size
    from .workloads import MovieLensGenerator

    rng = np.random.default_rng(args.seed)
    coding = _coding_spec(args.coding, args.nodes)
    records = MovieLensGenerator(
        num_movies=args.keys, total_reviews=args.records, rng=rng
    ).generate()
    cluster = HDFSCluster(
        num_nodes=args.nodes, block_size=parse_size(args.block_size), rng=rng,
        coding=coding,
    )
    dataset = cluster.write_dataset("scrub", records)
    rotted = _corrupt_replicas(
        cluster, dataset, args.rot, args.corrupt, rng, "rot"
    )
    from .obs import NULL_OBS, Observability

    obs = Observability.create() if args.obs else NULL_OBS
    report = Scrubber(cluster, strict=False, obs=obs).scrub(dataset.name)
    print(
        f"scrubbed dataset of {dataset.num_blocks} blocks on {args.nodes} nodes "
        f"({rotted} replicas rotted)"
    )
    print()
    from .metrics.reporting import format_kv

    print(
        format_kv(
            {
                "replicas scanned": report.replicas_scanned,
                "bytes scanned": report.bytes_scanned,
                "corrupt found": report.corrupt_found,
                "repaired": report.repaired,
                "repaired bytes": report.repaired_bytes,
                **(
                    {
                        "fragment reconstructions": report.reconstructed,
                        "decoded stripe bytes": report.decode_bytes,
                    }
                    if coding is not None
                    else {}
                ),
                "unrepairable": len(report.unrepairable),
            },
            title="Scrub report",
        )
    )
    for event in report.events:
        if hasattr(event, "sources"):
            peers = ",".join(str(n) for n in event.sources)
            print(
                f"  reconstructed fragment {event.index} of block "
                f"{event.block_id} on node {event.destination} from nodes "
                f"{peers} ({event.nbytes} B written, "
                f"{event.decode_bytes} B decoded)"
            )
        else:
            print(
                f"  repaired block {event.block_id} on node "
                f"{event.destination} from node {event.source} "
                f"({event.nbytes} B)"
            )
    if args.obs:
        _write_obs_artifacts(args.obs, obs)
    if report.unrepairable:
        for ds, block in report.unrepairable:
            print(f"error: no verified replica left for block {block} of {ds!r}",
                  file=sys.stderr)
        return 1
    return 0


def _write_obs_artifacts(out_dir: str, obs=None, *, timeline=None) -> None:
    """Write trace.json (+ events.jsonl/metrics.txt for live bundles)."""
    from .obs.export import snapshot_text, write_chrome_trace, write_jsonl

    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    tracer = obs.tracer if obs is not None else None
    write_chrome_trace(str(out / "trace.json"), tracer, timeline=timeline)
    if obs is None:
        print(f"trace written to {out / 'trace.json'}")
        return
    rows = write_jsonl(
        str(out / "events.jsonl"), tracer=obs.tracer, metrics=obs.metrics
    )
    (out / "metrics.txt").write_text(
        snapshot_text(tracer=obs.tracer, metrics=obs.metrics) + "\n",
        encoding="utf-8",
    )
    print(
        f"observability artifacts in {out}{'/' if str(out) != '/' else ''} "
        f"(trace.json, events.jsonl [{rows} rows], metrics.txt)"
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    from .obs import NULL_OBS, Observability
    from .rebalance.executor import layout_digest
    from .serve import DrillConfig, build_drill

    config = DrillConfig(
        seed=args.seed,
        num_nodes=args.nodes,
        jobs=args.jobs,
        pressure=args.pressure,
        append_batches=args.appends,
        crash=args.crash,
        meta_down=args.meta_down,
        partition=args.partition,
        slots=args.slots,
        high_water=args.high_water,
        rebalance_budget=args.rebalance_budget,
        journal_replicas=args.journal_replicas,
        leader_crash=args.leader_crash,
        journal_crash=args.journal_crash,
        meta_partition=args.meta_partition,
        retry_jitter=args.retry_jitter,
        retry_max_elapsed=args.retry_max_elapsed,
    )
    obs = Observability.create() if args.obs else NULL_OBS
    setup = build_drill(config, obs=obs)
    summary = setup.service.run(setup.requests, setup.appends)
    faults = [
        name
        for name, on in (
            ("service crash", args.crash),
            ("metadata-shard outage", args.meta_down),
            ("gray partition", args.partition),
            ("leader crash", args.leader_crash),
            ("journal-replica crash", args.journal_crash),
            ("metadata partition", args.meta_partition),
        )
        if on
    ]
    print(
        f"multi-tenant service drill — seed {args.seed}, "
        f"{args.jobs} jobs at {args.pressure:g}x pressure"
        + (f", {args.journal_replicas} journal replicas"
           if args.journal_replicas > 1 else "")
        + (f", faults: {', '.join(faults)}" if faults else "")
    )
    print()
    print(summary.format())
    print(f"layout digest: {layout_digest(setup.service._view)}")
    if args.obs:
        _write_obs_artifacts(args.obs, obs)
    return 0


def _cmd_rebalance(args: argparse.Namespace) -> int:
    from .experiments.config import ReferenceConfig
    from .experiments.rebalance import WORKLOADS, run_rebalance_comparison
    from .obs import NULL_OBS, Observability
    from .rebalance import check_plan_invariants

    cfg = ReferenceConfig() if args.full else ReferenceConfig.small()
    obs = Observability.create() if args.obs else NULL_OBS
    workloads = list(WORKLOADS) if args.workload == "all" else [args.workload]
    failed = False
    for i, workload in enumerate(workloads):
        result = run_rebalance_comparison(
            cfg,
            workload=workload,
            budget_fraction=args.budget,
            iterations=args.iterations,
            seed=args.seed,
            obs=obs,
        )
        if i:
            print()
        print(result.plan.format())
        print()
        print(result.format())
        if result.plan.cost_after > result.plan.cost_before:
            print(
                f"error: {workload} plan raised the layout cost",
                file=sys.stderr,
            )
            failed = True
    if args.obs:
        _write_obs_artifacts(args.obs, obs)
    return 1 if failed else 0


def _rebalance_cluster(cluster, dataset, *, budget_fraction, seed, alpha, obs):
    """Background rebalance pre-pass shared by ``chaos`` and ad-hoc callers:
    plan against a fresh DataNet over the hottest sub-datasets and apply.
    Returns ``(plan, report)``."""
    from .core.datanet import DataNet
    from .rebalance import RebalanceExecutor, RebalancePlanner, WorkloadProfile

    datanet = DataNet.build(dataset, alpha=alpha)
    sizes = dataset.subdataset_sizes()
    hot = sorted(sizes, key=sizes.get, reverse=True)[:6]
    profile = WorkloadProfile({sid: float(sizes[sid]) for sid in hot})
    planner = RebalancePlanner(
        dataset,
        datanet,
        profile,
        budget_fraction=budget_fraction,
        seed=seed,
        iterations=3000,
        obs=obs,
    )
    plan = planner.plan()
    cluster.watch_placement(dataset.name, datanet)
    report = RebalanceExecutor(cluster, obs=obs).apply(plan)
    return plan, report


def _cmd_chaos(args: argparse.Namespace) -> int:
    if args.tenants:
        # Multi-tenant chaos delegates to the service drill: the same
        # crash/outage/partition toggles, but against the long-lived
        # admission-controlled service instead of a single batch job.
        args.jobs = 6 * args.tenants
        args.pressure = 1.0
        args.appends = 2
        args.crash = bool(args.kill) or bool(args.restart_wave)
        args.meta_down = bool(args.meta_down)
        args.partition = bool(args.partition)
        args.slots = 2
        args.high_water = 64
        # Metadata-plane faults the chaos surface doesn't expose directly.
        args.journal_crash = False
        args.meta_partition = False
        return _cmd_serve(args)
    from .core.metastore import DistributedMetaStore
    from .faults import (
        BitRot,
        ChaosRunner,
        DriverRestart,
        FaultPlan,
        FlakyLink,
        MetaOutage,
        NetworkPartition,
        NodeCrash,
        RetryPolicy,
        SlowNode,
        StaleMetadata,
        TransientFaults,
    )
    from .hdfs.cluster import HDFSCluster
    from .mapreduce.apps.word_count import word_count_job
    from .units import parse_size
    from .workloads import MovieLensGenerator

    # RetryPolicy validates jitter/max-elapsed; constructing it up front
    # rejects bad CLI values before any data is generated.
    retry = RetryPolicy(
        max_attempts=args.max_attempts,
        jitter=args.retry_jitter,
        max_elapsed_s=args.retry_max_elapsed,
    )
    rng = np.random.default_rng(args.seed)
    coding = _coding_spec(args.coding, args.nodes)
    records = MovieLensGenerator(
        num_movies=args.keys, total_reviews=args.records, rng=rng
    ).generate()
    cluster = HDFSCluster(
        num_nodes=args.nodes, block_size=parse_size(args.block_size), rng=rng,
        coding=coding,
    )
    dataset = cluster.write_dataset("chaos", records)
    sub_id = args.sub or max(
        dataset.subdataset_ids(), key=dataset.subdataset_total_bytes
    )

    crashes = tuple(
        NodeCrash(node, time=0.0 if t is None else t)
        for node, t in (_parse_node_at(v, "kill") for v in args.kill)
    )
    slow = tuple(
        SlowNode(node, factor=2.0 if f is None else f)
        for node, f in (_parse_node_at(v, "slow") for v in args.slow)
    ) + tuple(
        SlowNode(node, factor=f, start=s, end=e)
        for node, f, s, e in (_parse_slow_spec(v) for v in args.slow_node)
    )
    links = tuple(
        FlakyLink(a=a, b=b, loss=loss, latency_s=lat)
        for a, b, loss, lat in (_parse_link_spec(v) for v in args.flaky_link)
    )
    partitions = tuple(
        NetworkPartition(rack=rack, nodes=nodes, start=s, heals_at=h)
        for rack, nodes, s, h in (_parse_partition_spec(v) for v in args.partition)
    )
    transient = (
        TransientFaults(probability=args.flaky) if args.flaky > 0 else None
    )
    outages = tuple(MetaOutage(node_id) for node_id in args.meta_down)
    bit_rots = tuple(
        BitRot(node, block)
        for node, block in (_parse_node_block(v, "bitrot") for v in args.bitrot)
    )
    stale = tuple(StaleMetadata(block) for block in args.stale)
    restarts = tuple(DriverRestart(wave) for wave in sorted(args.restart_wave))
    plan = FaultPlan(
        seed=args.seed,
        crashes=crashes,
        slow_nodes=slow,
        transient=transient,
        meta_outages=outages,
        bit_rots=bit_rots,
        stale_metadata=stale,
        driver_restarts=restarts,
        flaky_links=links,
        partitions=partitions,
    )

    metastore = None
    if args.meta_nodes or outages:
        metastore = DistributedMetaStore(
            num_nodes=max(args.meta_nodes, 1), replication=args.meta_replication
        )
    from .obs import NULL_OBS, Observability

    obs = Observability.create() if args.obs else NULL_OBS
    if args.rebalance_budget > 0:
        rplan, _report = _rebalance_cluster(
            cluster,
            dataset,
            budget_fraction=args.rebalance_budget,
            seed=args.seed,
            alpha=args.alpha,
            obs=obs,
        )
        print(
            f"rebalanced layout before the drill: {rplan.num_moves} moves, "
            f"{rplan.total_bytes} bytes "
            f"(cost {rplan.cost_before:.0f} -> {rplan.cost_after:.0f})"
        )
    runner = ChaosRunner(
        cluster,
        plan,
        retry=retry,
        metastore=metastore,
        alpha=args.alpha,
        detect=not args.no_detector,
        hedge=not args.no_hedge,
        obs=obs,
    )
    report = runner.run(dataset, sub_id, word_count_job())
    print(f"chaos run over sub-dataset {sub_id!r} ({args.nodes} nodes)")
    print()
    print(report.format())
    if args.obs:
        _write_obs_artifacts(args.obs, obs)
    if not report.output_matches_baseline:  # pragma: no cover - invariant
        print("error: output diverged from the failure-free run", file=sys.stderr)
        return 1
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .bench import append_record, format_record, run_core_suite

    record = run_core_suite(quick=args.quick, seed=args.seed)
    print(format_record(record))
    if args.no_append:
        return 0
    count = append_record(args.out, record)
    print(f"appended record #{count} to {args.out}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .hdfs.cluster import HDFSCluster
    from .mapreduce.apps.word_count import word_count_job
    from .obs import Observability
    from .obs.export import validate_chrome_trace_file
    from .units import parse_size

    rng = np.random.default_rng(args.seed)
    records = _generate_records(args.workload, args.records, args.keys, rng)
    cluster = HDFSCluster(
        num_nodes=args.nodes, block_size=parse_size(args.block_size), rng=rng
    )
    dataset = cluster.write_dataset("trace", records)
    sub_id = args.sub or max(
        dataset.subdataset_ids(), key=dataset.subdataset_total_bytes
    )
    obs = Observability.create()
    faulty = bool(
        args.kill or args.slow or args.flaky > 0 or args.bitrot or args.stale
    )
    if faulty:
        from .faults import (
            BitRot,
            ChaosRunner,
            FaultPlan,
            NodeCrash,
            RetryPolicy,
            SlowNode,
            StaleMetadata,
            TransientFaults,
        )

        plan = FaultPlan(
            seed=args.seed,
            crashes=tuple(
                NodeCrash(node, time=0.0 if t is None else t)
                for node, t in (_parse_node_at(v, "kill") for v in args.kill)
            ),
            slow_nodes=tuple(
                SlowNode(node, factor=2.0 if f is None else f)
                for node, f in (_parse_node_at(v, "slow") for v in args.slow)
            ),
            transient=(
                TransientFaults(probability=args.flaky)
                if args.flaky > 0
                else None
            ),
            bit_rots=tuple(
                BitRot(node, block)
                for node, block in (
                    _parse_node_block(v, "bitrot") for v in args.bitrot
                )
            ),
            stale_metadata=tuple(StaleMetadata(block) for block in args.stale),
        )
        runner = ChaosRunner(
            cluster,
            plan,
            retry=RetryPolicy(max_attempts=args.max_attempts),
            alpha=args.alpha,
            obs=obs,
        )
        report = runner.run(dataset, sub_id, word_count_job())
        print(
            f"traced chaos run over sub-dataset {sub_id!r} "
            f"({args.workload}, {args.nodes} nodes): "
            f"makespan {report.makespan:.3f}s"
        )
    else:
        from .core.bucketizer import BucketSpec
        from .core.datanet import DataNet
        from .mapreduce.engine import MapReduceEngine

        datanet = DataNet.build(
            dataset,
            alpha=args.alpha,
            spec=BucketSpec.for_block_size(parse_size(args.block_size)),
            obs=obs,
        )
        engine = MapReduceEngine(cluster, obs=obs)
        result = engine.run_job(
            dataset, sub_id, word_count_job(), datanet.schedule(sub_id)
        )
        print(
            f"traced job over sub-dataset {sub_id!r} "
            f"({args.workload}, {args.nodes} nodes): "
            f"total time {result.total_time:.3f}s"
        )
    _write_obs_artifacts(args.out, obs)
    checked = validate_chrome_trace_file(str(Path(args.out) / "trace.json"))
    print(f"trace.json valid ({checked} duration events)")
    return 0


def _cmd_theory(args: argparse.Namespace) -> int:
    from .experiments.fig2 import run_fig2

    print(run_fig2(mc_trials=args.trials).format())
    return 0


# -- parser ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DataNet (IPDPS 2016) reproduction toolkit",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser("info", help="describe the library and experiments")
    p_info.set_defaults(func=_cmd_info)

    p_exp = sub.add_parser("experiment", help="regenerate a paper table/figure")
    p_exp.add_argument("id", choices=list(EXPERIMENTS) + ["all"])
    p_exp.add_argument("--small", action="store_true", help="fast scaled-down run")
    p_exp.add_argument("--out", help="directory to also write reports into")
    p_exp.set_defaults(func=_cmd_experiment)

    p_gen = sub.add_parser("generate", help="write a synthetic workload as TSV")
    p_gen.add_argument("workload", choices=["movielens", "github", "worldcup"])
    p_gen.add_argument("-n", "--records", type=int, default=50_000)
    p_gen.add_argument(
        "-k", "--keys", type=int, default=1000,
        help="movies/matches for keyed workloads",
    )
    p_gen.add_argument("-o", "--output", required=True)
    p_gen.add_argument("--seed", type=int, default=0)
    p_gen.set_defaults(func=_cmd_generate)

    p_idx = sub.add_parser("index", help="build ElasticMap metadata over a TSV")
    p_idx.add_argument("input")
    p_idx.add_argument("--alpha", type=float, default=0.3)
    p_idx.add_argument("--block-size", default="64kb")
    p_idx.add_argument("--nodes", type=int, default=16)
    p_idx.add_argument("--seed", type=int, default=0)
    p_idx.add_argument("--query", help="report one sub-dataset id in detail")
    p_idx.add_argument("--save", help="persist the metadata to this file")
    p_idx.set_defaults(func=_cmd_index)

    p_q = sub.add_parser(
        "query", help="query a saved metadata file (no raw data needed)"
    )
    p_q.add_argument("metadata", help="file written by `repro index --save`")
    p_q.add_argument("sub_id")
    p_q.set_defaults(func=_cmd_query)

    p_theory = sub.add_parser("theory", help="Section II-B probability analysis")
    p_theory.add_argument("--trials", type=int, default=200)
    p_theory.set_defaults(func=_cmd_theory)

    p_plan = sub.add_parser(
        "plan", help="capacity planning (alpha, metadata, cluster size)"
    )
    p_plan.add_argument("--blocks", type=int, default=256)
    p_plan.add_argument("--subdatasets", type=int, default=2000,
                        help="distinct sub-datasets per block")
    p_plan.add_argument("--nodes", type=int, default=128)
    p_plan.add_argument("--budget", default="16mb",
                        help="metadata memory budget (e.g. 16mb)")
    p_plan.add_argument("--gamma-k", type=float, default=1.2)
    p_plan.add_argument("--gamma-theta", type=float, default=7.0)
    p_plan.set_defaults(func=_cmd_plan)

    p_chaos = sub.add_parser(
        "chaos", help="run an analysis job under an injected fault plan"
    )
    p_chaos.add_argument("--nodes", type=int, default=8)
    p_chaos.add_argument("--seed", type=int, default=0)
    p_chaos.add_argument("-n", "--records", type=int, default=20_000)
    p_chaos.add_argument("-k", "--keys", type=int, default=200, help="movies")
    p_chaos.add_argument("--block-size", default="64kb")
    p_chaos.add_argument("--alpha", type=float, default=0.3)
    p_chaos.add_argument("--sub", help="sub-dataset id (default: the hottest)")
    p_chaos.add_argument(
        "--kill", action="append", default=[], metavar="NODE@TIME",
        help="crash NODE at TIME seconds (repeatable), e.g. --kill 2@0.5",
    )
    p_chaos.add_argument(
        "--slow", action="append", default=[], metavar="NODE@FACTOR",
        help="slow NODE down by FACTOR (repeatable), e.g. --slow 1@2.5",
    )
    p_chaos.add_argument(
        "--flaky", type=float, default=0.0,
        help="per-attempt transient failure probability",
    )
    p_chaos.add_argument(
        "--slow-node", action="append", default=[],
        metavar="NODE@FACTOR[:START[-END]]",
        help="gray failure: degrade NODE by FACTOR inside a time window "
        "(repeatable), e.g. --slow-node 1@8:0-3",
    )
    p_chaos.add_argument(
        "--flaky-link", action="append", default=[], metavar="A-B@LOSS[:LATENCY]",
        help="gray failure: remote reads over the A<->B link re-read with "
        "probability LOSS and pay LATENCY extra seconds (repeatable), "
        "e.g. --flaky-link 0-2@0.3:0.01",
    )
    p_chaos.add_argument(
        "--partition", action="append", default=[], metavar="SCOPE@START-HEAL",
        help="cut SCOPE (rackR or a node list N,M) off the network from "
        "START until HEAL (repeatable), e.g. --partition rack1@0-3",
    )
    p_chaos.add_argument(
        "--no-detector", action="store_true",
        help="disable the phi-accrual health detector and partition-aware "
        "scheduling (for overhead comparisons)",
    )
    p_chaos.add_argument(
        "--no-hedge", action="store_true",
        help="disable hedged replica reads",
    )
    p_chaos.add_argument("--max-attempts", type=int, default=4)
    p_chaos.add_argument(
        "--retry-jitter", choices=["none", "full"], default="none",
        help="backoff jitter mode for retries (full = seeded full jitter)",
    )
    p_chaos.add_argument(
        "--retry-max-elapsed", type=float, default=None, metavar="SECONDS",
        help="total retry budget per task (unset = unbounded)",
    )
    p_chaos.add_argument(
        "--journal-replicas", type=int, default=1, metavar="N",
        help="with --tenants: replicate the service's metadata journal "
        "across N replicas (majority-quorum commits)",
    )
    p_chaos.add_argument(
        "--leader-crash", action="store_true",
        help="with --tenants: kill the metadata-plane leader mid-ingest "
        "and fail over to a freshly elected, fenced leader",
    )
    p_chaos.add_argument(
        "--meta-nodes", type=int, default=0,
        help="run metadata from a sharded metastore with this many nodes",
    )
    p_chaos.add_argument("--meta-replication", type=int, default=1)
    p_chaos.add_argument(
        "--meta-down", action="append", default=[], metavar="META_NODE",
        help="take a metastore shard down (repeatable), e.g. --meta-down meta-0",
    )
    p_chaos.add_argument(
        "--bitrot", action="append", default=[], metavar="NODE@BLOCK",
        help="rot the replica of BLOCK on NODE (repeatable), e.g. --bitrot 2@0",
    )
    p_chaos.add_argument(
        "--stale", action="append", type=int, default=[], metavar="BLOCK",
        help="diverge BLOCK's metadata entry (repeatable); validation rebuilds it",
    )
    p_chaos.add_argument(
        "--restart-wave", action="append", type=int, default=[], metavar="WAVE",
        help="kill the driver during WAVE and resume from the checkpoint "
        "(repeatable; incompatible with --kill)",
    )
    p_chaos.add_argument(
        "--coding", metavar="K,M",
        help="store the dataset erasure-coded with k data + m parity "
        "fragments instead of replicating (e.g. --coding 4,2); reads "
        "decode through parity and node loss triggers reconstruction",
    )
    p_chaos.add_argument(
        "--obs", metavar="DIR",
        help="trace the run and write observability artifacts into DIR",
    )
    p_chaos.add_argument(
        "--tenants", type=int, default=0,
        help="run the multi-tenant service drill instead of a single batch "
        "job: N tenants share the cluster through admission control, and "
        "the --kill/--meta-down/--partition toggles become a service "
        "crash, a metadata-shard outage, and a gray rack partition",
    )
    p_chaos.add_argument(
        "--rebalance-budget", type=float, default=0.0, metavar="FRACTION",
        help="run the background placement rebalancer before the drill, "
        "bounded to this fraction of dataset bytes (0 disables)",
    )
    p_chaos.set_defaults(func=_cmd_chaos)

    p_reb = sub.add_parser(
        "rebalance",
        help="background annealed placement rebalance + three-way comparison",
    )
    p_reb.add_argument(
        "--workload", choices=["movielens", "github_events", "all"],
        default="movielens",
    )
    p_reb.add_argument(
        "--budget", type=float, default=0.25, metavar="FRACTION",
        help="migration budget as a fraction of dataset bytes",
    )
    p_reb.add_argument("--seed", type=int, default=7, help="annealer seed")
    p_reb.add_argument(
        "--iterations", type=int, default=6000,
        help="annealing proposals to evaluate",
    )
    p_reb.add_argument(
        "--full", action="store_true",
        help="reference-size config (32 nodes) instead of the fast variant",
    )
    p_reb.add_argument(
        "--obs", metavar="DIR",
        help="trace the run and write observability artifacts into DIR",
    )
    p_reb.set_defaults(func=_cmd_rebalance)

    p_serve = sub.add_parser(
        "serve",
        help="run the long-lived multi-tenant analysis service drill",
    )
    p_serve.add_argument("--seed", type=int, default=7)
    p_serve.add_argument("--nodes", type=int, default=12)
    p_serve.add_argument("--jobs", type=int, default=18)
    p_serve.add_argument(
        "--pressure", type=float, default=1.0,
        help="arrival-rate multiplier (1.0 is sustainable; 2/4 overload)",
    )
    p_serve.add_argument(
        "--appends", type=int, default=2,
        help="streaming ingest batches cut from the tail of the stream",
    )
    p_serve.add_argument(
        "--crash", action="store_true",
        help="kill the driver mid-append and recover from the journal",
    )
    p_serve.add_argument(
        "--meta-down", action="store_true",
        help="take a metadata shard down mid-schedule (degraded mode)",
    )
    p_serve.add_argument(
        "--partition", action="store_true",
        help="gray-partition one rack mid-schedule (degraded mode)",
    )
    p_serve.add_argument("--slots", type=int, default=2)
    p_serve.add_argument("--high-water", type=int, default=64)
    p_serve.add_argument(
        "--journal-replicas", type=int, default=1, metavar="N",
        help="replicate the metadata journal across N replicas and commit "
        "frames at majority quorum (1 keeps the single local journal)",
    )
    p_serve.add_argument(
        "--leader-crash", action="store_true",
        help="kill the metadata-plane leader mid-ingest; the plane detects "
        "the silence, elects a new leader, fences the old epoch, and "
        "resumes from the quorum journal",
    )
    p_serve.add_argument(
        "--journal-crash", action="store_true",
        help="crash one journal replica mid-drill (needs --journal-replicas "
        ">= 2); anti-entropy catches it up when it restarts",
    )
    p_serve.add_argument(
        "--meta-partition", action="store_true",
        help="partition a minority of journal replicas around the final "
        "ingest batch (needs --journal-replicas >= 3)",
    )
    p_serve.add_argument(
        "--retry-jitter", choices=["none", "full"], default="none",
        help="backoff jitter mode for quorum-append retries",
    )
    p_serve.add_argument(
        "--retry-max-elapsed", type=float, default=None, metavar="SECONDS",
        help="total retry budget per journal append (unset = unbounded)",
    )
    p_serve.add_argument(
        "--rebalance-budget", type=float, default=0.0, metavar="FRACTION",
        help="rebalance the resident dataset's placement before serving, "
        "bounded to this fraction of dataset bytes (0 disables)",
    )
    p_serve.add_argument(
        "--obs", metavar="DIR",
        help="trace the run and write observability artifacts into DIR",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_scrub = sub.add_parser(
        "scrub", help="plant replica bit rot and repair it with the scrubber"
    )
    p_scrub.add_argument("--nodes", type=int, default=8)
    p_scrub.add_argument("--seed", type=int, default=0)
    p_scrub.add_argument("-n", "--records", type=int, default=20_000)
    p_scrub.add_argument("-k", "--keys", type=int, default=200, help="movies")
    p_scrub.add_argument("--block-size", default="64kb")
    p_scrub.add_argument(
        "--rot", action="append", default=[], metavar="NODE@BLOCK",
        help="rot the replica of BLOCK on NODE (repeatable), e.g. --rot 2@0",
    )
    p_scrub.add_argument(
        "--corrupt", type=int, default=0, metavar="N",
        help="additionally rot N seeded-random replicas",
    )
    p_scrub.add_argument(
        "--coding", metavar="K,M",
        help="store the dataset erasure-coded (k data + m parity); rotten "
        "fragments are rebuilt from parity instead of copied from a peer",
    )
    p_scrub.add_argument(
        "--obs", metavar="DIR",
        help="trace the sweep and write observability artifacts into DIR",
    )
    p_scrub.set_defaults(func=_cmd_scrub)

    p_sim = sub.add_parser(
        "simulate", help="event-driven multi-job batch + gantt charts"
    )
    p_sim.add_argument("--small", action="store_true")
    p_sim.add_argument("--slots", type=int, default=2)
    p_sim.add_argument("--rows", type=int, default=10, help="nodes to draw")
    p_sim.add_argument("--width", type=int, default=72)
    p_sim.add_argument(
        "--coding", metavar="K,M",
        help="store the batch dataset erasure-coded (k data + m parity); "
        "fragments become the schedulable unit",
    )
    p_sim.add_argument(
        "--obs", metavar="DIR",
        help="export the with-DataNet timeline as a Perfetto trace into DIR",
    )
    p_sim.set_defaults(func=_cmd_simulate)

    p_trace = sub.add_parser(
        "trace",
        help="run a traced workload; writes trace.json/events.jsonl/metrics.txt",
    )
    p_trace.add_argument(
        "--workload", choices=["movielens", "github", "worldcup"],
        default="movielens",
    )
    p_trace.add_argument("--out", required=True, help="artifact directory")
    p_trace.add_argument("--nodes", type=int, default=8)
    p_trace.add_argument("--seed", type=int, default=0)
    p_trace.add_argument("-n", "--records", type=int, default=20_000)
    p_trace.add_argument(
        "-k", "--keys", type=int, default=200,
        help="movies/matches for keyed workloads",
    )
    p_trace.add_argument("--block-size", default="64kb")
    p_trace.add_argument("--alpha", type=float, default=0.3)
    p_trace.add_argument("--sub", help="sub-dataset id (default: the hottest)")
    p_trace.add_argument(
        "--kill", action="append", default=[], metavar="NODE@TIME",
        help="crash NODE at TIME seconds (repeatable)",
    )
    p_trace.add_argument(
        "--slow", action="append", default=[], metavar="NODE@FACTOR",
        help="slow NODE down by FACTOR (repeatable)",
    )
    p_trace.add_argument(
        "--flaky", type=float, default=0.0,
        help="per-attempt transient failure probability",
    )
    p_trace.add_argument(
        "--bitrot", action="append", default=[], metavar="NODE@BLOCK",
        help="rot the replica of BLOCK on NODE (repeatable)",
    )
    p_trace.add_argument(
        "--stale", action="append", type=int, default=[], metavar="BLOCK",
        help="diverge BLOCK's metadata entry (repeatable)",
    )
    p_trace.add_argument("--max-attempts", type=int, default=4)
    p_trace.set_defaults(func=_cmd_trace)

    p_bench = sub.add_parser(
        "bench",
        help="run the fixed-seed core perf suite; append to BENCH_core.json",
    )
    p_bench.add_argument(
        "--quick",
        action="store_true",
        help="shrink workloads ~20x (CI smoke mode; same record schema)",
    )
    p_bench.add_argument("--seed", type=int, default=1729, help="workload seed")
    p_bench.add_argument(
        "--out",
        default="BENCH_core.json",
        help="record history to append to (default: BENCH_core.json)",
    )
    p_bench.add_argument(
        "--no-append",
        action="store_true",
        help="print the record without touching the history file",
    )
    p_bench.set_defaults(func=_cmd_bench)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
