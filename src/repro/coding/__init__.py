"""Erasure coding: GF(256) arithmetic and a systematic Reed–Solomon codec.

The storage layer's alternative to whole-block replication — a (k, m)
code stores k data + m parity fragments on distinct nodes, survives any m
losses, and reconstructs the payload from *any* k fragments.  See
:mod:`repro.hdfs.coded` for the block-level integration.
"""

from .gf256 import gf_add, gf_div, gf_inv, gf_mul, gf_pow, mul_bytes
from .rs import (
    CodingSpec,
    RSCodec,
    join_stripe,
    parse_coding,
    split_stripe,
    validate_coding,
)

__all__ = [
    "CodingSpec",
    "RSCodec",
    "parse_coding",
    "validate_coding",
    "split_stripe",
    "join_stripe",
    "gf_add",
    "gf_mul",
    "gf_div",
    "gf_inv",
    "gf_pow",
    "mul_bytes",
]
