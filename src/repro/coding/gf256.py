"""Arithmetic over GF(2^8) — the field every practical Reed–Solomon code uses.

The field is realised as polynomials over GF(2) modulo the primitive
polynomial ``x^8 + x^4 + x^3 + x^2 + 1`` (0x11d), the same reduction used
by CCSDS/DVB-T and most storage codecs.  Multiplication goes through
log/antilog tables of the generator ``x`` (= 2), which makes a product two
table lookups and an addition — fast enough that a pure-python codec can
stripe megabytes in well under a second.

Bulk operations work on ``bytes`` via 256-entry translation tables
(``bytes.translate``) and big-int XOR, keeping the per-byte work inside
CPython's C loops instead of a Python-level ``for``.
"""

from __future__ import annotations

from typing import List

from ..errors import CodingError

__all__ = [
    "GF_POLY",
    "gf_add",
    "gf_mul",
    "gf_div",
    "gf_inv",
    "gf_pow",
    "mul_bytes",
    "addmul_into",
]

#: Primitive reduction polynomial for the field (x^8+x^4+x^3+x^2+1).
GF_POLY = 0x11D

# -- table construction -----------------------------------------------------------
#
# EXP[i] = 2^i for i in [0, 510) (doubled so products skip the mod-255 fold);
# LOG[v] = discrete log of v base 2, defined for v in [1, 255].

_EXP: List[int] = [0] * 510
_LOG: List[int] = [0] * 256
_x = 1
for _i in range(255):
    _EXP[_i] = _x
    _LOG[_x] = _i
    _x <<= 1
    if _x & 0x100:
        _x ^= GF_POLY
for _i in range(255, 510):
    _EXP[_i] = _EXP[_i - 255]
del _x, _i


def gf_add(a: int, b: int) -> int:
    """Addition (== subtraction) in GF(256): carry-less, i.e. XOR."""
    return a ^ b


def gf_mul(a: int, b: int) -> int:
    """Product of two field elements."""
    if a == 0 or b == 0:
        return 0
    return _EXP[_LOG[a] + _LOG[b]]


def gf_div(a: int, b: int) -> int:
    """Quotient ``a / b``; division by zero is undefined.

    Raises:
        CodingError: if ``b`` is zero.
    """
    if b == 0:
        raise CodingError("division by zero in GF(256)")
    if a == 0:
        return 0
    return _EXP[_LOG[a] - _LOG[b] + 255]


def gf_inv(a: int) -> int:
    """Multiplicative inverse of a nonzero element.

    Raises:
        CodingError: if ``a`` is zero.
    """
    if a == 0:
        raise CodingError("zero has no multiplicative inverse in GF(256)")
    return _EXP[255 - _LOG[a]]


def gf_pow(a: int, n: int) -> int:
    """``a`` raised to a non-negative integer power."""
    if n < 0:
        raise CodingError(f"negative exponent {n} in GF(256) power")
    if n == 0:
        return 1
    if a == 0:
        return 0
    return _EXP[(_LOG[a] * n) % 255]


# -- bulk (vector) operations ------------------------------------------------------

#: Lazily built scalar-multiplication rows: _ROWS[c][v] == gf_mul(c, v),
#: stored as 256-byte translate tables.  At most 256 rows ever exist.
_ROWS: List[bytes] = [b""] * 256
_ROWS[0] = bytes(256)
_ROWS[1] = bytes(range(256))


def _row(coeff: int) -> bytes:
    row = _ROWS[coeff]
    if not row:
        row = bytes(gf_mul(coeff, v) for v in range(256))
        _ROWS[coeff] = row
    return row


def mul_bytes(coeff: int, data: bytes) -> bytes:
    """Scalar-vector product ``coeff * data`` over GF(256)."""
    if coeff == 0:
        return bytes(len(data))
    if coeff == 1:
        return bytes(data)
    return data.translate(_row(coeff))


def addmul_into(acc: int, coeff: int, data: bytes) -> int:
    """Accumulate ``coeff * data`` into a big-int XOR accumulator.

    Vectors are carried as big-endian integers between calls (XOR of two
    ints is a single C-level operation); convert back with
    ``acc.to_bytes(length, "big")`` once the row sum is complete.
    """
    if coeff == 0 or not data:
        return acc
    if coeff == 1:
        return acc ^ int.from_bytes(data, "big")
    return acc ^ int.from_bytes(data.translate(_row(coeff)), "big")
