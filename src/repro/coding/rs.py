"""Systematic (k, m) Reed–Solomon striping over GF(256).

A block payload is split into ``k`` equal data shards; ``m`` parity shards
are derived so that *any* k of the k+m fragments reconstruct the payload
bit-for-bit.  The generator matrix is the classic Vandermonde construction
normalised so its top k×k square is the identity (systematic: data shards
are stored verbatim), which guarantees every k-row submatrix is invertible
— the property the any-k-subset decode leans on.

This is the storage-efficiency trade the coded-computation literature
describes: a (4, 2) code survives two lost fragments at 1.5× bytes where
3× replication pays 3× for the same tolerance, and a degraded read fetches
k small fragments instead of one whole replica.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import CodingError, ConfigError
from .gf256 import addmul_into, gf_inv, gf_mul, gf_pow

__all__ = [
    "CodingSpec",
    "RSCodec",
    "parse_coding",
    "validate_coding",
    "split_stripe",
    "join_stripe",
]

#: GF(256) supports at most 255 distinct evaluation points.
MAX_FRAGMENTS = 255


@dataclass(frozen=True)
class CodingSpec:
    """An erasure-coding configuration: k data + m parity fragments.

    Attributes:
        k: data fragments per stripe (any k fragments decode the payload).
        m: parity fragments per stripe (fault tolerance: up to m lost).
    """

    k: int
    m: int

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ConfigError(f"coding needs k >= 1 data fragments, got k={self.k}")
        if self.m < 1:
            raise ConfigError(f"coding needs m >= 1 parity fragments, got m={self.m}")
        if self.k + self.m > MAX_FRAGMENTS:
            raise ConfigError(
                f"GF(256) Reed-Solomon supports at most {MAX_FRAGMENTS} "
                f"fragments, got k+m={self.k + self.m}"
            )

    @property
    def n(self) -> int:
        """Total fragments per stripe."""
        return self.k + self.m

    @property
    def storage_overhead(self) -> float:
        """Physical/logical byte ratio ((k+m)/k; replication-3 would be 3.0)."""
        return self.n / self.k

    def __str__(self) -> str:
        return f"{self.k},{self.m}"


def parse_coding(text: str) -> CodingSpec:
    """Parse a ``"k,m"`` CLI value into a :class:`CodingSpec`.

    Raises:
        ConfigError: on malformed input or out-of-range k/m.
    """
    parts = [p.strip() for p in text.split(",")]
    if len(parts) != 2:
        raise ConfigError(
            f"--coding expects 'k,m' (e.g. '4,2'), got {text!r}"
        )
    try:
        k, m = int(parts[0]), int(parts[1])
    except ValueError:
        raise ConfigError(
            f"--coding expects two integers 'k,m', got {text!r}"
        ) from None
    return CodingSpec(k, m)


def validate_coding(spec: CodingSpec, num_nodes: int) -> CodingSpec:
    """Check a coding spec against a cluster size at plan/parse time.

    Fragments of one stripe must land on distinct nodes, so ``k + m`` may
    not exceed the node count — caught here with a clear message instead
    of surfacing later as an IndexError inside placement.

    Raises:
        ConfigError: if the cluster cannot hold k+m distinct fragments.
    """
    if spec.n > num_nodes:
        raise ConfigError(
            f"coding ({spec.k},{spec.m}) needs k+m={spec.n} distinct nodes "
            f"but the cluster has only {num_nodes}"
        )
    return spec


# -- striping ---------------------------------------------------------------------


def split_stripe(payload: bytes, k: int) -> List[bytes]:
    """Split a payload into ``k`` equal shards (zero-padded at the tail)."""
    if k < 1:
        raise CodingError(f"cannot split into {k} shards")
    shard_len = (len(payload) + k - 1) // k
    padded = payload.ljust(shard_len * k, b"\x00")
    return [padded[i * shard_len : (i + 1) * shard_len] for i in range(k)]


def join_stripe(shards: Sequence[bytes], payload_len: int) -> bytes:
    """Reassemble data shards into the original payload, trimming padding."""
    joined = b"".join(shards)
    if payload_len > len(joined):
        raise CodingError(
            f"stripe holds {len(joined)} bytes, cannot recover {payload_len}"
        )
    return joined[:payload_len]


# -- matrix helpers ----------------------------------------------------------------


def _identity(n: int) -> List[List[int]]:
    return [[1 if r == c else 0 for c in range(n)] for r in range(n)]


def _matmul(a: List[List[int]], b: List[List[int]]) -> List[List[int]]:
    cols = len(b[0])
    inner = len(b)
    out = [[0] * cols for _ in range(len(a))]
    for r, arow in enumerate(a):
        orow = out[r]
        for i, coeff in enumerate(arow):
            if coeff == 0:
                continue
            brow = b[i]
            for c in range(cols):
                orow[c] ^= gf_mul(coeff, brow[c])
    return out


def _invert(matrix: List[List[int]]) -> List[List[int]]:
    """Gauss–Jordan inversion over GF(256).

    Raises:
        CodingError: if the matrix is singular (cannot happen for the
            k-row submatrices of a normalised Vandermonde generator).
    """
    n = len(matrix)
    aug = [row[:] + ident[:] for row, ident in zip(matrix, _identity(n))]
    for col in range(n):
        pivot = next((r for r in range(col, n) if aug[r][col] != 0), None)
        if pivot is None:
            raise CodingError("singular matrix in GF(256) inversion")
        if pivot != col:
            aug[col], aug[pivot] = aug[pivot], aug[col]
        inv_p = gf_inv(aug[col][col])
        aug[col] = [gf_mul(inv_p, v) for v in aug[col]]
        for r in range(n):
            if r == col or aug[r][col] == 0:
                continue
            factor = aug[r][col]
            prow = aug[col]
            aug[r] = [v ^ gf_mul(factor, p) for v, p in zip(aug[r], prow)]
    return [row[n:] for row in aug]


# -- codec -------------------------------------------------------------------------


class RSCodec:
    """Systematic Reed–Solomon encoder/decoder for one (k, m) geometry.

    The generator matrix is shared per (k, m) via a module cache, so every
    coded block of a cluster reuses one table set.
    """

    _matrix_cache: Dict[Tuple[int, int], List[List[int]]] = {}

    def __init__(self, k: int, m: int) -> None:
        self.spec = CodingSpec(k, m)
        self.k = k
        self.m = m
        self.matrix = self._generator(k, m)

    @classmethod
    def for_spec(cls, spec: CodingSpec) -> "RSCodec":
        return cls(spec.k, spec.m)

    @classmethod
    def _generator(cls, k: int, m: int) -> List[List[int]]:
        """(k+m)×k generator with identity on top (systematic form)."""
        cached = cls._matrix_cache.get((k, m))
        if cached is not None:
            return cached
        n = k + m
        vandermonde = [[gf_pow(r, c) for c in range(k)] for r in range(n)]
        top_inv = _invert([row[:] for row in vandermonde[:k]])
        matrix = _matmul(vandermonde, top_inv)
        cls._matrix_cache[(k, m)] = matrix
        return matrix

    # -- encode -------------------------------------------------------------------

    def encode(self, payload: bytes) -> List[bytes]:
        """Stripe a payload into k data + m parity fragments.

        Fragment ``i < k`` is the i-th data shard verbatim; fragments
        ``k..k+m-1`` are parity.  All fragments have equal length
        ``ceil(len(payload) / k)``.
        """
        data = split_stripe(payload, self.k)
        shard_len = len(data[0])
        fragments = list(data)
        for r in range(self.k, self.k + self.m):
            row = self.matrix[r]
            acc = 0
            for c, shard in enumerate(data):
                acc = addmul_into(acc, row[c], shard)
            fragments.append(acc.to_bytes(shard_len, "big") if shard_len else b"")
        return fragments

    # -- decode -------------------------------------------------------------------

    def reconstruct(
        self,
        available: Mapping[int, bytes],
        payload_len: int,
        *,
        indices: Optional[Sequence[int]] = None,
    ) -> bytes:
        """Decode the payload from any k available fragments.

        Args:
            available: fragment index → fragment bytes (data or parity).
            payload_len: original payload length (strips stripe padding).
            indices: optionally force which k of the available fragments
                are used (defaults to the k lowest indices, which makes a
                healthy decode the free systematic read).

        Raises:
            CodingError: if fewer than k fragments are supplied, an index
                is out of range, or fragment lengths disagree.
        """
        if indices is None:
            use = sorted(available)[: self.k]
        else:
            use = list(indices)
            missing = [i for i in use if i not in available]
            if missing:
                raise CodingError(f"fragments {missing} not available for decode")
        if len(use) != self.k or len(set(use)) != self.k:
            raise CodingError(
                f"decode needs exactly k={self.k} distinct fragments, "
                f"got {len(set(use))} of {len(available)} available"
            )
        n = self.k + self.m
        bad = [i for i in use if not 0 <= i < n]
        if bad:
            raise CodingError(f"fragment indices {bad} out of range for n={n}")
        shard_len = len(available[use[0]])
        if any(len(available[i]) != shard_len for i in use):
            raise CodingError("fragment lengths disagree; refusing to decode")

        if use == list(range(self.k)):  # systematic fast path
            return join_stripe([available[i] for i in use], payload_len)

        sub = [self.matrix[i][:] for i in use]
        decode = _invert(sub)
        shards: List[bytes] = []
        for r in range(self.k):
            acc = 0
            row = decode[r]
            for j, idx in enumerate(use):
                acc = addmul_into(acc, row[j], available[idx])
            shards.append(acc.to_bytes(shard_len, "big") if shard_len else b"")
        return join_stripe(shards, payload_len)

    def fragment_length(self, payload_len: int) -> int:
        """Bytes per fragment for a payload of ``payload_len`` bytes."""
        return (payload_len + self.k - 1) // self.k
