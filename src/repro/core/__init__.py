"""DataNet core: the paper's primary contribution.

Subpackage layout:

- :mod:`repro.core.bloom` — space-efficient Bloom filter (from scratch).
- :mod:`repro.core.bucketizer` — linear-time dominant sub-dataset separation.
- :mod:`repro.core.elasticmap` — ElasticMap metadata store (hash map + Bloom
  filter per block) with the paper's Eq. 5 memory model and Eq. 6 size
  estimator.
- :mod:`repro.core.builder` — single-scan ElasticMap construction over a
  stored dataset.
- :mod:`repro.core.bipartite` — the cluster-node/block bipartite graph of
  Section IV-A.
- :mod:`repro.core.scheduler` — Algorithm 1, distribution-aware balanced
  task assignment.
- :mod:`repro.core.flow` — Ford–Fulkerson (Edmonds–Karp) optimal assignment
  for homogeneous clusters.
- :mod:`repro.core.datanet` — the :class:`~repro.core.datanet.DataNet`
  facade tying everything together.
- :mod:`repro.core.metastore` — distributed metadata store (the paper's
  future-work direction for metadata beyond one master's memory).
- :mod:`repro.core.aggregation` — aggregation-transfer minimization (the
  paper's other future-work direction).
"""

from .bloom import BloomFilter
from .bucketizer import BucketSeparator, BucketSpec, SeparationResult
from .elasticmap import BlockElasticMap, ElasticMapArray, MemoryModel
from .builder import ElasticMapBuilder, build_elasticmap_array
from .bipartite import BipartiteGraph
from .scheduler import DistributionAwareScheduler, Assignment
from .flow import MaxFlowSolver, optimal_assignment
from .datanet import DataNet
from .metastore import DistributedMetaStore, MetaNode, ShardMap
from .aggregation import AggregationPlan, plan_greedy, plan_optimal
from .countmin import CountMinSketch
from .sketchmap import SketchBlockElasticMap

__all__ = [
    "BloomFilter",
    "BucketSeparator",
    "BucketSpec",
    "SeparationResult",
    "BlockElasticMap",
    "ElasticMapArray",
    "MemoryModel",
    "ElasticMapBuilder",
    "build_elasticmap_array",
    "BipartiteGraph",
    "DistributionAwareScheduler",
    "Assignment",
    "MaxFlowSolver",
    "optimal_assignment",
    "DataNet",
    "DistributedMetaStore",
    "MetaNode",
    "ShardMap",
    "AggregationPlan",
    "plan_greedy",
    "plan_optimal",
    "CountMinSketch",
    "SketchBlockElasticMap",
]
