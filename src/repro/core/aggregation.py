"""Aggregation-transfer optimization (paper Section IV-B future work).

The paper: "For applications with aggregation requirements, the output may
need to be transferred over the network ... ElasticMap can also be used to
minimize the data transferred with the knowledge of sub-dataset
distributions.  We leave the optimization of the sub-dataset transfer
problem as a future work."

This module implements that optimization.  After the map phase, each node
holds intermediate bytes destined for each reducer partition.  A reducer
placed on node *n* fetches its whole partition *except* the share already
on *n*.  Placing reducers to maximize the co-located share — a classic
assignment problem — minimizes total shuffle traffic.

Two planners are provided:

* :func:`plan_greedy` — reducers in descending partition size pick the
  node holding most of their partition (capped reducers per node).
* :func:`plan_optimal` — Hungarian-style optimal assignment via
  ``scipy.optimize.linear_sum_assignment`` on the co-location matrix.

Both return an :class:`AggregationPlan` reporting bytes saved vs the
hash-placement baseline (reducers on arbitrary nodes ⇒ fetch everything).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Optional, Tuple

import numpy as np

from ..errors import ConfigError

__all__ = ["AggregationPlan", "plan_greedy", "plan_optimal", "transfer_bytes"]

NodeId = Hashable

#: ``volumes[node][reducer] = bytes`` of intermediate data on *node* for *reducer*.
VolumeMap = Mapping[NodeId, Mapping[int, int]]


def _validate(volumes: VolumeMap) -> Tuple[List[NodeId], List[int]]:
    if not volumes:
        raise ConfigError("volumes must name at least one node")
    nodes = sorted(volumes.keys(), key=repr)
    reducers: set = set()
    for node, parts in volumes.items():
        for r, nbytes in parts.items():
            if nbytes < 0:
                raise ConfigError(f"negative volume on node {node!r} reducer {r}")
            reducers.add(r)
    if not reducers:
        raise ConfigError("volumes contain no reducer partitions")
    return nodes, sorted(reducers)


def transfer_bytes(volumes: VolumeMap, placement: Mapping[int, NodeId]) -> int:
    """Network bytes a reducer placement costs.

    Every byte of reducer *r*'s partition travels unless it already sits on
    the node hosting *r*.
    """
    _nodes, reducers = _validate(volumes)
    missing = [r for r in reducers if r not in placement]
    if missing:
        raise ConfigError(f"placement missing reducers: {missing[:5]}")
    total = 0
    for node, parts in volumes.items():
        for r, nbytes in parts.items():
            if placement[r] != node:
                total += nbytes
    return total


@dataclass
class AggregationPlan:
    """A reducer placement plus its traffic accounting.

    Attributes:
        placement: reducer index → hosting node.
        transfer: shuffle bytes under this placement.
        baseline_transfer: bytes if every partition were fully fetched
            (reducers placed off-data, the worst/hash case).
    """

    placement: Dict[int, NodeId]
    transfer: int
    baseline_transfer: int

    @property
    def saved_bytes(self) -> int:
        return self.baseline_transfer - self.transfer

    @property
    def saved_fraction(self) -> float:
        """Fraction of the baseline shuffle volume avoided."""
        if self.baseline_transfer == 0:
            return 0.0
        return self.saved_bytes / self.baseline_transfer


def _baseline(volumes: VolumeMap) -> int:
    return sum(nbytes for parts in volumes.values() for nbytes in parts.values())


def plan_greedy(
    volumes: VolumeMap, *, max_reducers_per_node: Optional[int] = None
) -> AggregationPlan:
    """Greedy co-location: big partitions first, each to its best node.

    Args:
        volumes: per-node per-reducer intermediate bytes.
        max_reducers_per_node: slot cap per node (None = unlimited).
    """
    nodes, reducers = _validate(volumes)
    if max_reducers_per_node is not None and max_reducers_per_node <= 0:
        raise ConfigError("max_reducers_per_node must be positive")
    partition_total: Dict[int, int] = {r: 0 for r in reducers}
    on_node: Dict[int, Dict[NodeId, int]] = {r: {} for r in reducers}
    for node, parts in volumes.items():
        for r, nbytes in parts.items():
            partition_total[r] += nbytes
            on_node[r][node] = on_node[r].get(node, 0) + nbytes

    slots = {n: (max_reducers_per_node or len(reducers)) for n in nodes}
    placement: Dict[int, NodeId] = {}
    for r in sorted(reducers, key=lambda r: -partition_total[r]):
        candidates = [n for n in nodes if slots[n] > 0]
        if not candidates:
            raise ConfigError("not enough reducer slots for all partitions")
        best = max(candidates, key=lambda n: (on_node[r].get(n, 0), repr(n)))
        placement[r] = best
        slots[best] -= 1
    return AggregationPlan(
        placement=placement,
        transfer=transfer_bytes(volumes, placement),
        baseline_transfer=_baseline(volumes),
    )


def plan_optimal(volumes: VolumeMap) -> AggregationPlan:
    """Optimal one-reducer-per-node placement via the Hungarian method.

    Maximizes total co-located bytes under the constraint that each node
    hosts at most ``ceil(R / N)`` reducers (nodes are replicated into that
    many slots, then ``linear_sum_assignment`` finds the max-weight
    matching).
    """
    nodes, reducers = _validate(volumes)
    slots_per_node = -(-len(reducers) // len(nodes))  # ceil division
    slot_nodes: List[NodeId] = [n for n in nodes for _ in range(slots_per_node)]
    gain = np.zeros((len(reducers), len(slot_nodes)))
    for j, node in enumerate(slot_nodes):
        parts = volumes.get(node, {})
        for i, r in enumerate(reducers):
            gain[i, j] = parts.get(r, 0)
    from scipy.optimize import linear_sum_assignment

    rows, cols = linear_sum_assignment(-gain)
    placement = {reducers[i]: slot_nodes[j] for i, j in zip(rows, cols)}
    return AggregationPlan(
        placement=placement,
        transfer=transfer_bytes(volumes, placement),
        baseline_transfer=_baseline(volumes),
    )
