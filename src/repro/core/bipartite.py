"""The cluster-node / block bipartite graph of paper Section IV-A.

``G = (CN, B, E)``: an edge connects cluster node ``cn_i`` to block ``b_j``
iff a replica of ``b_j`` resides on ``cn_i``.  Every edge adjacent to
``b_j`` carries the same weight ``|b_j ∩ s|`` — the bytes of the target
sub-dataset ``s`` in that block, as reported by the ElasticMap.

The graph is deliberately a small purpose-built structure (not networkx):
Algorithm 1 mutates it destructively (removing a block's edges once its
task is assigned), and the scheduler needs O(1) "local blocks of node i"
access.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Mapping, Sequence, Set

from ..errors import ConfigError, SchedulingError

__all__ = ["BipartiteGraph"]

NodeId = Hashable


class BipartiteGraph:
    """Mutable weighted bipartite graph between cluster nodes and blocks.

    Args:
        placement: block id → sequence of cluster nodes holding a replica.
        weights: block id → sub-dataset bytes in that block (``|b ∩ s|``).
            Blocks present in ``placement`` but missing from ``weights``
            get weight 0; blocks only in ``weights`` are rejected, since a
            block with no replicas cannot be scheduled.
        nodes: optional explicit node universe (so nodes holding no relevant
            block still participate in scheduling).
        needed: block id → holders a read must reach (default 1).  For an
            erasure-coded dataset this is ``k``: the holders are fragment
            holders, and a block is only schedulable/reachable while at
            least k of them are — fragments, not whole replicas, become
            the unit :meth:`restrict` reasons about.
    """

    def __init__(
        self,
        placement: Mapping[int, Sequence[NodeId]],
        weights: Mapping[int, int],
        *,
        nodes: Iterable[NodeId] | None = None,
        needed: Mapping[int, int] | None = None,
    ) -> None:
        unknown = set(weights) - set(placement)
        if unknown:
            raise ConfigError(
                f"weights given for blocks with no placement: {sorted(unknown)[:5]}"
            )
        self._nodes: Set[NodeId] = set(nodes) if nodes is not None else set()
        self._blocks_on: Dict[NodeId, Set[int]] = {n: set() for n in self._nodes}
        self._nodes_of: Dict[int, Set[NodeId]] = {}
        self._weight: Dict[int, int] = {}
        self._needed: Dict[int, int] = {}
        for block_id, replica_nodes in placement.items():
            if not replica_nodes:
                raise ConfigError(f"block {block_id} has an empty replica list")
            w = int(weights.get(block_id, 0))
            if w < 0:
                raise ConfigError(f"block {block_id} has negative weight {w}")
            need = int(needed.get(block_id, 1)) if needed is not None else 1
            if need < 1:
                raise ConfigError(
                    f"block {block_id} needs {need} holders; minimum is 1"
                )
            if need > len(set(replica_nodes)):
                raise ConfigError(
                    f"block {block_id} needs {need} holders but is placed "
                    f"on only {len(set(replica_nodes))}"
                )
            self._weight[block_id] = w
            self._needed[block_id] = need
            self._nodes_of[block_id] = set(replica_nodes)
            for node in replica_nodes:
                self._nodes.add(node)
                self._blocks_on.setdefault(node, set()).add(block_id)
        for node in self._nodes:
            self._blocks_on.setdefault(node, set())

    # -- static views ------------------------------------------------------------

    @property
    def nodes(self) -> List[NodeId]:
        """All cluster nodes, in sorted order (sortable node ids assumed)."""
        return sorted(self._nodes, key=repr)

    @property
    def blocks(self) -> List[int]:
        """All block ids still present in the graph, sorted."""
        return sorted(self._nodes_of)

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_blocks(self) -> int:
        return len(self._nodes_of)

    def weight(self, block_id: int) -> int:
        """The edge weight ``|b ∩ s|`` of a block (0 allowed)."""
        try:
            return self._weight[block_id]
        except KeyError:
            raise SchedulingError(f"block {block_id} not in graph") from None

    def total_weight(self) -> int:
        """Sum of all block weights currently in the graph."""
        return sum(self._weight[b] for b in self._nodes_of)

    def needed_of(self, block_id: int) -> int:
        """Holders a read of this block must reach (k for coded blocks)."""
        try:
            return self._needed[block_id]
        except KeyError:
            raise SchedulingError(f"block {block_id} not in graph") from None

    def blocks_on(self, node: NodeId) -> Set[int]:
        """Blocks with a replica on ``node`` (the ``d_i`` of Algorithm 1)."""
        try:
            return set(self._blocks_on[node])
        except KeyError:
            raise SchedulingError(f"unknown cluster node {node!r}") from None

    def nodes_of(self, block_id: int) -> Set[NodeId]:
        """Cluster nodes holding a replica of ``block_id``."""
        try:
            return set(self._nodes_of[block_id])
        except KeyError:
            raise SchedulingError(f"block {block_id} not in graph") from None

    def is_local(self, node: NodeId, block_id: int) -> bool:
        """True iff ``node`` holds a replica of ``block_id``."""
        return block_id in self._blocks_on.get(node, ())

    # -- mutation (Algorithm 1 lines 17-20) -----------------------------------------

    def remove_block(self, block_id: int) -> None:
        """Remove a block and all its edges (after its task is assigned)."""
        try:
            replica_nodes = self._nodes_of.pop(block_id)
        except KeyError:
            raise SchedulingError(f"block {block_id} not in graph") from None
        self._weight.pop(block_id, None)
        self._needed.pop(block_id, None)
        for node in replica_nodes:
            self._blocks_on[node].discard(block_id)

    # -- incremental edge updates ---------------------------------------------------
    #
    # Placement churn (node loss, re-replication, chaos recovery) used to
    # rebuild the whole graph from scratch — O(nodes · blocks) per event.
    # These mutators patch only the edges that actually changed, so a
    # cached graph can track a drifting placement at O(degree) per event.

    def add_node(self, node: NodeId) -> None:
        """Register a cluster node (idempotent); it may hold no block yet."""
        self._nodes.add(node)
        self._blocks_on.setdefault(node, set())

    def remove_node(self, node: NodeId) -> List[int]:
        """Drop a node and its edges; returns the blocks it stranded.

        A block is stranded when losing this holder leaves it with fewer
        than ``needed`` reachable holders; stranded blocks are removed
        from the graph (mirroring :meth:`restrict`) so the caller can
        defer or re-replicate them.
        """
        if node not in self._nodes:
            raise SchedulingError(f"unknown cluster node {node!r}")
        self._nodes.discard(node)
        held = self._blocks_on.pop(node, set())
        stranded: List[int] = []
        for block_id in held:
            holders = self._nodes_of[block_id]
            holders.discard(node)
            if len(holders) < self._needed[block_id]:
                stranded.append(block_id)
        for block_id in stranded:
            self.remove_block(block_id)
        return sorted(stranded)

    def add_block(
        self,
        block_id: int,
        replica_nodes: Sequence[NodeId],
        weight: int = 0,
        *,
        needed: int = 1,
    ) -> None:
        """Insert a block with its replica edges (same checks as __init__)."""
        if block_id in self._nodes_of:
            raise SchedulingError(f"block {block_id} already in graph")
        if not replica_nodes:
            raise ConfigError(f"block {block_id} has an empty replica list")
        w = int(weight)
        if w < 0:
            raise ConfigError(f"block {block_id} has negative weight {w}")
        need = int(needed)
        if need < 1:
            raise ConfigError(f"block {block_id} needs {need} holders; minimum is 1")
        holders = set(replica_nodes)
        if need > len(holders):
            raise ConfigError(
                f"block {block_id} needs {need} holders but is placed "
                f"on only {len(holders)}"
            )
        self._weight[block_id] = w
        self._needed[block_id] = need
        self._nodes_of[block_id] = holders
        for node in holders:
            self._nodes.add(node)
            self._blocks_on.setdefault(node, set()).add(block_id)

    def set_block_nodes(self, block_id: int, replica_nodes: Sequence[NodeId]) -> bool:
        """Point a block's edges at a new holder set; True if anything changed.

        The weight and decode floor are preserved — only the replica edges
        move (the re-replication / recovery case).
        """
        try:
            old = self._nodes_of[block_id]
        except KeyError:
            raise SchedulingError(f"block {block_id} not in graph") from None
        new = set(replica_nodes)
        if not new:
            raise ConfigError(f"block {block_id} has an empty replica list")
        if self._needed[block_id] > len(new):
            raise ConfigError(
                f"block {block_id} needs {self._needed[block_id]} holders "
                f"but is placed on only {len(new)}"
            )
        if new == old:
            return False
        for node in old - new:
            self._blocks_on[node].discard(block_id)
        for node in new - old:
            self._nodes.add(node)
            self._blocks_on.setdefault(node, set()).add(block_id)
        self._nodes_of[block_id] = new
        return True

    def set_weight(self, block_id: int, weight: int) -> None:
        """Update a block's edge weight in place."""
        if block_id not in self._nodes_of:
            raise SchedulingError(f"block {block_id} not in graph")
        w = int(weight)
        if w < 0:
            raise ConfigError(f"block {block_id} has negative weight {w}")
        self._weight[block_id] = w

    def restrict(
        self, allowed: Iterable[NodeId]
    ) -> tuple["BipartiteGraph", List[int]]:
        """Project the graph onto ``allowed`` nodes (partition-aware view).

        Returns the subgraph over the allowed side plus the sorted list of
        *stranded* blocks — blocks with fewer than ``needed`` reachable
        holders inside ``allowed`` (every replica cut off for replicated
        blocks; more than m fragments cut off for coded ones).  Stranded
        blocks are dropped from the subgraph rather than raising: the
        caller defers them until the cut heals.
        """
        keep = {n for n in self._nodes if n in set(allowed)}
        if not keep:
            raise SchedulingError("restriction removes every cluster node")
        placement: Dict[int, List[NodeId]] = {}
        stranded: List[int] = []
        for block_id, replica_nodes in self._nodes_of.items():
            reachable = sorted((n for n in replica_nodes if n in keep), key=repr)
            if len(reachable) >= self._needed[block_id]:
                placement[block_id] = reachable
            else:
                stranded.append(block_id)
        sub = BipartiteGraph(
            placement,
            {b: self._weight[b] for b in placement},
            nodes=sorted(keep, key=repr),
            needed={b: self._needed[b] for b in placement},
        )
        return sub, sorted(stranded)

    def copy(self) -> "BipartiteGraph":
        """Deep copy; schedulers mutate copies, callers keep the original."""
        out = object.__new__(BipartiteGraph)
        out._nodes = set(self._nodes)
        out._blocks_on = {n: set(bs) for n, bs in self._blocks_on.items()}
        out._nodes_of = {b: set(ns) for b, ns in self._nodes_of.items()}
        out._weight = dict(self._weight)
        out._needed = dict(self._needed)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BipartiteGraph(nodes={self.num_nodes}, blocks={self.num_blocks}, "
            f"total_weight={self.total_weight()})"
        )
