"""A from-scratch Bloom filter backed by a NumPy bit array.

The paper (Section III-A) stores *non-dominant* sub-dataset ids in a Bloom
filter because their exact sizes are irrelevant for workload balance — only
their existence matters.  A Bloom filter answers "is sub-dataset *s*
possibly in block *b*?" with a tunable false-positive rate ``eps`` at a
memory cost of ``-ln(eps) / ln(2)**2`` bits per element (the paper quotes
~10 bits vs ~85 bits for a hash-map entry).

Implementation notes
--------------------
* Double hashing (Kirsch–Mitzenmacher): two 64-bit digests ``h1``, ``h2``
  derived from one ``blake2b`` call; probe *i* uses ``h1 + i*h2``.  This
  preserves the asymptotic false-positive rate of *k* independent hashes.
* The bit array is a ``numpy.uint8`` buffer, so a filter is cheap to union,
  serialize, and measure.
"""

from __future__ import annotations

import hashlib
import math
from typing import Iterable, Iterator, Sequence

import numpy as np

from ..errors import ConfigError

__all__ = ["BloomFilter", "bits_per_element", "optimal_num_bits", "optimal_num_hashes"]

_LN2 = math.log(2.0)


def bits_per_element(error_rate: float) -> float:
    """Bits needed per stored element for a target false-positive rate.

    This is the paper's expression ``-ln(eps) / ln(2)^2`` (Section III-A).

    >>> round(bits_per_element(0.01), 1)
    9.6
    """
    _check_error_rate(error_rate)
    return -math.log(error_rate) / (_LN2 * _LN2)


def optimal_num_bits(capacity: int, error_rate: float) -> int:
    """Optimal total bit count ``m`` for ``capacity`` elements at ``error_rate``."""
    if capacity < 0:
        raise ConfigError(f"capacity must be non-negative, got {capacity}")
    return max(8, int(math.ceil(max(capacity, 1) * bits_per_element(error_rate))))


def optimal_num_hashes(num_bits: int, capacity: int) -> int:
    """Optimal hash count ``k = (m/n) ln 2`` (at least 1)."""
    if capacity <= 0:
        return 1
    return max(1, int(round((num_bits / capacity) * _LN2)))


def _check_error_rate(error_rate: float) -> None:
    if not (0.0 < error_rate < 1.0):
        raise ConfigError(f"error_rate must be in (0, 1), got {error_rate}")


def _digest_pair(item: str | bytes, seed: int) -> tuple[int, int]:
    """Two independent 64-bit hash values for *item* via one blake2b call."""
    data = item.encode("utf-8") if isinstance(item, str) else item
    d = hashlib.blake2b(data, digest_size=16, salt=seed.to_bytes(8, "little")).digest()
    h1 = int.from_bytes(d[:8], "little")
    h2 = int.from_bytes(d[8:], "little") | 1  # odd so all probes differ
    return h1, h2


class BloomFilter:
    """Space-efficient probabilistic set membership over string/bytes keys.

    Args:
        capacity: expected number of distinct elements; sizing uses this.
        error_rate: target false-positive probability ``eps`` at capacity.
        seed: salt mixed into the hash, so independent filters (e.g. one per
            HDFS block) do not share false-positive patterns.

    No false negatives are possible; false positives occur with probability
    ~``error_rate`` once ``capacity`` elements are inserted (lower before).
    """

    __slots__ = ("num_bits", "num_hashes", "error_rate", "seed", "_bits", "_count")

    def __init__(self, capacity: int = 1024, error_rate: float = 0.01, *, seed: int = 0) -> None:
        _check_error_rate(error_rate)
        if capacity < 0:
            raise ConfigError(f"capacity must be non-negative, got {capacity}")
        self.num_bits = optimal_num_bits(capacity, error_rate)
        self.num_hashes = optimal_num_hashes(self.num_bits, max(capacity, 1))
        self.error_rate = error_rate
        self.seed = seed
        self._bits = np.zeros((self.num_bits + 7) // 8, dtype=np.uint8)
        self._count = 0

    # -- core operations ---------------------------------------------------

    def _positions(self, item: str | bytes) -> Iterator[int]:
        h1, h2 = _digest_pair(item, self.seed)
        m = self.num_bits
        for i in range(self.num_hashes):
            yield (h1 + i * h2) % m

    def add(self, item: str | bytes) -> None:
        """Insert *item* (idempotent)."""
        new = False
        for pos in self._positions(item):
            byte, bit = divmod(pos, 8)
            mask = np.uint8(1 << bit)
            if not self._bits[byte] & mask:
                new = True
            self._bits[byte] |= mask
        if new:
            self._count += 1

    def update(self, items: Iterable[str | bytes]) -> None:
        """Insert every element of *items* (scalar reference loop)."""
        for item in items:
            self.add(item)

    # -- batched operations ---------------------------------------------------

    def _position_matrix(self, items: Sequence[str | bytes]) -> np.ndarray:
        """Per-item probe positions, shape ``(len(items), num_hashes)``.

        One blake2b digest per item (unavoidable — the hash is keyed per
        item) concatenated into a single buffer, then every
        Kirsch–Mitzenmacher probe computed as one array expression.
        Working mod ``m`` first keeps ``h1%m + i*(h2%m)`` far below 2**64,
        so the uint64 arithmetic never wraps and each position equals the
        scalar path's arbitrary-precision ``(h1 + i*h2) % m`` exactly.
        """
        # cloning a pre-salted state is ~30% cheaper than re-parsing the
        # constructor kwargs per item, and yields identical digests
        base = hashlib.blake2b(
            digest_size=16, salt=self.seed.to_bytes(8, "little")
        )

        def _digest(item: str | bytes) -> bytes:
            h = base.copy()
            h.update(item.encode("utf-8") if isinstance(item, str) else item)
            return h.digest()

        digests = b"".join(_digest(item) for item in items)
        pairs = np.frombuffer(digests, dtype="<u8").reshape(-1, 2)
        m = np.uint64(self.num_bits)
        h1 = pairs[:, 0] % m
        h2 = (pairs[:, 1] | np.uint64(1)) % m
        probes = np.arange(self.num_hashes, dtype=np.uint64)
        return (h1[:, None] + probes[None, :] * h2[:, None]) % m

    def add_many(self, items: Sequence[str | bytes]) -> int:
        """Batched :meth:`add`; returns how many items were new.

        Bit-identical to adding the items one by one, including the
        distinct-insertion counter: an item counts as new exactly when it
        is the batch's first toucher of some bit that was unset before the
        batch (which is what the sequential loop observes).
        """
        items = list(items)
        if not items:
            return 0
        if self.num_bits * self.num_hashes >= 2**62:  # pragma: no cover
            # keep far from any uint64 wrap for absurd geometries
            before = self._count
            self.update(items)
            return self._count - before
        positions = self._position_matrix(items)
        flat = positions.ravel().astype(np.int64)
        if self.num_bits <= max(8 * flat.size, 1 << 25):
            newly_set = self._scatter_bits(flat)
        else:
            newly_set = self._sorted_bits(flat)
        new_items = newly_set.reshape(positions.shape).any(axis=1)
        added = int(new_items.sum())
        self._count += added
        return added

    def _scatter_bits(self, flat: np.ndarray) -> np.ndarray:
        """Set ``flat`` bit positions via O(num_bits) dense temporaries.

        Returns the per-probe "newly set by its first toucher" mask.  The
        first toucher of each bit is found without sorting: scattering
        probe indices in *reverse* leaves the earliest write standing.
        Fast when the batch is dense relative to the filter; the dense
        arrays make it a poor fit for a tiny batch against a huge filter.
        """
        bits_bool = np.unpackbits(self._bits, bitorder="little")[: self.num_bits]
        unset_before = ~bits_bool[flat]
        probe_idx = np.arange(flat.size, dtype=np.int64)
        first_at_bit = np.empty(self.num_bits, dtype=np.int64)
        first_at_bit[flat[::-1]] = probe_idx[::-1]
        newly_set = (first_at_bit[flat] == probe_idx) & unset_before
        bits_bool[flat] = True
        packed = np.packbits(bits_bool, bitorder="little")
        self._bits[: packed.size] = packed
        return newly_set

    def _sorted_bits(self, flat: np.ndarray) -> np.ndarray:
        """Sparse variant of :meth:`_scatter_bits`: O(probes log probes).

        A stable argsort finds each bit's first toucher; bit setting goes
        through ``bitwise_or.at``.  Slower per probe but touches no
        O(num_bits) memory, so it wins for small batches on big filters.
        """
        byte_idx = flat >> 3
        masks = (np.uint8(1) << (flat & 7).astype(np.uint8))
        unset_before = (self._bits[byte_idx] & masks) == 0
        order = np.argsort(flat, kind="stable")
        sorted_pos = flat[order]
        first = np.empty(sorted_pos.size, dtype=bool)
        first[:1] = True
        first[1:] = sorted_pos[1:] != sorted_pos[:-1]
        newly_set = np.zeros(flat.size, dtype=bool)
        newly_set[order] = first
        newly_set &= unset_before
        np.bitwise_or.at(self._bits, byte_idx, masks)
        return newly_set

    def contains_many(self, items: Sequence[str | bytes]) -> np.ndarray:
        """Batched membership test; boolean array aligned with ``items``.

        Bit-identical to ``[item in self for item in items]``.
        """
        items = list(items)
        if not items:
            return np.zeros(0, dtype=bool)
        positions = self._position_matrix(items)
        byte_idx = (positions >> np.uint64(3)).astype(np.int64)
        masks = (np.uint8(1) << (positions & np.uint64(7)).astype(np.uint8))
        return ((self._bits[byte_idx] & masks) != 0).all(axis=1)

    def __contains__(self, item: str | bytes) -> bool:
        for pos in self._positions(item):
            byte, bit = divmod(pos, 8)
            if not self._bits[byte] & np.uint8(1 << bit):
                return False
        return True

    # -- introspection -----------------------------------------------------

    @property
    def approx_count(self) -> int:
        """Lower-bound estimate of distinct insertions (exact until saturation)."""
        return self._count

    @property
    def fill_ratio(self) -> float:
        """Fraction of bits currently set; drives the live FP rate."""
        return float(np.unpackbits(self._bits)[: self.num_bits].sum()) / self.num_bits

    def current_error_rate(self) -> float:
        """False-positive probability at the *current* fill level."""
        return self.fill_ratio ** self.num_hashes

    @property
    def memory_bits(self) -> int:
        """Bits of storage used by the bit array (the Eq. 5 cost term)."""
        return self.num_bits

    @property
    def memory_bytes(self) -> int:
        """Bytes of storage used by the bit array."""
        return int(self._bits.nbytes)

    def __len__(self) -> int:
        return self._count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BloomFilter(bits={self.num_bits}, hashes={self.num_hashes}, "
            f"eps={self.error_rate}, count~{self._count})"
        )

    # -- set algebra ---------------------------------------------------------

    def _check_compatible(self, other: "BloomFilter") -> None:
        if (
            self.num_bits != other.num_bits
            or self.num_hashes != other.num_hashes
            or self.seed != other.seed
        ):
            raise ConfigError("Bloom filters have incompatible geometry; cannot combine")

    def union(self, other: "BloomFilter") -> "BloomFilter":
        """Return a filter containing every element of either input."""
        self._check_compatible(other)
        out = self.copy()
        np.bitwise_or(out._bits, other._bits, out=out._bits)
        out._count = max(self._count, other._count)
        return out

    def copy(self) -> "BloomFilter":
        """Deep copy (bit array included)."""
        out = object.__new__(BloomFilter)
        out.num_bits = self.num_bits
        out.num_hashes = self.num_hashes
        out.error_rate = self.error_rate
        out.seed = self.seed
        out._bits = self._bits.copy()
        out._count = self._count
        return out

    # -- serialization -------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize geometry + bit array to a compact byte string."""
        header = (
            self.num_bits.to_bytes(8, "little")
            + self.num_hashes.to_bytes(2, "little")
            + self.seed.to_bytes(8, "little", signed=True)
            + int(self.error_rate * 1e9).to_bytes(8, "little")
            + self._count.to_bytes(8, "little")
        )
        return header + self._bits.tobytes()

    @classmethod
    def from_bytes(cls, blob: bytes) -> "BloomFilter":
        """Inverse of :meth:`to_bytes`."""
        if len(blob) < 34:
            raise ConfigError("bloom filter blob too short")
        out = object.__new__(cls)
        out.num_bits = int.from_bytes(blob[0:8], "little")
        out.num_hashes = int.from_bytes(blob[8:10], "little")
        out.seed = int.from_bytes(blob[10:18], "little", signed=True)
        out.error_rate = int.from_bytes(blob[18:26], "little") / 1e9
        out._count = int.from_bytes(blob[26:34], "little")
        bits = np.frombuffer(blob[34:], dtype=np.uint8).copy()
        expected = (out.num_bits + 7) // 8
        if bits.size != expected:
            raise ConfigError(
                f"bloom filter blob bit-array size mismatch: {bits.size} != {expected}"
            )
        out._bits = bits
        return out
