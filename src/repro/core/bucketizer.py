"""Linear-time dominant sub-dataset separation (paper Section III-B).

A block holds data from many sub-datasets; only the few *dominant* ones
matter for workload balance.  Sorting sub-datasets by size would cost
``O(m log m)`` per block.  Instead, the paper distributes sub-datasets into
a small series of *size buckets* during the single scan that measures them
— non-uniform (Fibonacci-spaced) buckets, because content clustering means
large sizes are rare.  After the scan, the bucket statistics alone identify
a cutoff: every sub-dataset at or above the cutoff bucket goes to the hash
map, the rest to the Bloom filter.  Total work is ``O(records)`` per block.

This module provides:

* :class:`BucketSpec` — the bucket-boundary series (Fibonacci by default,
  uniform/geometric variants for the ablation benchmarks).
* :class:`BucketSeparator` — the streaming accumulator: feed it
  ``(sub_dataset_id, nbytes)`` observations, then ask it to separate
  dominant sub-datasets by a target fraction ``alpha`` or a memory budget.
* :class:`SeparationResult` — the dominant/tail partition.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

import numpy as np

from ..errors import ConfigError
from ..units import KiB, fibonacci_boundaries

__all__ = ["BucketSpec", "BucketSeparator", "SeparationResult"]


@dataclass(frozen=True)
class BucketSpec:
    """An increasing series of bucket boundaries, in bytes.

    ``boundaries = [b0, b1, ..., bK-1]`` defines K+1 buckets:
    ``(0, b0), [b0, b1), ..., [bK-1, inf)``.  ``bucket_of(size)`` returns the
    bucket index (0-based, larger index = larger sizes).
    """

    boundaries: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.boundaries:
            raise ConfigError("BucketSpec needs at least one boundary")
        if any(b <= 0 for b in self.boundaries):
            raise ConfigError("bucket boundaries must be positive")
        if any(b >= c for b, c in zip(self.boundaries, self.boundaries[1:])):
            raise ConfigError("bucket boundaries must be strictly increasing")
        # Cached lookup structures (the spec is frozen, so these never go
        # stale): a list for bisect — re-indexing the tuple field per record
        # is measurably slower — and an int64 array for the batched
        # searchsorted path.  Not dataclass fields: eq/hash stay on
        # ``boundaries`` alone.
        object.__setattr__(self, "_bounds_list", list(self.boundaries))
        object.__setattr__(
            self, "_bounds_arr", np.asarray(self.boundaries, dtype=np.int64)
        )

    # -- constructors --------------------------------------------------------

    @classmethod
    def fibonacci(cls, base: int = KiB, count: int = 8) -> "BucketSpec":
        """The paper's series: ``1kb, 2kb, 3kb, 5kb, 8kb, 13kb, 21kb, 34kb``.

        >>> BucketSpec.fibonacci().boundaries[:4]
        (1024, 2048, 3072, 5120)
        """
        return cls(tuple(fibonacci_boundaries(base, count)))

    @classmethod
    def for_block_size(cls, block_size: int, count: int = 10) -> "BucketSpec":
        """Fibonacci buckets proportioned to a block size.

        The paper's 1 KB first boundary assumes 64 MB blocks — i.e. the
        finest bucket resolves ~1/65536 of a block.  Scaled-down
        experiments (e.g. 64 KiB blocks standing in for 64 MB) need
        proportionally finer boundaries or every sub-dataset lands in
        bucket 0.  The base is ``block_size / 1024`` clamped to ≥ 16 B.
        """
        if block_size <= 0:
            raise ConfigError("block_size must be positive")
        base = max(16, block_size // 1024)
        return cls(tuple(fibonacci_boundaries(base, count)))

    @classmethod
    def uniform(cls, step: int = 4 * KiB, count: int = 8) -> "BucketSpec":
        """Evenly spaced boundaries ``step, 2*step, ...`` (ablation variant)."""
        if step <= 0 or count <= 0:
            raise ConfigError("step and count must be positive")
        return cls(tuple(step * (i + 1) for i in range(count)))

    @classmethod
    def geometric(cls, base: int = KiB, ratio: float = 2.0, count: int = 8) -> "BucketSpec":
        """Geometrically spaced boundaries ``base, base*r, ...`` (ablation variant)."""
        if base <= 0 or count <= 0 or ratio <= 1.0:
            raise ConfigError("need base>0, count>0, ratio>1")
        out: List[int] = []
        val = float(base)
        for _ in range(count):
            ival = int(round(val))
            if out and ival <= out[-1]:
                ival = out[-1] + 1
            out.append(ival)
            val *= ratio
        return cls(tuple(out))

    # -- queries ---------------------------------------------------------------

    @property
    def num_buckets(self) -> int:
        """Number of buckets (one more than the boundary count)."""
        return len(self.boundaries) + 1

    def bucket_of(self, size: int) -> int:
        """Index of the bucket containing ``size`` bytes.

        Sizes below the first boundary land in bucket 0; sizes at or above
        the last boundary land in the final (open-ended) bucket.
        """
        if size < 0:
            raise ConfigError(f"size must be non-negative, got {size}")
        return bisect.bisect_right(self._bounds_list, size)

    def buckets_of(self, sizes: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`bucket_of` over an integer size array.

        Bit-identical to mapping :meth:`bucket_of` over ``sizes``:
        ``searchsorted(..., side="right")`` is exactly ``bisect_right``.
        """
        arr = np.asarray(sizes, dtype=np.int64)
        if arr.size and int(arr.min()) < 0:
            raise ConfigError("sizes must be non-negative")
        return np.searchsorted(self._bounds_arr, arr, side="right")

    def lower_bound(self, bucket: int) -> int:
        """Smallest size (inclusive) that maps into ``bucket``; 0 for bucket 0."""
        if not (0 <= bucket < self.num_buckets):
            raise ConfigError(f"bucket index out of range: {bucket}")
        return 0 if bucket == 0 else self.boundaries[bucket - 1]


@dataclass
class SeparationResult:
    """Outcome of dominant/tail separation for one block.

    Attributes:
        dominant: sub-dataset id → exact byte size, destined for the hash map.
        tail: sub-dataset id → exact byte size (kept here for accuracy
            accounting; the ElasticMap itself stores only the ids).
        cutoff_bucket: smallest bucket index admitted to ``dominant``.
        alpha: realized dominant fraction ``len(dominant)/m`` (0 when the
            block held no sub-datasets).
    """

    dominant: Dict[str, int]
    tail: Dict[str, int]
    cutoff_bucket: int
    alpha: float = field(default=0.0)

    def __post_init__(self) -> None:
        m = len(self.dominant) + len(self.tail)
        self.alpha = (len(self.dominant) / m) if m else 0.0

    @property
    def num_subdatasets(self) -> int:
        """Total number of distinct sub-datasets observed in the block."""
        return len(self.dominant) + len(self.tail)


class BucketSeparator:
    """Streaming size accumulator + bucket statistics for one block.

    Feed observations with :meth:`observe` (one call per record, or batched
    per-sub-dataset byte counts via :meth:`observe_many`); the separator
    maintains each sub-dataset's running size ``S_j`` and its current bucket
    in O(1) amortized per observation.  :meth:`separate` then chooses the
    cutoff bucket from the bucket statistics alone — no sort.
    """

    def __init__(self, spec: BucketSpec | None = None) -> None:
        self.spec = spec or BucketSpec.fibonacci()
        self._sizes: Dict[str, int] = {}
        self._bucket_of: Dict[str, int] = {}
        self._bucket_counts: List[int] = [0] * self.spec.num_buckets

    # -- accumulation -----------------------------------------------------------

    def observe(self, sub_dataset_id: str, nbytes: int) -> None:
        """Record ``nbytes`` more data belonging to ``sub_dataset_id``."""
        if nbytes < 0:
            raise ConfigError(f"nbytes must be non-negative, got {nbytes}")
        new_size = self._sizes.get(sub_dataset_id, 0) + nbytes
        self._sizes[sub_dataset_id] = new_size
        new_bucket = self.spec.bucket_of(new_size)
        old_bucket = self._bucket_of.get(sub_dataset_id)
        if old_bucket is None:
            self._bucket_counts[new_bucket] += 1
        elif new_bucket != old_bucket:
            self._bucket_counts[old_bucket] -= 1
            self._bucket_counts[new_bucket] += 1
        self._bucket_of[sub_dataset_id] = new_bucket

    def observe_many(self, items: Iterable[Tuple[str, int]]) -> None:
        """Record a stream of ``(sub_dataset_id, nbytes)`` observations.

        Batched: the stream is materialized and folded through
        :meth:`observe_batch`, which is bit-identical to calling
        :meth:`observe` per item (the scalar oracle the property tests
        compare against).
        """
        ids: List[str] = []
        sizes: List[int] = []
        for sid, nbytes in items:
            ids.append(sid)
            sizes.append(nbytes)
        self.observe_batch(ids, sizes)

    def observe_batch(self, ids: Sequence[str], sizes: Sequence[int]) -> None:
        """Vectorized accumulation of parallel ``ids``/``sizes`` arrays.

        Grouping is exact and C-level: ``dict.fromkeys`` yields the
        distinct ids in first-observation order (the same insertion order
        the scalar loop produces), a dict lookup per record assigns dense
        group codes, and one ``np.bincount`` folds the per-id byte totals.
        The new bucket of every touched id then comes from one
        ``searchsorted`` over the boundary series.  End state (sizes,
        buckets, bucket histogram, *and* dict insertion order) is
        bit-identical to the scalar :meth:`observe` loop.
        """
        n = len(ids)
        if n != len(sizes):
            raise ConfigError(
                f"ids and sizes length mismatch: {n} != {len(sizes)}"
            )
        if n == 0:
            return
        size_arr = np.asarray(sizes, dtype=np.int64)
        if int(size_arr.min()) < 0:
            raise ConfigError("nbytes must be non-negative")
        if not isinstance(ids, list):
            ids = list(ids)
        keys = list(dict.fromkeys(ids))
        if len(keys) == n:
            # all ids distinct — per-id totals are just the sizes
            totals = size_arr
        else:
            code_of = {k: i for i, k in enumerate(keys)}
            codes = np.fromiter(
                map(code_of.__getitem__, ids), dtype=np.int64, count=n
            )
            if int(size_arr.sum()) < 2**53:
                # float64 partial sums of non-negative ints below 2**53
                # are exact, so the weighted bincount is too
                totals = np.bincount(
                    codes, weights=size_arr, minlength=len(keys)
                ).astype(np.int64)
            else:  # pragma: no cover - exabyte-scale batch
                totals = np.zeros(len(keys), dtype=np.int64)
                np.add.at(totals, codes, size_arr)
        if self._sizes:
            old_sizes = np.fromiter(
                (self._sizes.get(k, 0) for k in keys),
                dtype=np.int64,
                count=len(keys),
            )
            new_sizes = old_sizes + totals
        else:
            # fresh separator (the per-block builder path): nothing to merge
            new_sizes = totals
        new_buckets = self.spec.buckets_of(new_sizes)
        nb = self.spec.num_buckets
        counts = np.asarray(self._bucket_counts, dtype=np.int64)
        counts += np.bincount(new_buckets, minlength=nb)
        if self._bucket_of:
            old_buckets = np.fromiter(
                (self._bucket_of.get(k, -1) for k in keys),
                dtype=np.int64,
                count=len(keys),
            )
            seen_before = old_buckets >= 0
            if seen_before.any():
                counts -= np.bincount(old_buckets[seen_before], minlength=nb)
        self._bucket_counts = [int(c) for c in counts]
        self._sizes.update(zip(keys, new_sizes.tolist()))
        self._bucket_of.update(zip(keys, new_buckets.tolist()))

    # -- statistics ---------------------------------------------------------------

    @property
    def num_subdatasets(self) -> int:
        """Distinct sub-datasets observed so far."""
        return len(self._sizes)

    @property
    def total_bytes(self) -> int:
        """Total bytes observed across all sub-datasets."""
        return sum(self._sizes.values())

    def histogram(self) -> List[int]:
        """Sub-dataset count per bucket, ascending bucket order."""
        return list(self._bucket_counts)

    def sizes(self) -> Mapping[str, int]:
        """Read-only view of the accumulated per-sub-dataset sizes."""
        return dict(self._sizes)

    # -- separation ---------------------------------------------------------------

    def cutoff_for_fraction(self, alpha: float) -> int:
        """Bucket index whose suffix admits ≈ the top ``alpha`` fraction.

        Only whole buckets can be admitted (that is the point: no sorting
        within a bucket), so the realized fraction is the cumulative bucket
        count *closest* to ``alpha * m``; ties favor admitting more
        (accuracy over memory).  ``alpha=0`` admits nothing; ``alpha=1``
        admits everything.
        """
        if not (0.0 <= alpha <= 1.0):
            raise ConfigError(f"alpha must be in [0, 1], got {alpha}")
        m = self.num_subdatasets
        target = alpha * m
        if target <= 0:
            return self.spec.num_buckets  # admit nothing
        best_cutoff = self.spec.num_buckets
        best_diff = target  # admitting nothing is off by the full target
        acc = 0
        for bucket in range(self.spec.num_buckets - 1, -1, -1):
            acc += self._bucket_counts[bucket]
            diff = abs(acc - target)
            if diff <= best_diff:
                best_diff = diff
                best_cutoff = bucket
        return best_cutoff

    def cutoff_for_budget(self, max_hashmap_entries: int) -> int:
        """Smallest bucket index that keeps the hash-map entry count in budget.

        Admits whole buckets from the top down while the cumulative count
        stays within ``max_hashmap_entries``; used when ElasticMap sizing is
        driven by a memory budget (Eq. 5) rather than a fraction.
        """
        if max_hashmap_entries < 0:
            raise ConfigError("max_hashmap_entries must be non-negative")
        acc = 0
        cutoff = self.spec.num_buckets
        for bucket in range(self.spec.num_buckets - 1, -1, -1):
            if acc + self._bucket_counts[bucket] > max_hashmap_entries:
                break
            acc += self._bucket_counts[bucket]
            cutoff = bucket
        return cutoff

    def separate(self, alpha: float | None = None, *, cutoff_bucket: int | None = None) -> SeparationResult:
        """Partition observed sub-datasets into dominant and tail sets.

        Exactly one of ``alpha`` (target dominant fraction) or
        ``cutoff_bucket`` (explicit bucket index) must be given.
        """
        if (alpha is None) == (cutoff_bucket is None):
            raise ConfigError("pass exactly one of alpha or cutoff_bucket")
        if cutoff_bucket is None:
            assert alpha is not None
            cutoff_bucket = self.cutoff_for_fraction(alpha)
        if not (0 <= cutoff_bucket <= self.spec.num_buckets):
            raise ConfigError(f"cutoff_bucket out of range: {cutoff_bucket}")
        dominant: Dict[str, int] = {}
        tail: Dict[str, int] = {}
        for sid, size in self._sizes.items():
            if self._bucket_of[sid] >= cutoff_bucket:
                dominant[sid] = size
            else:
                tail[sid] = size
        return SeparationResult(dominant=dominant, tail=tail, cutoff_bucket=cutoff_bucket)
