"""Single-scan construction of an ElasticMap array (paper Sections III-A/B).

The builder consumes each block's records exactly once.  Per block it runs
the linear-time :class:`~repro.core.bucketizer.BucketSeparator`, picks the
dominant/tail cutoff (by target fraction ``alpha`` or per-block memory
budget), and emits a :class:`~repro.core.elasticmap.BlockElasticMap`.
Total time is ``O(sum of records over all blocks)`` — the paper's
"only a single scan of the raw data is needed".

The builder is storage-agnostic: it accepts any iterable of
``(block_id, observations)`` where observations yield
``(sub_dataset_id, nbytes)`` pairs.  ``repro.hdfs`` adapts stored blocks to
this shape (see :meth:`repro.hdfs.cluster.HDFSCluster.scan_blocks`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from ..errors import ConfigError
from .bucketizer import BucketSeparator, BucketSpec
from .elasticmap import BlockElasticMap, ElasticMapArray, MemoryModel

__all__ = ["BuildStats", "ElasticMapBuilder", "build_elasticmap_array"]

#: One block's worth of scan input: ``(block_id, [(sub_dataset_id, nbytes), ...])``.
BlockObservations = Tuple[int, Iterable[Tuple[str, int]]]

#: One block's worth of columnar scan input: ``(block_id, ids, sizes)``.
BlockArrays = Tuple[int, Sequence[str], Sequence[int]]


def _scalar_forced() -> bool:
    """True when ``REPRO_SCALAR`` requests the reference scalar path.

    The CI equivalence job runs every workload twice — once per mode —
    and diffs the outputs byte for byte.
    """
    return os.environ.get("REPRO_SCALAR", "") not in ("", "0")


@dataclass
class BuildStats:
    """Bookkeeping from one construction pass (useful in benchmarks/tests)."""

    blocks_built: int = 0
    records_scanned: int = 0
    subdatasets_per_block: List[int] = field(default_factory=list)
    dominant_per_block: List[int] = field(default_factory=list)

    @property
    def mean_alpha(self) -> float:
        """Realized average dominant fraction across blocks (0 if empty)."""
        pairs = [
            (d, m)
            for d, m in zip(self.dominant_per_block, self.subdatasets_per_block)
            if m > 0
        ]
        if not pairs:
            return 0.0
        return sum(d / m for d, m in pairs) / len(pairs)


class ElasticMapBuilder:
    """Configurable single-scan ElasticMap constructor.

    Args:
        alpha: target fraction of each block's sub-datasets to store exactly
            in the hash map (the paper's default experiments use 0.3).
            Mutually exclusive with ``budget_bits_per_block``.
        budget_bits_per_block: per-block metadata budget; the cutoff bucket
            is chosen so the Eq. 5 cost fits within it.
        spec: bucket boundary series (Fibonacci by default).
        memory_model: Eq. 5 parameters (hash-map entry bits, Bloom error rate).
        tail_store: ``"bloom"`` (the paper's design) or ``"countmin"``
            (tail sizes approximated by a Count-Min sketch; see
            :mod:`repro.core.sketchmap`).
        vectorized: route scans through the NumPy batch kernels
            (bit-identical to the scalar loop, which stays available as
            the reference oracle).  Defaults to on; the ``REPRO_SCALAR``
            environment variable forces the scalar path regardless.
    """

    def __init__(
        self,
        *,
        alpha: Optional[float] = 0.3,
        budget_bits_per_block: Optional[float] = None,
        spec: Optional[BucketSpec] = None,
        memory_model: Optional[MemoryModel] = None,
        tail_store: str = "bloom",
        vectorized: bool = True,
    ) -> None:
        if (alpha is None) == (budget_bits_per_block is None):
            raise ConfigError("pass exactly one of alpha or budget_bits_per_block")
        if alpha is not None and not (0.0 <= alpha <= 1.0):
            raise ConfigError(f"alpha must be in [0, 1], got {alpha}")
        if budget_bits_per_block is not None and budget_bits_per_block < 0:
            raise ConfigError("budget_bits_per_block must be non-negative")
        if tail_store not in ("bloom", "countmin"):
            raise ConfigError(f"unknown tail_store {tail_store!r}")
        self.alpha = alpha
        self.budget_bits_per_block = budget_bits_per_block
        self.spec = spec or BucketSpec.fibonacci()
        self.memory_model = memory_model or MemoryModel()
        self.tail_store = tail_store
        self.vectorized = vectorized and not _scalar_forced()
        self.stats = BuildStats()

    def build_block(
        self,
        block_id: int,
        observations: Iterable[Tuple[str, int]],
        *,
        fingerprint: Optional[int] = None,
    ) -> BlockElasticMap:
        """Scan one block's ``(sub_dataset_id, nbytes)`` stream into metadata.

        ``fingerprint`` stamps the entry with the content fingerprint of the
        block it was built from, enabling later staleness detection
        (:meth:`repro.core.datanet.DataNet.validate_integrity`).
        """
        if self.vectorized:
            ids: List[str] = []
            sizes: List[int] = []
            for sid, nbytes in observations:
                ids.append(sid)
                sizes.append(nbytes)
            return self.build_block_arrays(
                block_id, ids, sizes, fingerprint=fingerprint
            )
        separator = BucketSeparator(self.spec)
        n = 0
        for sid, nbytes in observations:
            separator.observe(sid, nbytes)
            n += 1
        return self._finish_block(block_id, separator, n, fingerprint)

    def build_block_arrays(
        self,
        block_id: int,
        ids: Sequence[str],
        sizes: Sequence[int],
        *,
        fingerprint: Optional[int] = None,
    ) -> BlockElasticMap:
        """Columnar :meth:`build_block`: parallel ``ids``/``sizes`` arrays.

        The whole scan runs through the batched bucketizer kernel and the
        resulting tail is inserted into the Bloom/CountMin store in one
        batch — end-to-end array ops, one Python-level pass over the input.
        """
        separator = BucketSeparator(self.spec)
        separator.observe_batch(ids, sizes)
        return self._finish_block(block_id, separator, len(ids), fingerprint)

    def _finish_block(
        self,
        block_id: int,
        separator: BucketSeparator,
        n: int,
        fingerprint: Optional[int],
    ) -> BlockElasticMap:
        if self.alpha is not None:
            result = separator.separate(alpha=self.alpha)
        else:
            assert self.budget_bits_per_block is not None
            max_entries = self.memory_model.max_hashmap_entries(
                self.budget_bits_per_block, separator.num_subdatasets
            )
            cutoff = separator.cutoff_for_budget(max_entries)
            result = separator.separate(cutoff_bucket=cutoff)
        self.stats.blocks_built += 1
        self.stats.records_scanned += n
        self.stats.subdatasets_per_block.append(result.num_subdatasets)
        self.stats.dominant_per_block.append(len(result.dominant))
        if self.tail_store == "countmin":
            from .sketchmap import SketchBlockElasticMap

            return SketchBlockElasticMap.from_separation(
                block_id,
                result,
                memory_model=self.memory_model,
                fingerprint=fingerprint,
                batched=self.vectorized,
            )
        return BlockElasticMap.from_separation(
            block_id,
            result,
            memory_model=self.memory_model,
            fingerprint=fingerprint,
            batched=self.vectorized,
        )

    def build(self, blocks: Iterable[BlockObservations]) -> ElasticMapArray:
        """Scan every block once and return the assembled ElasticMap array."""
        return ElasticMapArray([self.build_block(bid, obs) for bid, obs in blocks])

    def build_arrays(self, blocks: Iterable[BlockArrays]) -> ElasticMapArray:
        """Columnar :meth:`build`: ``(block_id, ids, sizes)`` triples."""
        return ElasticMapArray(
            [self.build_block_arrays(bid, ids, sizes) for bid, ids, sizes in blocks]
        )


def build_elasticmap_array(
    blocks: Iterable[BlockObservations],
    *,
    alpha: float = 0.3,
    spec: Optional[BucketSpec] = None,
    memory_model: Optional[MemoryModel] = None,
) -> ElasticMapArray:
    """One-call convenience wrapper around :class:`ElasticMapBuilder`.

    >>> array = build_elasticmap_array([(0, [("movie-1", 4096), ("movie-2", 10)])])
    >>> array.estimate_total_size("movie-1")
    4096
    """
    builder = ElasticMapBuilder(alpha=alpha, spec=spec, memory_model=memory_model)
    return builder.build(blocks)
