"""Count-Min sketch: an alternative tail store for ElasticMap.

The paper's ElasticMap keeps tail sub-datasets in a Bloom filter, which
answers only *existence*; every Bloom-resident sub-dataset is priced at a
single constant ``delta`` in Eq. 6.  A Count-Min sketch costs a little
more memory but returns an (over-)estimate of each tail sub-dataset's
*size*, tightening both the Eq. 6 estimate and the scheduler's weights —
a natural design-space extension the ablation benches quantify against
the paper's original choice.

Guarantees (standard CM bounds): with width ``w = ceil(e / eps)`` and
depth ``d = ceil(ln(1/delta))``, the estimate never undercounts and
overcounts by more than ``eps * total`` with probability ``1 - delta``.
"""

from __future__ import annotations

import hashlib
import math
from typing import Iterable, Sequence, Tuple

import numpy as np

from ..errors import ConfigError

__all__ = ["CountMinSketch"]


class CountMinSketch:
    """Conservative-update Count-Min sketch over string/bytes keys.

    Args:
        epsilon: relative error bound (fraction of the total inserted
            weight).
        delta: failure probability of the error bound.
        seed: salt so per-block sketches collide independently.
    """

    __slots__ = ("width", "depth", "epsilon", "delta", "seed", "_table", "_total")

    def __init__(
        self, epsilon: float = 0.01, delta: float = 0.01, *, seed: int = 0
    ) -> None:
        if not (0.0 < epsilon < 1.0):
            raise ConfigError(f"epsilon must be in (0, 1), got {epsilon}")
        if not (0.0 < delta < 1.0):
            raise ConfigError(f"delta must be in (0, 1), got {delta}")
        self.width = max(2, int(math.ceil(math.e / epsilon)))
        self.depth = max(1, int(math.ceil(math.log(1.0 / delta))))
        self.epsilon = epsilon
        self.delta = delta
        self.seed = seed
        self._table = np.zeros((self.depth, self.width), dtype=np.int64)
        self._total = 0

    # -- hashing ------------------------------------------------------------------

    def _columns(self, key: str | bytes) -> np.ndarray:
        data = key.encode("utf-8") if isinstance(key, str) else key
        digest = hashlib.blake2b(
            data, digest_size=8 * self.depth, salt=self.seed.to_bytes(8, "little")
        ).digest()
        cols = np.frombuffer(digest, dtype="<u8", count=self.depth).copy()
        return (cols % np.uint64(self.width)).astype(np.int64)

    # -- updates -------------------------------------------------------------------

    def add(self, key: str | bytes, amount: int = 1) -> None:
        """Add ``amount`` to ``key``'s count (conservative update).

        Conservative update only raises the rows at the current minimum,
        which tightens over-estimates at no accuracy cost.
        """
        if amount < 0:
            raise ConfigError(f"amount must be non-negative, got {amount}")
        if amount == 0:
            return
        cols = self._columns(key)
        rows = np.arange(self.depth)
        current = self._table[rows, cols]
        target = int(current.min()) + amount
        np.maximum(self._table[rows, cols], target, out=current)
        self._table[rows, cols] = current
        self._total += amount

    def update(self, items: Iterable[Tuple[str | bytes, int]]) -> None:
        """Bulk :meth:`add` (scalar reference loop)."""
        for key, amount in items:
            self.add(key, amount)

    # -- batched operations --------------------------------------------------------

    def _column_matrix(self, keys: Sequence[str | bytes]) -> np.ndarray:
        """Per-key column indices, shape ``(len(keys), depth)``.

        One blake2b digest per key, concatenated into a single buffer and
        reduced mod ``width`` in one array op — exactly the columns
        :meth:`_columns` would yield key by key.
        """
        # clone a pre-salted state per key instead of re-parsing the
        # constructor kwargs — same digests, ~30% less hashing overhead
        base = hashlib.blake2b(
            digest_size=8 * self.depth, salt=self.seed.to_bytes(8, "little")
        )

        def _digest(key: str | bytes) -> bytes:
            h = base.copy()
            h.update(key.encode("utf-8") if isinstance(key, str) else key)
            return h.digest()

        digests = b"".join(_digest(key) for key in keys)
        cols = np.frombuffer(digests, dtype="<u8").reshape(-1, self.depth)
        return (cols % np.uint64(self.width)).astype(np.int64)

    def update_many(
        self,
        keys: Sequence[str | bytes],
        amounts: Sequence[int] | np.ndarray,
    ) -> None:
        """Batched :meth:`add`, bit-identical to the sequential loop.

        Conservative update is order-dependent whenever two keys of the
        batch share a counter cell, so full vectorization is only applied
        when the batch is collision-free per row (the common case for
        distinct sub-dataset ids against a well-sized sketch); otherwise
        the precomputed column matrix still amortizes all hashing and the
        cell updates replay sequentially.
        """
        keys = list(keys)
        amount_arr = np.asarray(amounts, dtype=np.int64)
        if amount_arr.shape != (len(keys),):
            raise ConfigError(
                f"amounts length {amount_arr.size} != keys length {len(keys)}"
            )
        if len(keys) == 0:
            return
        if amount_arr.size and int(amount_arr.min()) < 0:
            bad = int(amount_arr[amount_arr < 0][0])
            raise ConfigError(f"amount must be non-negative, got {bad}")
        live = amount_arr > 0
        if not live.any():
            return
        cols = self._column_matrix(keys)[live]
        amts = amount_arr[live]
        collision_free = all(
            np.unique(cols[:, r]).size == cols.shape[0] for r in range(self.depth)
        )
        rows = np.arange(self.depth)
        if collision_free:
            current = self._table[rows[None, :], cols]
            targets = current.min(axis=1) + amts
            np.maximum(current, targets[:, None], out=current)
            self._table[rows[None, :], cols] = current
        else:
            for i in range(cols.shape[0]):
                c = cols[i]
                current = self._table[rows, c]
                target = int(current.min()) + int(amts[i])
                np.maximum(current, target, out=current)
                self._table[rows, c] = current
        self._total += int(amts.sum())

    # -- queries -------------------------------------------------------------------

    def estimate(self, key: str | bytes) -> int:
        """Estimated count for ``key`` — never below the true count."""
        cols = self._columns(key)
        rows = np.arange(self.depth)
        return int(self._table[rows, cols].min())

    def estimate_many(self, keys: Sequence[str | bytes]) -> np.ndarray:
        """Batched :meth:`estimate`; int64 array aligned with ``keys``."""
        keys = list(keys)
        if not keys:
            return np.zeros(0, dtype=np.int64)
        cols = self._column_matrix(keys)
        rows = np.arange(self.depth)
        return self._table[rows[None, :], cols].min(axis=1)

    def __contains__(self, key: str | bytes) -> bool:
        return self.estimate(key) > 0

    @property
    def total(self) -> int:
        """Total weight inserted (exact)."""
        return self._total

    def error_bound(self) -> float:
        """Additive error ceiling ``epsilon * total`` (w.p. ``1 - delta``)."""
        return self.epsilon * self._total

    # -- accounting ----------------------------------------------------------------

    @property
    def memory_bits(self) -> int:
        """Bits held by the counter table."""
        return int(self._table.nbytes) * 8

    @property
    def memory_bytes(self) -> int:
        return int(self._table.nbytes)

    # -- serialization -------------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize geometry + counters."""
        header = (
            self.width.to_bytes(4, "little")
            + self.depth.to_bytes(2, "little")
            + int(self.epsilon * 1e9).to_bytes(8, "little")
            + int(self.delta * 1e9).to_bytes(8, "little")
            + self.seed.to_bytes(8, "little", signed=True)
            + self._total.to_bytes(8, "little")
        )
        return header + self._table.tobytes()

    @classmethod
    def from_bytes(cls, blob: bytes) -> "CountMinSketch":
        """Inverse of :meth:`to_bytes`."""
        if len(blob) < 38:
            raise ConfigError("count-min blob too short")
        out = object.__new__(cls)
        out.width = int.from_bytes(blob[0:4], "little")
        out.depth = int.from_bytes(blob[4:6], "little")
        out.epsilon = int.from_bytes(blob[6:14], "little") / 1e9
        out.delta = int.from_bytes(blob[14:22], "little") / 1e9
        out.seed = int.from_bytes(blob[22:30], "little", signed=True)
        out._total = int.from_bytes(blob[30:38], "little")
        try:
            table = np.frombuffer(blob[38:], dtype=np.int64)
        except ValueError as exc:
            raise ConfigError(f"count-min blob truncated: {exc}") from exc
        if table.size != out.width * out.depth:
            raise ConfigError("count-min blob table size mismatch")
        out._table = table.reshape(out.depth, out.width).copy()
        return out
