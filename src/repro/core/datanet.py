"""The DataNet facade: metadata construction + distribution-aware scheduling.

This is the top of the paper's stack.  A :class:`DataNet` instance owns the
:class:`~repro.core.elasticmap.ElasticMapArray` for one stored dataset plus
the dataset's block placement, and answers the questions the paper's
workflow needs:

1. *Where is sub-dataset s?*  (:meth:`distribution`,
   :meth:`blocks_containing`)
2. *How big is it?*  (:meth:`estimate_total_size`, Eq. 6)
3. *How should its analysis tasks be scheduled?*  (:meth:`schedule`,
   Algorithm 1 greedy, or the Ford-Fulkerson optimal variant)

``DataNet.build`` is storage-agnostic: any object exposing
``scan_blocks() -> iterable[(block_id, [(sid, nbytes), ...])]``,
``placement() -> {block_id: [node, ...]}`` and ``nodes`` (a sequence of
cluster node ids) can be indexed — :class:`repro.hdfs.cluster.DatasetView`
is the in-repo provider.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Protocol, Sequence, Tuple

from ..errors import ConfigError, SchedulingError
from ..obs import NULL_OBS, Observability
from ..obs.profiler import profile_block
from .bipartite import BipartiteGraph
from .bucketizer import BucketSpec
from .builder import ElasticMapBuilder
from .elasticmap import ElasticMapArray, MemoryModel, QueryKind
from .flow import optimal_assignment
from .scheduler import Assignment, DistributionAwareScheduler

__all__ = ["DataNet", "ScannableDataset", "IntegrityValidation"]

NodeId = Hashable


@dataclass
class IntegrityValidation:
    """Outcome of :meth:`DataNet.validate_integrity`.

    ``stale`` lists entries whose fingerprint disagreed with the stored
    block; ``unverified`` lists entries that carried no fingerprint at all
    (legacy metadata — treated as stale, since freshness cannot be
    proven).  Both sets were quarantined and rebuilt.
    """

    checked: int = 0
    verified: int = 0
    stale: List[int] = field(default_factory=list)
    unverified: List[int] = field(default_factory=list)
    rebuilt: List[int] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """Whether every entry verified without a rebuild."""
        return not self.stale and not self.unverified


class ScannableDataset(Protocol):
    """Structural interface DataNet indexes against (see module docstring)."""

    def scan_blocks(self) -> Iterable[Tuple[int, Iterable[Tuple[str, int]]]]:
        """Yield ``(block_id, [(sub_dataset_id, nbytes), ...])`` per block."""
        ...

    def placement(self) -> Mapping[int, Sequence[NodeId]]:
        """Block id → replica-holding cluster nodes."""
        ...

    @property
    def nodes(self) -> Sequence[NodeId]:
        """All cluster nodes (including ones holding no replica)."""
        ...

    # Optionally a dataset may also expose ``fragments_needed() ->
    # {block_id: k}`` (erasure-coded datasets do): the bipartite graph then
    # treats a block as reachable only while >= k of its holders are, so
    # fragments — not whole replicas — become the schedulable unit.


class DataNet:
    """Sub-dataset distribution metadata + scheduling for one dataset.

    Construct with :meth:`build` (runs the single scan) or directly from a
    pre-built :class:`ElasticMapArray` plus placement information.
    """

    def __init__(
        self,
        elasticmap: ElasticMapArray,
        placement: Mapping[int, Sequence[NodeId]],
        *,
        nodes: Optional[Sequence[NodeId]] = None,
        needed: Optional[Mapping[int, int]] = None,
        obs: Observability = NULL_OBS,
    ) -> None:
        self.obs = obs
        missing = set(elasticmap.block_ids) - set(placement)
        if missing:
            raise ConfigError(
                f"placement missing for blocks: {sorted(missing)[:5]}"
            )
        self.elasticmap = elasticmap
        self._placement: Dict[int, List[NodeId]] = {
            b: list(ns) for b, ns in placement.items()
        }
        # block → holders a read must reach (k for erasure-coded blocks;
        # absent means 1, i.e. any single replica suffices)
        self._needed: Dict[int, int] = dict(needed) if needed is not None else {}
        if nodes is not None:
            self._nodes: List[NodeId] = list(nodes)
        else:
            seen: set = set()
            for ns in self._placement.values():
                seen.update(ns)
            self._nodes = sorted(seen, key=repr)
        # per-sub-dataset caches over the (expensive) full-array scans:
        # distribution/weights, and the skip_absent base bipartite graph.
        # Keyed to the ElasticMapArray's version so any membership change
        # (extend, integrity rebuild, chaos tampering) drops them.
        self._dist_cache: Dict[str, Dict[int, Tuple[int, QueryKind]]] = {}
        self._weights_cache: Dict[str, Dict[int, int]] = {}
        self._graph_cache: Dict[str, BipartiteGraph] = {}
        self._cache_version = self.elasticmap.version

    # -- caching -----------------------------------------------------------------

    def _sync_caches(self) -> None:
        if self.elasticmap.version != self._cache_version:
            self._dist_cache.clear()
            self._weights_cache.clear()
            self._graph_cache.clear()
            self._cache_version = self.elasticmap.version

    def _cached_distribution(self, sub_dataset_id: str) -> Dict[int, Tuple[int, QueryKind]]:
        """Memoized ``elasticmap.distribution`` — callers must not mutate."""
        self._sync_caches()
        dist = self._dist_cache.get(sub_dataset_id)
        if dist is None:
            dist = self.elasticmap.distribution(sub_dataset_id)
            self._dist_cache[sub_dataset_id] = dist
        return dist

    def _cached_weights(self, sub_dataset_id: str) -> Dict[int, int]:
        """Memoized ``elasticmap.block_weights`` — callers must not mutate."""
        self._sync_caches()
        weights = self._weights_cache.get(sub_dataset_id)
        if weights is None:
            weights = {
                bid: size
                for bid, (size, _k) in self._cached_distribution(sub_dataset_id).items()
            }
            self._weights_cache[sub_dataset_id] = weights
        return weights

    # -- construction ------------------------------------------------------------

    @classmethod
    def build(
        cls,
        dataset: ScannableDataset,
        *,
        alpha: Optional[float] = 0.3,
        budget_bits_per_block: Optional[float] = None,
        spec: Optional[BucketSpec] = None,
        memory_model: Optional[MemoryModel] = None,
        obs: Observability = NULL_OBS,
    ) -> "DataNet":
        """Single-scan metadata construction over a stored dataset.

        The scan is the paper's O(records) pass: every block is read once,
        its dominant sub-datasets go to the hash map, the tail to a Bloom
        filter.  See :class:`~repro.core.builder.ElasticMapBuilder` for the
        ``alpha`` vs ``budget_bits_per_block`` sizing modes.
        """
        builder = ElasticMapBuilder(
            alpha=alpha,
            budget_bits_per_block=budget_bits_per_block,
            spec=spec,
            memory_model=memory_model,
        )
        fingerprint_of = getattr(dataset, "block_fingerprint", None)
        needed_of = getattr(dataset, "fragments_needed", None)
        with profile_block(obs, "datanet.build"):
            array = ElasticMapArray(
                [
                    builder.build_block(
                        bid,
                        observations,
                        fingerprint=(
                            fingerprint_of(bid) if fingerprint_of is not None else None
                        ),
                    )
                    for bid, observations in dataset.scan_blocks()
                ]
            )
            dn = cls(
                array,
                dataset.placement(),
                nodes=list(dataset.nodes),
                needed=needed_of() if needed_of is not None else None,
                obs=obs,
            )
        dn.build_stats = builder.stats  # type: ignore[attr-defined]
        dn._builder_config = dict(
            alpha=alpha,
            budget_bits_per_block=budget_bits_per_block,
            spec=spec,
            memory_model=memory_model,
        )
        if obs.metrics.enabled:
            obs.metrics.counter(
                "elasticmap_blocks_built_total",
                help="blocks indexed by metadata construction",
            ).inc(len(array))
            obs.metrics.gauge(
                "elasticmap_memory_bytes", help="metadata footprint in bytes"
            ).set(array.memory_bytes())
        return dn

    def extend(self, dataset: ScannableDataset) -> int:
        """Incrementally index blocks appended since the last build/extend.

        Models the paper's motivating pipeline — Flume-style continuous log
        collection into HDFS — without rescanning old blocks: only block
        ids absent from the metadata are scanned (each exactly once), and
        the placement map picks up their replica locations.

        Returns the number of newly indexed blocks.  Only available on
        instances created via :meth:`build` (the builder configuration is
        needed to index new blocks consistently).
        """
        config = getattr(self, "_builder_config", None)
        if config is None:
            raise ConfigError(
                "extend() requires a DataNet created by DataNet.build()"
            )
        covered = set(self.elasticmap.block_ids)
        placement = dataset.placement()
        builder = ElasticMapBuilder(**config)
        fingerprint_of = getattr(dataset, "block_fingerprint", None)
        needed_of = getattr(dataset, "fragments_needed", None)
        needed = needed_of() if needed_of is not None else {}
        added = 0
        for block_id, observations in dataset.scan_blocks():
            if block_id in covered:
                continue
            block_map = builder.build_block(
                block_id,
                observations,
                fingerprint=(
                    fingerprint_of(block_id) if fingerprint_of is not None else None
                ),
            )
            self.elasticmap.add_block(block_map)
            self._placement[block_id] = list(placement[block_id])
            if block_id in needed:
                self._needed[block_id] = needed[block_id]
            added += 1
        for node in dataset.nodes:
            if node not in self._nodes:
                self._nodes.append(node)
        if self.obs.metrics.enabled:
            self.obs.metrics.counter(
                "elasticmap_blocks_extended_total",
                help="blocks indexed incrementally after the initial build",
            ).inc(added)
        return added

    # -- integrity ------------------------------------------------------------------

    def validate_integrity(self, dataset: ScannableDataset) -> IntegrityValidation:
        """Fingerprint-check every metadata entry; quarantine + rebuild stale ones.

        Runs before scheduling trusts the metadata (the bipartite graph is
        only as good as the Eq. 5 entries behind it).  Each entry's stored
        fingerprint is compared against the current content fingerprint of
        the block it claims to describe; a mismatch — or a missing
        fingerprint, which cannot prove freshness — evicts the entry and
        triggers a *single-block* single-scan rebuild through the original
        builder configuration.  Only stale blocks are rescanned; the rest
        of the array is untouched, so validation cost is proportional to
        damage, not dataset size.

        Requires a dataset exposing ``block_fingerprint`` and an instance
        created via :meth:`build` (the builder configuration drives the
        rebuild).

        Raises:
            ConfigError: when the instance has no builder configuration or
                the dataset cannot produce fingerprints.
        """
        config = getattr(self, "_builder_config", None)
        if config is None:
            raise ConfigError(
                "validate_integrity() requires a DataNet created by DataNet.build()"
            )
        fingerprint_of = getattr(dataset, "block_fingerprint", None)
        if fingerprint_of is None:
            raise ConfigError(
                "dataset does not expose block_fingerprint(); cannot validate"
            )
        with self.obs.tracer.span("datanet/validate", category="validate"):
            report = self._validate_integrity_inner(dataset, config, fingerprint_of)
        if self.obs.metrics.enabled:
            m = self.obs.metrics
            m.counter(
                "metadata_entries_checked_total",
                help="metadata entries fingerprint-checked",
            ).inc(report.checked)
            m.counter(
                "metadata_stale_total",
                help="metadata entries quarantined as stale or unverified",
            ).inc(len(report.stale) + len(report.unverified))
            m.counter(
                "metadata_rebuilt_total", help="metadata entries rebuilt in place"
            ).inc(len(report.rebuilt))
        return report

    def _validate_integrity_inner(
        self, dataset: ScannableDataset, config: Dict[str, object], fingerprint_of
    ) -> IntegrityValidation:
        report = IntegrityValidation()
        expected: Dict[int, int] = {}
        for entry in self.elasticmap:
            report.checked += 1
            truth = fingerprint_of(entry.block_id)
            if entry.fingerprint is None:
                report.unverified.append(entry.block_id)
                expected[entry.block_id] = truth
            elif entry.fingerprint != truth:
                report.stale.append(entry.block_id)
                expected[entry.block_id] = truth
            else:
                report.verified += 1
        if not expected:
            return report
        for block_id in expected:
            self.elasticmap.remove_block(block_id)
        builder = ElasticMapBuilder(**config)
        for block_id, observations in dataset.scan_blocks():
            if block_id not in expected:
                continue  # lazy per-block streams: skipping costs no scan
            self.elasticmap.add_block(
                builder.build_block(
                    block_id, observations, fingerprint=expected[block_id]
                )
            )
            report.rebuilt.append(block_id)
        still_missing = set(expected) - set(report.rebuilt)
        if still_missing:
            raise ConfigError(
                f"quarantined blocks missing from the dataset scan: "
                f"{sorted(still_missing)[:5]}"
            )
        return report

    # -- metadata queries -----------------------------------------------------------

    @property
    def nodes(self) -> List[NodeId]:
        """Cluster nodes known to this DataNet instance."""
        return list(self._nodes)

    @property
    def num_blocks(self) -> int:
        """Number of blocks covered by the metadata."""
        return len(self.elasticmap)

    def distribution(self, sub_dataset_id: str) -> Dict[int, Tuple[int, QueryKind]]:
        """Per-block ``(bytes, kind)`` of the sub-dataset (absent blocks omitted)."""
        return dict(self._cached_distribution(sub_dataset_id))

    def blocks_containing(self, sub_dataset_id: str) -> List[int]:
        """Blocks that may hold the sub-dataset — the task list for its analysis."""
        return sorted(self._cached_distribution(sub_dataset_id))

    def estimate_total_size(self, sub_dataset_id: str) -> int:
        """Eq. 6 estimate of the sub-dataset's total bytes across all blocks."""
        return self.elasticmap.estimate_total_size(sub_dataset_id)

    # -- scheduling -------------------------------------------------------------------

    def refresh_placement(self, placement: Mapping[int, Sequence[NodeId]]) -> int:
        """Resync replica locations after cluster churn.

        Re-replication moves replicas without touching sub-dataset
        contents, so the ElasticMap stays valid — only the block → node
        edges go stale.  Feeding the NameNode's current placement back in
        keeps the bipartite graph truthful mid-job.  Blocks unknown to the
        metadata are ignored (they are :meth:`extend`'s job); returns the
        number of blocks whose replica set changed.

        Cached per-sub-dataset bipartite graphs are patched *incrementally*
        — only the edges of blocks whose replica set actually moved — so
        churn costs O(changed edges), not a full O(nodes · blocks) rebuild.
        """
        self._sync_caches()
        changed = 0
        added_nodes: List[NodeId] = []
        for bid, nodes in placement.items():
            if bid not in self._placement:
                continue
            fresh = list(nodes)
            if fresh != self._placement[bid]:
                self._placement[bid] = fresh
                changed += 1
                for sid in list(self._graph_cache):
                    try:
                        self._graph_cache[sid].set_block_nodes(bid, fresh)
                    except SchedulingError:
                        pass  # block irrelevant to this sub-dataset's graph
                    except ConfigError:
                        # new holder set violates the decode floor; drop the
                        # cache so the next rebuild raises exactly as the
                        # uncached path always did
                        del self._graph_cache[sid]
            for node in fresh:
                if node not in self._nodes:
                    self._nodes.append(node)
                    added_nodes.append(node)
        if added_nodes:
            for graph in self._graph_cache.values():
                for node in added_nodes:
                    graph.add_node(node)
        return changed

    def bipartite_graph(
        self,
        sub_dataset_id: str,
        *,
        skip_absent: bool = True,
        exclude: Sequence[NodeId] = (),
        only_blocks: Optional[Iterable[int]] = None,
    ) -> BipartiteGraph:
        """Section IV-A graph for the sub-dataset.

        With ``skip_absent`` (default) only blocks with a hash-map or Bloom
        hit become tasks — the paper's I/O saving: "we don't need to
        process blocks that don't contain our target data".  Disable it to
        schedule every block (weights 0 for absent ones).

        ``exclude`` drops nodes (dead or blacklisted) from both the node
        universe and every replica list — the mid-job recovery rebuild.
        ``only_blocks`` restricts the graph to the given block ids (all of
        them, weight 0 when the metadata reports absence), which is how
        lost work is rescheduled without re-planning completed tasks.

        Raises:
            ConfigError: when an excluded-node filter leaves a block with
                no replica holder, or ``only_blocks`` names unknown blocks.
        """
        with self.obs.tracer.span(
            f"elasticmap/lookup/{sub_dataset_id}", category="lookup"
        ):
            weights = self._cached_weights(sub_dataset_id)
        if self.obs.metrics.enabled:
            dist = self._cached_distribution(sub_dataset_id)
            exact = sum(1 for _size, kind in dist.values() if kind == "exact")
            self.obs.metrics.counter(
                "metadata_exact_hits_total",
                help="distribution lookups answered by the hash map",
            ).inc(exact)
            self.obs.metrics.counter(
                "metadata_bloom_hits_total",
                help="distribution lookups answered by the Bloom filter",
            ).inc(len(dist) - exact)
        if only_blocks is None and skip_absent:
            # the common scheduling path: serve a copy of the cached base
            # graph, applying exclusions as incremental node removals
            graph = self._base_graph(sub_dataset_id).copy()
            if exclude:
                stranded: List[int] = []
                for node in set(exclude):
                    try:
                        stranded.extend(graph.remove_node(node))
                    except SchedulingError:
                        pass  # barred node not in this graph's universe
                if stranded:
                    b = stranded[0]
                    raise ConfigError(
                        f"block {b} has fewer than {self._needed.get(b, 1)} "
                        f"holders outside the excluded nodes"
                    )
            return graph
        if only_blocks is not None:
            wanted = list(only_blocks)
            unknown = [b for b in wanted if b not in self._placement]
            if unknown:
                raise ConfigError(f"unknown blocks requested: {unknown[:5]}")
            placement = {b: self._placement[b] for b in wanted}
            weights = {b: weights.get(b, 0) for b in placement}
        else:
            placement = self._placement
            weights = {b: weights.get(b, 0) for b in placement}
        nodes = self._nodes
        if exclude:
            barred = set(exclude)
            filtered: Dict[int, List[NodeId]] = {}
            for b, ns in placement.items():
                live = [n for n in ns if n not in barred]
                if len(live) < self._needed.get(b, 1):
                    raise ConfigError(
                        f"block {b} has fewer than {self._needed.get(b, 1)} "
                        f"holders outside the excluded nodes"
                    )
                filtered[b] = live
            placement = filtered
            nodes = [n for n in nodes if n not in barred]
        return BipartiteGraph(
            placement,
            weights,
            nodes=nodes,
            needed={b: self._needed[b] for b in placement if b in self._needed},
        )

    def _base_graph(self, sub_dataset_id: str) -> BipartiteGraph:
        """The cached skip-absent bipartite graph for one sub-dataset.

        Built once per (sub-dataset, metadata version); placement churn is
        applied to it incrementally by :meth:`refresh_placement`.  Callers
        get copies — schedulers mutate their graph destructively.
        """
        self._sync_caches()
        graph = self._graph_cache.get(sub_dataset_id)
        if graph is None:
            weights = self._cached_weights(sub_dataset_id)
            placement = {b: self._placement[b] for b in weights}
            graph = BipartiteGraph(
                placement,
                weights,
                nodes=self._nodes,
                needed={b: self._needed[b] for b in placement if b in self._needed},
            )
            self._graph_cache[sub_dataset_id] = graph
        return graph

    def schedule(
        self,
        sub_dataset_id: str,
        *,
        method: str = "greedy",
        capacities: Optional[Mapping[NodeId, float]] = None,
        skip_absent: bool = True,
    ) -> Assignment:
        """Distribution-aware task assignment for one sub-dataset's analysis.

        Args:
            method: ``"greedy"`` runs Algorithm 1; ``"optimal"`` runs the
                Ford-Fulkerson-based assignment (homogeneous clusters only).
            capacities: per-node relative compute capability (greedy only).
            skip_absent: see :meth:`bipartite_graph`.

        Raises:
            ConfigError: unknown method, or capacities with ``"optimal"``.
        """
        graph = self.bipartite_graph(sub_dataset_id, skip_absent=skip_absent)
        with self.obs.tracer.span(
            f"schedule/{method}",
            category="schedule",
            sub_dataset=sub_dataset_id,
            blocks=graph.num_blocks,
        ):
            if method == "greedy":
                assignment = DistributionAwareScheduler(capacities).schedule(graph)
            elif method == "optimal":
                if capacities is not None:
                    raise ConfigError(
                        "optimal (max-flow) scheduling assumes a homogeneous cluster"
                    )
                assignment = optimal_assignment(graph)
            else:
                raise ConfigError(f"unknown scheduling method: {method!r}")
        if self.obs.metrics.enabled:
            m = self.obs.metrics
            placed = m.counter(
                "scheduler_assignments_total",
                help="block-task assignments by locality",
                labelnames=("scheduler", "locality"),
            )
            placed.inc(assignment.local_assignments, scheduler=method, locality="local")
            placed.inc(
                assignment.remote_assignments, scheduler=method, locality="remote"
            )
            m.gauge(
                "schedule_imbalance",
                help="max/mean workload ratio of the latest schedule",
                labelnames=("scheduler",),
            ).set(assignment.imbalance, scheduler=method)
        return assignment

    def gray_schedule(
        self,
        sub_dataset_id: str,
        *,
        health: Optional[Mapping[NodeId, float]] = None,
        unreachable: Sequence[NodeId] = (),
        only_blocks: Optional[Iterable[int]] = None,
        min_capacity: float = 0.05,
    ) -> Tuple[Assignment, List[int]]:
        """Health- and partition-aware Algorithm 1 assignment.

        The distribution-aware greedy scheduler runs over the bipartite
        graph restricted to nodes *outside* any active partition cut, with
        per-node capacity set to the φ-accrual detector's health score
        (clamped up to ``min_capacity`` so a deeply suspected node still
        gets a sliver rather than dividing by zero).  Blocks whose every
        replica is behind the cut are returned as *stranded* — the caller
        defers them until the partition heals instead of failing the job.

        Returns ``(assignment, stranded_block_ids)``.
        """
        graph = self.bipartite_graph(sub_dataset_id, only_blocks=only_blocks)
        stranded: List[int] = []
        if unreachable:
            cut = set(unreachable)
            graph, stranded = graph.restrict(
                [n for n in graph.nodes if n not in cut]
            )
        capacities: Optional[Dict[NodeId, float]] = None
        if health:
            capacities = {
                n: max(min_capacity, float(health.get(n, 1.0)))
                for n in graph.nodes
            }
        with self.obs.tracer.span(
            "schedule/gray",
            category="schedule",
            sub_dataset=sub_dataset_id,
            blocks=graph.num_blocks,
            stranded=len(stranded),
        ):
            assignment = DistributionAwareScheduler(capacities).schedule(graph)
        if self.obs.metrics.enabled:
            m = self.obs.metrics
            m.counter(
                "gray_stranded_blocks_total",
                help="blocks deferred because no replica was reachable",
            ).inc(len(stranded))
            m.gauge(
                "schedule_imbalance",
                help="max/mean workload ratio of the latest schedule",
                labelnames=("scheduler",),
            ).set(assignment.imbalance, scheduler="gray")
        return assignment, stranded

    def combined_graph(
        self, sub_dataset_ids: Iterable[str], *, skip_absent: bool = True
    ) -> BipartiteGraph:
        """A bipartite graph weighted by the *union* of several sub-datasets.

        For analyses over a family of sub-datasets (e.g. all movies in one
        genre, Eq. 1's ``S(e)`` for a compound event), the per-block weight
        is the summed ``|b ∩ s_i|``; balancing that sum balances the whole
        family's processing.
        """
        ids = list(sub_dataset_ids)
        if not ids:
            raise ConfigError("need at least one sub-dataset id")
        weights: Dict[int, int] = {}
        for sid in ids:
            for bid, w in self._cached_weights(sid).items():
                weights[bid] = weights.get(bid, 0) + w
        if skip_absent:
            placement = {b: self._placement[b] for b in weights}
        else:
            placement = self._placement
            weights = {b: weights.get(b, 0) for b in placement}
        return BipartiteGraph(
            placement,
            weights,
            nodes=self._nodes,
            needed={b: self._needed[b] for b in placement if b in self._needed},
        )

    def schedule_many(
        self,
        sub_dataset_ids: Iterable[str],
        *,
        method: str = "greedy",
        capacities: Optional[Mapping[NodeId, float]] = None,
        skip_absent: bool = True,
    ) -> Assignment:
        """Jointly balanced assignment for a family of sub-datasets.

        Same methods as :meth:`schedule`, over :meth:`combined_graph`.
        """
        graph = self.combined_graph(sub_dataset_ids, skip_absent=skip_absent)
        if method == "greedy":
            return DistributionAwareScheduler(capacities).schedule(graph)
        if method == "optimal":
            if capacities is not None:
                raise ConfigError(
                    "optimal (max-flow) scheduling assumes a homogeneous cluster"
                )
            return optimal_assignment(graph)
        raise ConfigError(f"unknown scheduling method: {method!r}")

    # -- persistence ------------------------------------------------------------------

    #: file magic for the on-disk metadata format
    _MAGIC = b"DATANET1"

    def save(self, path: str) -> int:
        """Persist metadata + placement to a file; returns bytes written.

        The format is self-contained: a JSON header (placement, node list,
        per-block blob lengths) followed by each block's serialized
        ElasticMap.  ``load`` restores a fully functional instance — the
        raw dataset is *not* needed to answer distribution queries or to
        schedule (that is the point of the metadata).
        """
        import json

        blobs = [b.to_bytes() for b in self.elasticmap]
        header = json.dumps(
            {
                "placement": {str(k): list(v) for k, v in self._placement.items()},
                "nodes": list(self._nodes),
                "blob_lengths": [len(b) for b in blobs],
            },
            separators=(",", ":"),
        ).encode("utf-8")
        payload = (
            self._MAGIC
            + len(header).to_bytes(8, "little")
            + header
            + b"".join(blobs)
        )
        with open(path, "wb") as fh:
            fh.write(payload)
        return len(payload)

    @classmethod
    def load(cls, path: str) -> "DataNet":
        """Restore a :meth:`save`-d instance.

        Raises:
            ConfigError: for a missing/corrupt file.
        """
        import json

        from .elasticmap import BlockElasticMap

        with open(path, "rb") as fh:
            payload = fh.read()
        if not payload.startswith(cls._MAGIC):
            raise ConfigError(f"{path!r} is not a DataNet metadata file")
        offset = len(cls._MAGIC)
        header_len = int.from_bytes(payload[offset : offset + 8], "little")
        offset += 8
        try:
            header = json.loads(payload[offset : offset + header_len])
        except ValueError as exc:
            raise ConfigError(f"corrupt DataNet header: {exc}") from exc
        offset += header_len
        blocks = []
        for length in header["blob_lengths"]:
            blob = payload[offset : offset + length]
            if len(blob) != length:
                raise ConfigError("truncated DataNet metadata file")
            blocks.append(BlockElasticMap.from_bytes(blob))
            offset += length
        placement = {int(k): v for k, v in header["placement"].items()}
        return cls(ElasticMapArray(blocks), placement, nodes=header["nodes"])

    # -- accounting -----------------------------------------------------------------------

    def memory_bytes(self) -> float:
        """Total metadata footprint in bytes."""
        return self.elasticmap.memory_bytes()

    def representation_ratio(self, raw_bytes: int) -> float:
        """Raw bytes represented per metadata byte (Table II)."""
        return self.elasticmap.representation_ratio(raw_bytes)

    def accuracy(self, sub_dataset_ids: Iterable[str], raw_bytes: int) -> float:
        """Overall Eq. 6 accuracy ``chi`` against the known raw size (Table II)."""
        return self.elasticmap.accuracy(sub_dataset_ids, raw_bytes)
