"""ElasticMap: the paper's compact sub-dataset distribution store (Section III).

One :class:`BlockElasticMap` per HDFS block records, for that block:

* a **hash map** with the *exact* byte size of each dominant sub-dataset,
* a **Bloom filter** holding only the *ids* of the non-dominant tail.

An :class:`ElasticMapArray` is the per-dataset array of these (Figure 3 of
the paper): index it by block to answer "how much of sub-dataset *s* does
block *b* hold?" — exactly for dominant sub-datasets, approximately (a
small constant ``delta``) for tail sub-datasets, and (almost always) zero
for absent ones.

The memory model of Eq. 5 and the size estimator of Eq. 6 live here too,
as :class:`MemoryModel` and :meth:`ElasticMapArray.estimate_total_size`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Literal, Mapping, Optional, Sequence, Tuple

from ..errors import ConfigError, MetadataError
from .bloom import BloomFilter, bits_per_element
from .bucketizer import SeparationResult

__all__ = ["MemoryModel", "BlockElasticMap", "ElasticMapArray", "QueryKind"]

#: How a per-block size query was answered.
QueryKind = Literal["exact", "approx", "absent"]


@dataclass(frozen=True)
class MemoryModel:
    """Parameters of the paper's Eq. 5 memory-cost model.

    Attributes:
        hashmap_bits_per_entry: ``k`` — bits for one hash-map record (id +
            size + table overhead).  The paper's example uses 85 bits.
        load_factor: ``delta`` in Eq. 5 — how full the hash table is allowed
            to get (entries are charged ``k / load_factor`` bits).
        bloom_error_rate: ``eps`` — target false-positive rate of the Bloom
            filter (the paper's example ~10 bits/element corresponds to
            eps ≈ 1 %).
    """

    hashmap_bits_per_entry: int = 85
    load_factor: float = 0.75
    bloom_error_rate: float = 0.01

    def __post_init__(self) -> None:
        if self.hashmap_bits_per_entry <= 0:
            raise ConfigError("hashmap_bits_per_entry must be positive")
        if not (0.0 < self.load_factor <= 1.0):
            raise ConfigError("load_factor must be in (0, 1]")
        if not (0.0 < self.bloom_error_rate < 1.0):
            raise ConfigError("bloom_error_rate must be in (0, 1)")

    def cost_bits(self, num_subdatasets: int, alpha: float) -> float:
        """Eq. 5: modeled ElasticMap bits for one block.

        ``m*(1-alpha)`` tail entries cost ``-ln(eps)/ln(2)^2`` bits each in
        the Bloom filter; ``m*alpha`` dominant entries cost
        ``k / load_factor`` bits each in the hash map.
        """
        if num_subdatasets < 0:
            raise ConfigError("num_subdatasets must be non-negative")
        if not (0.0 <= alpha <= 1.0):
            raise ConfigError(f"alpha must be in [0, 1], got {alpha}")
        m = num_subdatasets
        bloom_bits = m * (1.0 - alpha) * bits_per_element(self.bloom_error_rate)
        hash_bits = m * alpha * self.hashmap_bits_per_entry / self.load_factor
        return bloom_bits + hash_bits

    def max_hashmap_entries(self, budget_bits: float, num_subdatasets: int) -> int:
        """Largest dominant-entry count whose Eq. 5 cost fits ``budget_bits``.

        Inverts :meth:`cost_bits` for a block with ``num_subdatasets``
        sub-datasets, assuming every non-dominant entry still pays its Bloom
        cost.  Returns a value clamped to ``[0, num_subdatasets]``.
        """
        if budget_bits < 0:
            raise ConfigError("budget_bits must be non-negative")
        per_bloom = bits_per_element(self.bloom_error_rate)
        per_hash = self.hashmap_bits_per_entry / self.load_factor
        base = num_subdatasets * per_bloom
        if per_hash <= per_bloom:  # pathological: hash map is cheaper, admit all
            return num_subdatasets
        extra = (budget_bits - base) / (per_hash - per_bloom)
        return max(0, min(num_subdatasets, int(extra)))


class BlockElasticMap:
    """Per-block metadata: exact sizes for dominant sub-datasets, Bloom tail.

    Build one from a :class:`~repro.core.bucketizer.SeparationResult` via
    :meth:`from_separation`, or supply the parts directly.

    Args:
        block_id: index of the block this metadata describes.
        hash_map: dominant sub-dataset id → exact byte size.
        bloom: Bloom filter containing the tail sub-dataset ids.
        delta: approximate byte size attributed to any sub-dataset found
            only in the Bloom filter (the paper uses the smallest hash-map
            value).
        memory_model: Eq. 5 parameters used for cost accounting.
        fingerprint: content fingerprint of the block this entry describes
            (:attr:`repro.hdfs.block.Block.fingerprint`).  ``None`` means
            unverifiable legacy metadata; DataNet's integrity validation
            treats it the same as a mismatch and rebuilds the entry.
    """

    __slots__ = (
        "block_id",
        "hash_map",
        "bloom",
        "delta",
        "memory_model",
        "fingerprint",
        "_blob_cache",
    )

    #: Upper bound (exclusive) on a fingerprint: it must fit the 8-byte
    #: trailer of the serialized form.
    FINGERPRINT_LIMIT = 1 << 64

    #: Fallback ``delta`` when a block has an empty hash map (bytes).
    DEFAULT_DELTA = 512

    #: Whether ``query`` returns a per-sub-dataset size for tail ("approx")
    #: hits.  The Bloom-backed store cannot (all hits price at delta);
    #: the Count-Min variant (:mod:`repro.core.sketchmap`) can.
    reports_tail_sizes = False

    def __init__(
        self,
        block_id: int,
        hash_map: Mapping[str, int],
        bloom: BloomFilter,
        *,
        delta: Optional[int] = None,
        memory_model: Optional[MemoryModel] = None,
        fingerprint: Optional[int] = None,
    ) -> None:
        if block_id < 0:
            raise ConfigError(f"block_id must be non-negative, got {block_id}")
        self.block_id = block_id
        self.hash_map: Dict[str, int] = dict(hash_map)
        self.bloom = bloom
        if delta is None:
            delta = min(self.hash_map.values()) if self.hash_map else self.DEFAULT_DELTA
        if delta <= 0:
            raise ConfigError(f"delta must be positive, got {delta}")
        self.delta = int(delta)
        self.memory_model = memory_model or MemoryModel()
        if fingerprint is not None and not (
            0 <= fingerprint < self.FINGERPRINT_LIMIT
        ):
            raise ConfigError(
                f"fingerprint must fit in 64 bits, got {fingerprint}"
            )
        self.fingerprint = fingerprint
        self._blob_cache: Optional[bytes] = None

    @classmethod
    def from_separation(
        cls,
        block_id: int,
        result: SeparationResult,
        *,
        memory_model: Optional[MemoryModel] = None,
        bloom_seed: Optional[int] = None,
        fingerprint: Optional[int] = None,
        batched: bool = True,
    ) -> "BlockElasticMap":
        """Construct from a dominant/tail separation of one block's contents.

        The Bloom filter is sized for the tail population at the memory
        model's error rate, salted per block so false positives do not
        repeat across blocks.  Because the salt defaults to the block id,
        rebuilding an entry from the same block content reproduces it
        bit-for-bit — the property integrity rebuilds rely on.

        ``batched`` routes the tail insertions through the vectorized
        :meth:`~repro.core.bloom.BloomFilter.add_many` kernel; the result
        is bit-identical to the scalar ``update`` loop either way.
        """
        model = memory_model or MemoryModel()
        bloom = BloomFilter(
            capacity=max(len(result.tail), 1),
            error_rate=model.bloom_error_rate,
            seed=bloom_seed if bloom_seed is not None else block_id,
        )
        if batched:
            bloom.add_many(list(result.tail.keys()))
        else:
            bloom.update(result.tail.keys())
        # Eq. 6's delta: "the smallest size value of |s ∩ b_j|" — observed
        # from the tail while it is still in hand (the ElasticMap itself
        # keeps only this one number, not the tail sizes).
        if result.tail:
            delta = min(result.tail.values())
        elif result.dominant:
            delta = min(result.dominant.values())
        else:
            delta = None
        return cls(
            block_id,
            result.dominant,
            bloom,
            delta=max(delta, 1) if delta is not None else None,
            memory_model=model,
            fingerprint=fingerprint,
        )

    # -- queries -------------------------------------------------------------

    def query(self, sub_dataset_id: str) -> Tuple[int, QueryKind]:
        """Size of ``sub_dataset_id`` in this block, and how it was resolved.

        Returns ``(exact_size, "exact")`` for a hash-map hit,
        ``(delta, "approx")`` for a Bloom hit, ``(0, "absent")`` otherwise.
        A Bloom false positive yields a spurious ``(delta, "approx")`` with
        probability ≈ the configured error rate — this is the accuracy/
        memory trade-off the paper studies in Table II.
        """
        size = self.hash_map.get(sub_dataset_id)
        if size is not None:
            return size, "exact"
        if sub_dataset_id in self.bloom:
            return self.delta, "approx"
        return 0, "absent"

    def __contains__(self, sub_dataset_id: str) -> bool:
        return sub_dataset_id in self.hash_map or sub_dataset_id in self.bloom

    @property
    def num_dominant(self) -> int:
        """Number of sub-datasets recorded exactly (hash-map entries)."""
        return len(self.hash_map)

    @property
    def dominant_bytes(self) -> int:
        """Total bytes covered by exact entries."""
        return sum(self.hash_map.values())

    # -- memory accounting -----------------------------------------------------

    def memory_bits(self) -> float:
        """Actual bits used: charged hash-map entries + real Bloom bit count."""
        per_hash = self.memory_model.hashmap_bits_per_entry / self.memory_model.load_factor
        return len(self.hash_map) * per_hash + self.bloom.memory_bits

    def modeled_memory_bits(self, num_subdatasets: int) -> float:
        """Eq. 5 cost for this block given its total sub-dataset count."""
        if num_subdatasets < len(self.hash_map):
            raise MetadataError(
                "num_subdatasets smaller than the number of dominant entries"
            )
        alpha = len(self.hash_map) / num_subdatasets if num_subdatasets else 0.0
        return self.memory_model.cost_bits(num_subdatasets, alpha)

    # -- serialization ---------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize to a compact byte string (header + hash map + Bloom).

        This is the wire/storage format used when metadata does not fit in
        one master's memory and is spread over a metadata store (the
        paper's future-work direction; see :mod:`repro.core.metastore`).
        An entry carrying a content fingerprint appends it as an 8-byte
        little-endian trailer; fingerprint-less entries keep the original
        layout, so old blobs stay readable.

        The blob is cached: entries are immutable once built (rebuilds
        produce fresh objects), and the metadata store re-serializes the
        same entry on every put/recovery round-trip.
        """
        if self._blob_cache is not None:
            return self._blob_cache
        import json

        hash_blob = json.dumps(self.hash_map, separators=(",", ":")).encode("utf-8")
        bloom_blob = self.bloom.to_bytes()
        header = (
            self.block_id.to_bytes(8, "little")
            + self.delta.to_bytes(8, "little")
            + len(hash_blob).to_bytes(8, "little")
            + len(bloom_blob).to_bytes(8, "little")
        )
        trailer = (
            self.fingerprint.to_bytes(8, "little")
            if self.fingerprint is not None
            else b""
        )
        self._blob_cache = header + hash_blob + bloom_blob + trailer
        return self._blob_cache

    @classmethod
    def from_bytes(
        cls, blob: bytes, *, memory_model: Optional[MemoryModel] = None
    ) -> "BlockElasticMap":
        """Inverse of :meth:`to_bytes`.

        Raises:
            MetadataError: for a truncated or inconsistent blob.
        """
        import json

        if len(blob) < 32:
            raise MetadataError("BlockElasticMap blob too short")
        block_id = int.from_bytes(blob[0:8], "little")
        delta = int.from_bytes(blob[8:16], "little")
        hash_len = int.from_bytes(blob[16:24], "little")
        bloom_len = int.from_bytes(blob[24:32], "little")
        base = 32 + hash_len + bloom_len
        if len(blob) == base:
            fingerprint = None
        elif len(blob) == base + 8:
            fingerprint = int.from_bytes(blob[base:], "little")
        else:
            raise MetadataError("BlockElasticMap blob length mismatch")
        try:
            hash_map = json.loads(blob[32 : 32 + hash_len].decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise MetadataError(f"corrupt hash-map payload: {exc}") from exc
        try:
            bloom = BloomFilter.from_bytes(blob[32 + hash_len : base])
        except ConfigError as exc:
            raise MetadataError(f"corrupt bloom payload: {exc}") from exc
        out = cls(
            block_id,
            hash_map,
            bloom,
            delta=delta,
            memory_model=memory_model,
            fingerprint=fingerprint,
        )
        # a parsed entry re-serializes to the exact input blob, so the
        # round-trip can skip re-encoding entirely
        out._blob_cache = bytes(blob)
        return out


class ElasticMapArray:
    """The array of per-block ElasticMaps for one dataset (paper Figure 3).

    Supports the two queries DataNet needs:

    * :meth:`distribution` — per-block sizes of one sub-dataset (drives the
      bipartite edge weights of Section IV).
    * :meth:`estimate_total_size` — Eq. 6 total-size estimate ``Z``.

    Plus the accuracy/memory accounting behind Table II and Figs. 9-10.
    """

    def __init__(self, blocks: Sequence[BlockElasticMap]) -> None:
        ids = [b.block_id for b in blocks]
        if len(set(ids)) != len(ids):
            raise MetadataError("duplicate block ids in ElasticMapArray")
        self._blocks: List[BlockElasticMap] = sorted(blocks, key=lambda b: b.block_id)
        self._by_id: Dict[int, BlockElasticMap] = {b.block_id: b for b in self._blocks}
        # bumped on every membership change so callers (DataNet) can cache
        # derived per-sub-dataset views and notice staleness cheaply
        self.version = 0

    # -- container protocol ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._blocks)

    def __iter__(self):
        return iter(self._blocks)

    def __getitem__(self, block_id: int) -> BlockElasticMap:
        try:
            return self._by_id[block_id]
        except KeyError:
            raise MetadataError(f"no ElasticMap for block {block_id}") from None

    @property
    def block_ids(self) -> List[int]:
        """Sorted ids of all covered blocks."""
        return [b.block_id for b in self._blocks]

    def add_block(self, block_map: BlockElasticMap) -> None:
        """Register metadata for a newly appended block.

        Raises:
            MetadataError: if the block id is already covered.
        """
        if block_map.block_id in self._by_id:
            raise MetadataError(
                f"block {block_map.block_id} already has metadata"
            )
        self._by_id[block_map.block_id] = block_map
        import bisect

        idx = bisect.bisect(
            [b.block_id for b in self._blocks], block_map.block_id
        )
        self._blocks.insert(idx, block_map)
        self.version += 1

    def remove_block(self, block_id: int) -> BlockElasticMap:
        """Quarantine a block's metadata (integrity validation path).

        Returns the removed entry so callers can report what was evicted.

        Raises:
            MetadataError: if the block has no metadata.
        """
        entry = self._by_id.pop(block_id, None)
        if entry is None:
            raise MetadataError(f"no ElasticMap for block {block_id}")
        self._blocks.remove(entry)
        self.version += 1
        return entry

    # -- sub-dataset queries -----------------------------------------------------

    def distribution(self, sub_dataset_id: str) -> Dict[int, Tuple[int, QueryKind]]:
        """Per-block ``(size, kind)`` for every block that (apparently) holds
        ``sub_dataset_id``; blocks answering ``absent`` are omitted.

        The omission is the paper's I/O-saving property: analysis can skip
        blocks with no trace of the target sub-dataset entirely.
        """
        out: Dict[int, Tuple[int, QueryKind]] = {}
        for block in self._blocks:
            size, kind = block.query(sub_dataset_id)
            if kind != "absent":
                out[block.block_id] = (size, kind)
        return out

    def block_weights(self, sub_dataset_id: str) -> Dict[int, int]:
        """Per-block byte weights ``|b ∩ s|`` (approximate for Bloom hits)."""
        return {bid: size for bid, (size, _k) in self.distribution(sub_dataset_id).items()}

    def blocks_containing(self, sub_dataset_id: str) -> List[int]:
        """Ids of blocks that may hold the sub-dataset (hash-map or Bloom hit)."""
        return sorted(self.distribution(sub_dataset_id).keys())

    def global_delta(self) -> int:
        """Eq. 6's ``delta``: the smallest per-block intersection observed."""
        if not self._blocks:
            return BlockElasticMap.DEFAULT_DELTA
        return min(b.delta for b in self._blocks)

    def estimate_total_size(self, sub_dataset_id: str) -> int:
        """Eq. 6: ``Z = sum_{b in tau1} |s ∩ b| + delta * |tau2|``.

        ``tau1`` are blocks answering exactly (hash map), ``tau2`` blocks
        answering approximately (Bloom filter).
        """
        delta = self.global_delta()
        total = 0
        for bid, (size, kind) in self.distribution(sub_dataset_id).items():
            if kind == "exact":
                total += size
            elif self[bid].reports_tail_sizes:
                total += size  # the tail store estimated a real size
            else:
                total += delta
        return total

    # -- accuracy & memory accounting (Table II, Fig. 9) -----------------------------

    def estimate_dataset_size(self, sub_dataset_ids: Iterable[str]) -> int:
        """Eq. 6 estimate summed over a collection of sub-dataset ids."""
        return sum(self.estimate_total_size(sid) for sid in sub_dataset_ids)

    def accuracy(self, sub_dataset_ids: Iterable[str], raw_bytes: int) -> float:
        """The paper's overall accuracy ``chi``.

        ``chi = 1 - |estimated_total - raw_bytes| / raw_bytes`` where the
        estimate is Eq. 6 summed over all sub-datasets.  1.0 means the
        metadata reconstructs the dataset size perfectly; Bloom-filter
        approximation and false positives pull it below 1.
        """
        if raw_bytes <= 0:
            raise MetadataError("raw_bytes must be positive to compute accuracy")
        est = self.estimate_dataset_size(sub_dataset_ids)
        return 1.0 - abs(est - raw_bytes) / raw_bytes

    def memory_bits(self) -> float:
        """Total actual metadata bits across all blocks."""
        return sum(b.memory_bits() for b in self._blocks)

    def memory_bytes(self) -> float:
        """Total actual metadata bytes across all blocks."""
        return self.memory_bits() / 8.0

    def representation_ratio(self, raw_bytes: int) -> float:
        """Table II's ratio: raw data bytes represented per metadata byte."""
        mem = self.memory_bytes()
        if mem <= 0:
            raise MetadataError("ElasticMapArray holds no metadata")
        return raw_bytes / mem
