"""Optimal homogeneous assignment via the Ford-Fulkerson method (Section IV-B).

The paper notes that "in a homogeneous execution environment, we can
actually compute an optimized task assignment through the Ford-Fulkerson
method".  This module implements that:

* :class:`MaxFlowSolver` — a from-scratch Edmonds-Karp (BFS Ford-Fulkerson)
  maximum-flow solver on an adjacency-dict network.
* :func:`optimal_assignment` — binary-searches the smallest per-node load
  cap ``L`` for which the flow network

  ``source --w_b--> block_b --w_b--> replica nodes --L--> sink``

  saturates every block's supply, then rounds the fractional flow to an
  integral block-to-node assignment (each block to the replica node that
  received most of its flow).

The fractional optimum is a true lower bound on any schedule's makespan;
the rounded schedule is what the engine can actually run, and tests check
it stays close to the bound and at-or-below Algorithm 1's greedy result.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, List, Mapping, Tuple

from ..errors import ConfigError, SchedulingError
from .bipartite import BipartiteGraph
from .scheduler import Assignment

__all__ = ["MaxFlowSolver", "optimal_assignment", "fractional_optimum"]

FlowNode = Hashable


class MaxFlowSolver:
    """Edmonds-Karp maximum flow on a capacity dict-of-dicts.

    Args:
        capacities: ``capacities[u][v]`` is the capacity of arc ``u → v``.
            Missing arcs have capacity 0.  Capacities may be floats.

    The solver builds a residual network internally; call :meth:`max_flow`
    once per instance.
    """

    def __init__(self, capacities: Mapping[FlowNode, Mapping[FlowNode, float]]) -> None:
        self._residual: Dict[FlowNode, Dict[FlowNode, float]] = {}
        for u, nbrs in capacities.items():
            for v, cap in nbrs.items():
                if cap < 0:
                    raise ConfigError(f"negative capacity on arc {u!r}->{v!r}")
                self._residual.setdefault(u, {})[v] = (
                    self._residual.get(u, {}).get(v, 0.0) + float(cap)
                )
                self._residual.setdefault(v, {}).setdefault(u, 0.0)
        self._flow_sent: Dict[Tuple[FlowNode, FlowNode], float] = {}

    def _bfs_path(self, source: FlowNode, sink: FlowNode) -> List[FlowNode] | None:
        """Shortest augmenting path in the residual network, or None."""
        parent: Dict[FlowNode, FlowNode] = {source: source}
        queue: deque[FlowNode] = deque([source])
        while queue:
            u = queue.popleft()
            if u == sink:
                break
            for v, cap in self._residual.get(u, {}).items():
                if cap > 1e-12 and v not in parent:
                    parent[v] = u
                    queue.append(v)
        if sink not in parent:
            return None
        path = [sink]
        while path[-1] != source:
            path.append(parent[path[-1]])
        path.reverse()
        return path

    def max_flow(self, source: FlowNode, sink: FlowNode) -> float:
        """Run Edmonds-Karp; returns the max-flow value.

        After the call, :meth:`flow_on` reports per-arc flow.
        """
        if source == sink:
            raise ConfigError("source and sink must differ")
        total = 0.0
        while True:
            path = self._bfs_path(source, sink)
            if path is None:
                return total
            bottleneck = min(
                self._residual[u][v] for u, v in zip(path, path[1:])
            )
            for u, v in zip(path, path[1:]):
                self._residual[u][v] -= bottleneck
                self._residual[v][u] = self._residual[v].get(u, 0.0) + bottleneck
                key, rkey = (u, v), (v, u)
                back = self._flow_sent.get(rkey, 0.0)
                if back > 0:  # cancel opposing flow first
                    cancel = min(back, bottleneck)
                    self._flow_sent[rkey] = back - cancel
                    if bottleneck > cancel:
                        self._flow_sent[key] = (
                            self._flow_sent.get(key, 0.0) + bottleneck - cancel
                        )
                else:
                    self._flow_sent[key] = self._flow_sent.get(key, 0.0) + bottleneck
            total += bottleneck

    def flow_on(self, u: FlowNode, v: FlowNode) -> float:
        """Net flow sent along arc ``u → v`` by the last :meth:`max_flow`."""
        return self._flow_sent.get((u, v), 0.0)


def _feasible_flow(
    graph: BipartiteGraph, cap: float
) -> Tuple[bool, "MaxFlowSolver"]:
    """Can all block weights be routed with per-node load ≤ cap?"""
    src, snk = ("__source__",), ("__sink__",)
    capacities: Dict[FlowNode, Dict[FlowNode, float]] = {src: {}, snk: {}}
    for b in graph.blocks:
        w = graph.weight(b)
        bnode = ("block", b)
        capacities[src][bnode] = float(w)
        capacities.setdefault(bnode, {})
        for n in graph.nodes_of(b):
            capacities[bnode][("node", n)] = float(w)
    for n in graph.nodes:
        capacities.setdefault(("node", n), {})[snk] = float(cap)
    solver = MaxFlowSolver(capacities)
    value = solver.max_flow(src, snk)
    total = float(graph.total_weight())
    return value >= total - 1e-6 * max(total, 1.0), solver


def fractional_optimum(graph: BipartiteGraph, *, tol: float = 0.5) -> float:
    """Smallest (to within ``tol`` bytes) per-node cap with a feasible flow.

    This is a lower bound on the makespan-workload of *any* replica-local
    assignment of the blocks.
    """
    if graph.num_nodes == 0:
        raise SchedulingError("graph has no cluster nodes")
    total = float(graph.total_weight())
    if total == 0:
        return 0.0
    lo = total / graph.num_nodes  # perfect balance
    hi = total  # one node takes everything
    while hi - lo > tol:
        mid = (lo + hi) / 2.0
        ok, _ = _feasible_flow(graph, mid)
        if ok:
            hi = mid
        else:
            lo = mid
    return hi


def optimal_assignment(graph: BipartiteGraph, *, tol: float = 0.5) -> Assignment:
    """Near-optimal *integral* replica-local assignment via max-flow + rounding.

    Binary-searches the fractional cap, then assigns each block to the
    replica node that carried the largest share of its flow; a final greedy
    pass re-homes blocks from overloaded nodes when a strictly better
    replica holder exists.

    Blocks with zero weight are spread round-robin over their replica
    holders (they cost nothing but still need an owner).
    """
    if graph.num_nodes == 0:
        raise SchedulingError("graph has no cluster nodes")
    nodes = graph.nodes
    blocks_by_node: Dict[Hashable, List[int]] = {n: [] for n in nodes}
    workload: Dict[Hashable, int] = {n: 0 for n in nodes}

    total = graph.total_weight()
    if total == 0:
        for i, b in enumerate(graph.blocks):
            owner = min(graph.nodes_of(b), key=lambda n: (len(blocks_by_node[n]), repr(n)))
            blocks_by_node[owner].append(b)
        return Assignment(blocks_by_node, workload,
                          local_assignments=graph.num_blocks, remote_assignments=0)

    cap = fractional_optimum(graph, tol=tol)
    _ok, solver = _feasible_flow(graph, cap)

    # Round: each block to its max-flow replica (ties → least-loaded node).
    pending = sorted(graph.blocks, key=lambda b: -graph.weight(b))
    for b in pending:
        bnode = ("block", b)
        flows = {
            n: solver.flow_on(bnode, ("node", n)) for n in graph.nodes_of(b)
        }
        owner = max(
            flows,
            key=lambda n: (flows[n], -workload[n], repr(n)),
        )
        blocks_by_node[owner].append(b)
        workload[owner] += graph.weight(b)

    # Local improvement: move blocks off the max-loaded node when a replica
    # holder with strictly lower resulting max exists.
    improved = True
    while improved:
        improved = False
        worst = max(nodes, key=lambda n: workload[n])
        for b in sorted(blocks_by_node[worst], key=lambda x: -graph.weight(x)):
            w = graph.weight(b)
            if w == 0:
                continue
            for n in sorted(graph.nodes_of(b), key=lambda n: workload[n]):
                if n != worst and workload[n] + w < workload[worst]:
                    blocks_by_node[worst].remove(b)
                    blocks_by_node[n].append(b)
                    workload[worst] -= w
                    workload[n] += w
                    improved = True
                    break
            if improved:
                break

    return Assignment(
        blocks_by_node=blocks_by_node,
        workload_by_node=workload,
        local_assignments=graph.num_blocks,
        remote_assignments=0,
    )
