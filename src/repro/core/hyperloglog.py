"""HyperLogLog: cardinality estimation for sub-dataset statistics.

Two uses in this repository:

* the **distinct-words** analysis application (how many distinct tokens a
  sub-dataset contains — a classic aggregation whose exact answer needs a
  giant shuffle, but whose HLL sketch shuffles a few KiB);
* cheap per-block **sub-dataset cardinality** (how many distinct
  sub-datasets a block holds — the ``m`` in the Eq. 5 memory model)
  without keeping per-id state.

Standard HLL (Flajolet et al.) with the small-range linear-counting
correction; registers are a NumPy uint8 array, and sketches merge by
element-wise max (used as a MapReduce combiner).
"""

from __future__ import annotations

import hashlib
import math
from typing import Iterable

import numpy as np

from ..errors import ConfigError

__all__ = ["HyperLogLog"]


def _alpha(m: int) -> float:
    """The standard bias-correction constant for ``m`` registers."""
    if m == 16:
        return 0.673
    if m == 32:
        return 0.697
    if m == 64:
        return 0.709
    return 0.7213 / (1.0 + 1.079 / m)


class HyperLogLog:
    """Distinct-count sketch over string/bytes keys.

    Args:
        precision: ``p``; the sketch uses ``2**p`` one-byte registers and
            achieves a relative error around ``1.04 / sqrt(2**p)``
            (p=12 → ~1.6 %).
        seed: salt so independent sketches hash independently.
    """

    __slots__ = ("precision", "num_registers", "seed", "_registers")

    def __init__(self, precision: int = 12, *, seed: int = 0) -> None:
        if not (4 <= precision <= 18):
            raise ConfigError(f"precision must be in [4, 18], got {precision}")
        self.precision = precision
        self.num_registers = 1 << precision
        self.seed = seed
        self._registers = np.zeros(self.num_registers, dtype=np.uint8)

    # -- updates ------------------------------------------------------------------

    def _hash(self, key: str | bytes) -> int:
        data = key.encode("utf-8") if isinstance(key, str) else key
        digest = hashlib.blake2b(
            data, digest_size=8, salt=self.seed.to_bytes(8, "little")
        ).digest()
        return int.from_bytes(digest, "little")

    def add(self, key: str | bytes) -> None:
        """Insert one element (idempotent)."""
        h = self._hash(key)
        idx = h & (self.num_registers - 1)
        rest = h >> self.precision
        # rank = position of the leftmost 1-bit in the remaining 64-p bits
        rank = (64 - self.precision) - rest.bit_length() + 1
        if rank > self._registers[idx]:
            self._registers[idx] = rank

    def update(self, keys: Iterable[str | bytes]) -> None:
        """Insert every element of ``keys``."""
        for key in keys:
            self.add(key)

    # -- estimate -----------------------------------------------------------------

    def estimate(self) -> float:
        """Estimated number of distinct inserted elements."""
        m = self.num_registers
        regs = self._registers.astype(np.float64)
        raw = _alpha(m) * m * m / np.power(2.0, -regs).sum()
        zeros = int((self._registers == 0).sum())
        if raw <= 2.5 * m and zeros > 0:
            return m * math.log(m / zeros)  # linear counting, small range
        return float(raw)

    def __len__(self) -> int:
        return int(round(self.estimate()))

    @property
    def relative_error(self) -> float:
        """The sketch's standard error ``1.04 / sqrt(m)``."""
        return 1.04 / math.sqrt(self.num_registers)

    # -- algebra -------------------------------------------------------------------

    def merge(self, other: "HyperLogLog") -> "HyperLogLog":
        """Union of two sketches (register-wise max); same geometry required."""
        if (
            self.precision != other.precision
            or self.seed != other.seed
        ):
            raise ConfigError("HyperLogLog sketches have incompatible geometry")
        out = HyperLogLog(self.precision, seed=self.seed)
        np.maximum(self._registers, other._registers, out=out._registers)
        return out

    # -- accounting ----------------------------------------------------------------

    @property
    def memory_bytes(self) -> int:
        return int(self._registers.nbytes)

    # -- serialization -------------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize geometry + registers."""
        header = self.precision.to_bytes(1, "little") + self.seed.to_bytes(
            8, "little", signed=True
        )
        return header + self._registers.tobytes()

    @classmethod
    def from_bytes(cls, blob: bytes) -> "HyperLogLog":
        """Inverse of :meth:`to_bytes`."""
        if len(blob) < 9:
            raise ConfigError("hyperloglog blob too short")
        precision = blob[0]
        out = cls(precision, seed=int.from_bytes(blob[1:9], "little", signed=True))
        regs = np.frombuffer(blob[9:], dtype=np.uint8)
        if regs.size != out.num_registers:
            raise ConfigError("hyperloglog blob register-count mismatch")
        out._registers = regs.copy()
        return out
