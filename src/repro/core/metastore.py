"""Distributed ElasticMap metadata store (paper Section V-B.1 future work).

The paper: "as the problem size becomes extremely large, the meta-data may
not be able to reside in memory.  In such cases, the meta-data can be
stored into a database or distributed among multiple machines."  This
module builds that machinery:

* :class:`MetaNode` — one metadata server holding serialized
  :class:`~repro.core.elasticmap.BlockElasticMap` blobs.
* :class:`ShardMap` — rendezvous (highest-random-weight) hashing of block
  ids onto meta-nodes with a configurable replication factor; adding or
  removing a node only remaps the blocks that must move.
* :class:`DistributedMetaStore` — the client facade: ``put``/``get`` per
  block, the same ``distribution`` / ``estimate_total_size`` queries an
  in-memory :class:`~repro.core.elasticmap.ElasticMapArray` answers, and
  transparent failover to replica meta-nodes when a server is down.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..errors import ConfigError, MetadataError
from .elasticmap import BlockElasticMap, ElasticMapArray, MemoryModel, QueryKind

__all__ = ["MetaNode", "ShardMap", "DistributedMetaStore"]


class MetaNode:
    """One metadata server: a byte-blob store keyed by block id."""

    def __init__(self, node_id: str) -> None:
        if not node_id:
            raise ConfigError("meta-node id must be non-empty")
        self.node_id = node_id
        self._blobs: Dict[int, bytes] = {}
        self._alive = True

    # -- storage ----------------------------------------------------------------

    def put(self, block_id: int, blob: bytes) -> None:
        """Store (or overwrite) one block's serialized metadata."""
        self._ensure_alive()
        self._blobs[block_id] = blob

    def get(self, block_id: int) -> bytes:
        """Fetch one block's blob.

        Raises:
            MetadataError: if the node is down or the blob is absent.
        """
        self._ensure_alive()
        try:
            return self._blobs[block_id]
        except KeyError:
            raise MetadataError(
                f"meta-node {self.node_id} holds no metadata for block {block_id}"
            ) from None

    def has(self, block_id: int) -> bool:
        self._ensure_alive()
        return block_id in self._blobs

    def drop(self, block_id: int) -> None:
        """Remove a blob if present (rebalancing)."""
        self._ensure_alive()
        self._blobs.pop(block_id, None)

    @property
    def stored_blocks(self) -> List[int]:
        """Ids currently stored, sorted (inspection/testing)."""
        return sorted(self._blobs)

    def used_bytes(self) -> int:
        """Total blob bytes held."""
        return sum(len(b) for b in self._blobs.values())

    # -- liveness ----------------------------------------------------------------

    @property
    def alive(self) -> bool:
        return self._alive

    def fail(self) -> None:
        """Simulate a crash: all requests raise until :meth:`recover`."""
        self._alive = False

    def recover(self) -> None:
        """Bring the node back (its blobs survive, like a disk-backed store)."""
        self._alive = True

    def _ensure_alive(self) -> None:
        if not self._alive:
            raise MetadataError(f"meta-node {self.node_id} is down")


class ShardMap:
    """Rendezvous-hash placement of block metadata onto meta-nodes.

    Every block id is mapped to the ``replication`` meta-nodes with the
    highest hash score — a standard technique whose property we rely on:
    membership changes reshuffle only the affected blocks.
    """

    def __init__(self, node_ids: Iterable[str], *, replication: int = 3) -> None:
        ids = list(node_ids)
        if not ids:
            raise ConfigError("ShardMap needs at least one meta-node")
        if len(set(ids)) != len(ids):
            raise ConfigError("duplicate meta-node ids")
        if replication <= 0:
            raise ConfigError("replication must be positive")
        self.node_ids = ids
        self.replication = min(replication, len(ids))

    @staticmethod
    def _score(node_id: str, block_id: int) -> int:
        digest = hashlib.blake2b(
            f"{node_id}/{block_id}".encode("utf-8"), digest_size=8
        ).digest()
        return int.from_bytes(digest, "little")

    def owners(self, block_id: int) -> List[str]:
        """The meta-nodes responsible for ``block_id``, primary first."""
        ranked = sorted(
            self.node_ids, key=lambda n: self._score(n, block_id), reverse=True
        )
        return ranked[: self.replication]

    def with_nodes(self, node_ids: Iterable[str]) -> "ShardMap":
        """A new map over a different membership (same replication)."""
        return ShardMap(node_ids, replication=self.replication)


class DistributedMetaStore:
    """Client facade over a fleet of meta-nodes.

    Args:
        num_nodes: meta-node count.
        replication: metadata copies per block (failover depth).
        memory_model: attached to deserialized block maps.

    Ingest with :meth:`load_array` (spreads an existing
    :class:`ElasticMapArray`) or :meth:`put_block`; query exactly like the
    in-memory array.  When a meta-node is down, reads fail over to the next
    replica; writes go to every live owner.
    """

    def __init__(
        self,
        num_nodes: int = 4,
        *,
        replication: int = 3,
        memory_model: Optional[MemoryModel] = None,
    ) -> None:
        if num_nodes <= 0:
            raise ConfigError("num_nodes must be positive")
        self.nodes: Dict[str, MetaNode] = {
            f"meta-{i}": MetaNode(f"meta-{i}") for i in range(num_nodes)
        }
        self.shard_map = ShardMap(self.nodes.keys(), replication=replication)
        self.memory_model = memory_model or MemoryModel()
        self._block_ids: Set[int] = set()
        # block id → (blob, parsed entry): repeated lookups skip re-parsing
        # as long as the stored blob is unchanged (identity check first,
        # byte equality as the fallback after failover re-writes)
        self._parse_cache: Dict[int, Tuple[bytes, BlockElasticMap]] = {}

    # -- ingest -----------------------------------------------------------------

    def put_block(self, block_map: BlockElasticMap) -> None:
        """Store one block's metadata on all its live owners."""
        blob = block_map.to_bytes()
        owners = self.shard_map.owners(block_map.block_id)
        stored = 0
        for owner in owners:
            node = self.nodes[owner]
            if node.alive:
                node.put(block_map.block_id, blob)
                stored += 1
        if stored == 0:
            raise MetadataError(
                f"no live meta-node available for block {block_map.block_id}"
            )
        self._block_ids.add(block_map.block_id)
        self._parse_cache[block_map.block_id] = (blob, block_map)

    def load_array(self, array: ElasticMapArray) -> None:
        """Spread a whole ElasticMap array across the fleet."""
        for block_map in array:
            self.put_block(block_map)

    # -- lookups -------------------------------------------------------------------

    @property
    def block_ids(self) -> List[int]:
        """All block ids ever stored, sorted."""
        return sorted(self._block_ids)

    def get_block(self, block_id: int) -> BlockElasticMap:
        """Fetch and deserialize one block's metadata, with failover.

        Raises:
            MetadataError: when no replica is reachable or the block is
                unknown.
        """
        if block_id not in self._block_ids:
            raise MetadataError(f"block {block_id} not stored")
        last_error: Optional[Exception] = None
        for owner in self.shard_map.owners(block_id):
            node = self.nodes[owner]
            if not node.alive:
                last_error = MetadataError(f"meta-node {owner} is down")
                continue
            try:
                blob = node.get(block_id)
            except MetadataError as exc:
                last_error = exc
                continue
            cached = self._parse_cache.get(block_id)
            if cached is not None and (cached[0] is blob or cached[0] == blob):
                return cached[1]
            entry = BlockElasticMap.from_bytes(blob, memory_model=self.memory_model)
            self._parse_cache[block_id] = (blob, entry)
            return entry
        raise MetadataError(
            f"no live replica of metadata for block {block_id}: {last_error}"
        )

    # -- the ElasticMapArray-compatible queries ----------------------------------------

    def distribution(self, sub_dataset_id: str) -> Dict[int, Tuple[int, QueryKind]]:
        """Per-block ``(size, kind)`` — same contract as the in-memory array."""
        out: Dict[int, Tuple[int, QueryKind]] = {}
        for bid in self.block_ids:
            size, kind = self.get_block(bid).query(sub_dataset_id)
            if kind != "absent":
                out[bid] = (size, kind)
        return out

    def block_weights(self, sub_dataset_id: str) -> Dict[int, int]:
        """Per-block byte weights, Bloom hits approximated by delta."""
        return {b: s for b, (s, _k) in self.distribution(sub_dataset_id).items()}

    def estimate_total_size(self, sub_dataset_id: str) -> int:
        """Eq. 6 over the distributed store."""
        deltas = [self.get_block(b).delta for b in self.block_ids]
        delta = min(deltas) if deltas else BlockElasticMap.DEFAULT_DELTA
        exact = 0
        approx = 0
        for _b, (size, kind) in self.distribution(sub_dataset_id).items():
            if kind == "exact":
                exact += size
            else:
                approx += 1
        return exact + delta * approx

    # -- operations -----------------------------------------------------------------

    def add_node(self, node_id: Optional[str] = None) -> str:
        """Grow the fleet by one meta-node and rebalance ownership.

        Rendezvous hashing keeps movement minimal: only blocks whose owner
        set changes migrate.  Blobs the new node now owns are copied to it;
        blobs a node no longer owns are dropped.  Returns the new node id.
        """
        if node_id is None:
            i = len(self.nodes)
            while f"meta-{i}" in self.nodes:
                i += 1
            node_id = f"meta-{i}"
        if node_id in self.nodes:
            raise ConfigError(f"meta-node {node_id!r} already exists")
        old_map = self.shard_map
        self.nodes[node_id] = MetaNode(node_id)
        new_map = old_map.with_nodes(self.nodes.keys())
        # migrate while the OLD map still resolves reads, then switch over
        for bid in self.block_ids:
            new_owners = set(new_map.owners(bid))
            old_owners = set(old_map.owners(bid))
            if new_owners == old_owners:
                continue
            blob = self.get_block(bid).to_bytes()  # reads via old owners
            for owner in new_owners - old_owners:
                node = self.nodes[owner]
                if node.alive and not node.has(bid):
                    node.put(bid, blob)
            for owner in old_owners - new_owners:
                node = self.nodes[owner]
                if node.alive:
                    node.drop(bid)
        self.shard_map = new_map
        return node_id

    def fail_node(self, node_id: str) -> None:
        """Take one meta-node down (reads fail over, writes skip it)."""
        try:
            self.nodes[node_id].fail()
        except KeyError:
            raise ConfigError(f"unknown meta-node {node_id!r}") from None

    def recover_node(self, node_id: str) -> None:
        """Bring a meta-node back and re-sync the blobs it should own."""
        try:
            node = self.nodes[node_id]
        except KeyError:
            raise ConfigError(f"unknown meta-node {node_id!r}") from None
        node.recover()
        for bid in self.block_ids:
            if node_id in self.shard_map.owners(bid) and not node.has(bid):
                node.put(bid, self.get_block(bid).to_bytes())

    def storage_by_node(self) -> Dict[str, int]:
        """Blob bytes per live meta-node (balance inspection)."""
        return {
            nid: node.used_bytes()
            for nid, node in self.nodes.items()
            if node.alive
        }
