"""Algorithm 1: distribution-aware balanced task assignment (Section IV-B).

Given the bipartite node/block graph whose edge weights are the target
sub-dataset's bytes per block, the scheduler simulates worker task
requests: whenever a node is free it requests a task, and the scheduler
hands it the block (preferring local replicas) that brings the node's
accumulated sub-dataset workload closest to its fair share ``W-bar``.

Workers request in least-loaded-first order, which mirrors a real Hadoop
cluster where a TaskTracker asks for its next task the moment the previous
one completes.  Heterogeneous clusters are supported through per-node
capacity weights: a node with capacity 2 targets twice the average share.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping, Optional, Tuple

from ..errors import ConfigError, SchedulingError
from .bipartite import BipartiteGraph

__all__ = ["Assignment", "DistributionAwareScheduler"]

NodeId = Hashable


@dataclass
class Assignment:
    """A complete mapping of block tasks onto cluster nodes.

    Attributes:
        blocks_by_node: node → ordered list of block ids assigned to it.
        workload_by_node: node → total sub-dataset bytes assigned.
        local_assignments: count of tasks placed on a replica holder.
        remote_assignments: count of tasks placed off-replica.
    """

    blocks_by_node: Dict[NodeId, List[int]]
    workload_by_node: Dict[NodeId, int]
    local_assignments: int = 0
    remote_assignments: int = 0
    node_of_block: Dict[int, NodeId] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.node_of_block:
            self.node_of_block = {
                b: n for n, bs in self.blocks_by_node.items() for b in bs
            }

    # -- metrics --------------------------------------------------------------

    @property
    def num_tasks(self) -> int:
        """Total number of assigned block tasks."""
        return sum(len(b) for b in self.blocks_by_node.values())

    @property
    def locality_fraction(self) -> float:
        """Fraction of tasks that ran on a node holding a replica."""
        total = self.local_assignments + self.remote_assignments
        return self.local_assignments / total if total else 1.0

    def workloads(self) -> List[int]:
        """Per-node workloads in node order."""
        return [self.workload_by_node[n] for n in sorted(self.workload_by_node, key=repr)]

    @property
    def max_workload(self) -> int:
        return max(self.workload_by_node.values(), default=0)

    @property
    def min_workload(self) -> int:
        return min(self.workload_by_node.values(), default=0)

    @property
    def mean_workload(self) -> float:
        w = self.workloads()
        return sum(w) / len(w) if w else 0.0

    @property
    def std_workload(self) -> float:
        w = self.workloads()
        if not w:
            return 0.0
        mu = sum(w) / len(w)
        return math.sqrt(sum((x - mu) ** 2 for x in w) / len(w))

    @property
    def imbalance(self) -> float:
        """Makespan-style imbalance: ``max / mean`` (1.0 is perfect)."""
        mu = self.mean_workload
        return self.max_workload / mu if mu > 0 else 1.0


class DistributionAwareScheduler:
    """Algorithm 1 of the paper, with optional heterogeneous capacities.

    Args:
        capacities: node → relative computing capability; ``None`` means
            homogeneous.  Fair shares are proportional to capacity.

    Usage::

        graph = BipartiteGraph(placement, weights)
        assignment = DistributionAwareScheduler().schedule(graph)
    """

    #: Simulated cost of one delay-scheduling deferral, in task units.
    DEFER_QUANTUM = 0.34

    def __init__(
        self,
        capacities: Optional[Mapping[NodeId, float]] = None,
        *,
        max_deferrals: int = 0,
    ) -> None:
        if capacities is not None:
            if any(c <= 0 for c in capacities.values()):
                raise ConfigError("all capacities must be positive")
        if max_deferrals < 0:
            raise ConfigError("max_deferrals must be non-negative")
        self.capacities = dict(capacities) if capacities is not None else None
        self.max_deferrals = max_deferrals

    # -- fair share --------------------------------------------------------------

    def _fair_shares(self, graph: BipartiteGraph) -> Dict[NodeId, float]:
        total = graph.total_weight()
        nodes = graph.nodes
        if not nodes:
            raise SchedulingError("graph has no cluster nodes")
        if self.capacities is None:
            share = total / len(nodes)
            return {n: share for n in nodes}
        missing = [n for n in nodes if n not in self.capacities]
        if missing:
            raise SchedulingError(f"capacity missing for nodes: {missing[:5]}")
        cap_sum = sum(self.capacities[n] for n in nodes)
        return {n: total * self.capacities[n] / cap_sum for n in nodes}

    # -- Algorithm 1 ----------------------------------------------------------------

    def schedule(self, graph: BipartiteGraph) -> Assignment:
        """Assign every block task to a node, balancing sub-dataset workload.

        The input graph is not mutated (a copy is consumed).

        Request model: "a worker process on cn_i requests a task" whenever
        it finishes one; since every block file is the same size, the next
        requester is the node that has *processed the fewest tasks* so far
        (scaled by capacity in the heterogeneous case).  Per request, the
        chosen block minimizes ``|W_i + |b ∩ s| - Wbar_i|`` over the node's
        local blocks if it has any (lines 8-11 of Algorithm 1), else over
        all remaining blocks (lines 13-15) — where ``W_i`` counts only the
        target sub-dataset's bytes.
        """
        g = graph.copy()
        shares = self._fair_shares(g)
        caps = self.capacities or {n: 1.0 for n in g.nodes}
        workload: Dict[NodeId, int] = {n: 0 for n in g.nodes}
        tasks_count: Dict[NodeId, int] = {n: 0 for n in g.nodes}
        elapsed: Dict[NodeId, float] = {n: 0.0 for n in g.nodes}
        deferrals: Dict[NodeId, int] = {n: 0 for n in g.nodes}
        blocks_by_node: Dict[NodeId, List[int]] = {n: [] for n in g.nodes}
        local = remote = 0

        # Priority queue of (elapsed task units / capacity, tiebreak, node):
        # a pop is the next worker to come free and request a task.
        order = {n: i for i, n in enumerate(g.nodes)}
        heap: List[Tuple[float, int, NodeId]] = [(0.0, order[n], n) for n in g.nodes]
        heapq.heapify(heap)

        while g.num_blocks:
            # Each node has exactly one live heap entry; pop = next request.
            _e, tiebreak, node = heapq.heappop(heap)
            share = shares[node]
            current = workload[node]
            local_blocks = g.blocks_on(node)
            if (
                self.max_deferrals > 0
                and not local_blocks
                and deferrals[node] < self.max_deferrals
            ):
                # optional delay scheduling: briefly hold out for nodes that
                # still have local work instead of grabbing a remote block.
                # Off by default — Algorithm 1 as written assigns remote
                # work immediately (line 13), and deferral perturbs the
                # request order its balance quality relies on.
                deferrals[node] += 1
                elapsed[node] += self.DEFER_QUANTUM
                heapq.heappush(
                    heap, (elapsed[node] / caps[node], tiebreak, node)
                )
                continue
            candidates = local_blocks if local_blocks else set(g.blocks)
            if not candidates:
                break  # no blocks left anywhere
            # argmin |W_i + w(b) - Wbar_i|, smallest block id breaks ties
            best = min(
                candidates,
                key=lambda b: (abs(current + g.weight(b) - share), b),
            )
            if local_blocks:
                local += 1
                deferrals[node] = 0  # found local work; reset the patience
            else:
                remote += 1
            blocks_by_node[node].append(best)
            workload[node] = current + g.weight(best)
            tasks_count[node] += 1
            elapsed[node] += 1.0
            g.remove_block(best)
            heapq.heappush(heap, (elapsed[node] / caps[node], tiebreak, node))

        return Assignment(
            blocks_by_node=blocks_by_node,
            workload_by_node=workload,
            local_assignments=local,
            remote_assignments=remote,
        )
