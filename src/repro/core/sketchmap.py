"""Count-Min-backed ElasticMap variant.

Drop-in alternative to the paper's Bloom-only tail: membership is still
answered by a Bloom filter (cheap, no false negatives), but a positive
answer is priced by a :class:`~repro.core.countmin.CountMinSketch` holding
approximate tail *sizes* instead of the global constant ``delta``.  The
Bloom gate matters: consulting the sketch for every queried id would turn
its hash collisions into widespread phantom sizes, while Bloom-gated
lookups expose only ~``eps`` of them.  Costs more bits per tail entry than
Bloom alone; buys tighter Eq. 6 estimates and better scheduler weights for
mid-sized sub-datasets.  The ``ablation_tail_store`` bench quantifies the
trade.
"""

from __future__ import annotations

from typing import Optional, Tuple

from .bucketizer import SeparationResult
from .countmin import CountMinSketch
from .elasticmap import BlockElasticMap, MemoryModel, QueryKind

__all__ = ["SketchBlockElasticMap"]


class SketchBlockElasticMap(BlockElasticMap):
    """Per-block metadata with a Count-Min sketch tail.

    The interface is identical to :class:`BlockElasticMap` (it slots into
    :class:`~repro.core.elasticmap.ElasticMapArray` unchanged); only the
    tail behaviour differs: ``query`` on a tail sub-dataset first passes
    the Bloom membership gate and then returns the sketch's size estimate
    (clamped below by 1 byte) as an ``"approx"`` answer.
    """

    __slots__ = ("sketch",)

    reports_tail_sizes = True

    def __init__(
        self,
        block_id: int,
        hash_map,
        sketch: CountMinSketch,
        *,
        bloom=None,
        delta: Optional[int] = None,
        memory_model: Optional[MemoryModel] = None,
        fingerprint: Optional[int] = None,
    ) -> None:
        from .bloom import BloomFilter

        model = memory_model or MemoryModel()
        if bloom is None:
            bloom = BloomFilter(
                capacity=1, error_rate=model.bloom_error_rate, seed=block_id
            )
        super().__init__(
            block_id,
            hash_map,
            bloom,
            delta=delta,
            memory_model=model,
            fingerprint=fingerprint,
        )
        self.sketch = sketch

    @classmethod
    def from_separation(
        cls,
        block_id: int,
        result: SeparationResult,
        *,
        memory_model: Optional[MemoryModel] = None,
        epsilon: float = 0.02,
        sketch_delta: float = 0.05,
        fingerprint: Optional[int] = None,
        batched: bool = True,
    ) -> "SketchBlockElasticMap":
        """Build from a dominant/tail separation, sketching the tail sizes.

        The scalar loop interleaves sketch and Bloom insertions per tail
        item; the two structures are independent, so ``batched`` splits
        them into one :meth:`CountMinSketch.update_many` (same key order)
        and one Bloom ``add_many`` with an identical end state.
        """
        from .bloom import BloomFilter

        model = memory_model or MemoryModel()
        sketch = CountMinSketch(epsilon=epsilon, delta=sketch_delta, seed=block_id)
        bloom = BloomFilter(
            capacity=max(len(result.tail), 1),
            error_rate=model.bloom_error_rate,
            seed=block_id,
        )
        if batched:
            tail_ids = list(result.tail.keys())
            sketch.update_many(
                tail_ids, [max(n, 1) for n in result.tail.values()]
            )
            bloom.add_many(tail_ids)
        else:
            for sid, nbytes in result.tail.items():
                sketch.add(sid, max(nbytes, 1))
                bloom.add(sid)
        if result.tail:
            delta = min(result.tail.values())
        elif result.dominant:
            delta = min(result.dominant.values())
        else:
            delta = None
        return cls(
            block_id,
            result.dominant,
            sketch,
            bloom=bloom,
            delta=max(delta, 1) if delta is not None else None,
            memory_model=model,
            fingerprint=fingerprint,
        )

    # -- queries --------------------------------------------------------------

    def query(self, sub_dataset_id: str) -> Tuple[int, QueryKind]:
        """Exact for dominant entries; Bloom-gated sketch estimate for the tail."""
        size = self.hash_map.get(sub_dataset_id)
        if size is not None:
            return size, "exact"
        if sub_dataset_id not in self.bloom:
            return 0, "absent"
        return max(self.sketch.estimate(sub_dataset_id), 1), "approx"

    def __contains__(self, sub_dataset_id: str) -> bool:
        return sub_dataset_id in self.hash_map or sub_dataset_id in self.bloom

    # -- memory accounting -------------------------------------------------------

    def memory_bits(self) -> float:
        """Hash-map entries + Bloom membership gate + sketch counters."""
        per_hash = (
            self.memory_model.hashmap_bits_per_entry / self.memory_model.load_factor
        )
        return (
            len(self.hash_map) * per_hash
            + self.bloom.memory_bits
            + self.sketch.memory_bits
        )
