"""Exception hierarchy for the ``repro`` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.  Subsystems get
their own subclass to make failures attributable: a scheduling failure is
distinguishable from a storage-layer failure without string matching.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigError(ReproError, ValueError):
    """An invalid parameter or inconsistent configuration was supplied."""


class StorageError(ReproError):
    """Raised by the HDFS substrate (``repro.hdfs``)."""


class BlockNotFoundError(StorageError, KeyError):
    """A block id was requested that the NameNode does not know about."""


class ReplicationError(StorageError):
    """Replica placement could not satisfy the requested replication factor."""


class IntegrityError(ReproError):
    """Data failed a checksum/fingerprint check and could not be repaired.

    Raised by the verified read path, the replica scrubber and DataNet's
    metadata validation when every copy of a piece of state is corrupt —
    the cases where the only honest outcome is to refuse to produce output.
    """


class CodingError(ReproError):
    """Raised by the erasure-coding layer (``repro.coding``)."""


class UnrecoverableBlockError(IntegrityError):
    """A coded block lost more than ``m`` fragments and cannot be decoded.

    Carries the quarantine record describing exactly what was lost, so the
    job can fail cleanly with an auditable trail instead of an IndexError
    deep inside the decoder.
    """

    def __init__(self, message: str, *, record: object = None) -> None:
        super().__init__(message)
        self.record = record


class MetadataError(ReproError):
    """Raised by the ElasticMap / DataNet metadata layer (``repro.core``)."""


class SchedulingError(ReproError):
    """Raised by schedulers when an assignment cannot be produced."""


class JobError(ReproError):
    """Raised by the MapReduce engine for malformed or failed jobs."""


class FaultError(ReproError):
    """Raised by the fault-injection subsystem (``repro.faults``)."""


class TaskAttemptError(FaultError):
    """A task exhausted its retry budget (every attempt failed).

    Carries the task/node/attempt context so callers can attribute the
    failure without parsing the message.
    """

    def __init__(
        self,
        message: str,
        *,
        task_id: object = None,
        node: object = None,
        attempts: int = 0,
    ) -> None:
        super().__init__(message)
        self.task_id = task_id
        self.node = node
        self.attempts = attempts


class ServiceError(ReproError):
    """Raised by the multi-tenant analysis service (``repro.serve``)."""


class Overloaded(ServiceError):
    """A job was shed by admission control — a *typed* rejection.

    The service never drops work silently: every request that cannot be
    queued surfaces as one of these, carrying the tenant and the reason
    (``"quota"``: token bucket empty, ``"backpressure"``: queue past its
    high-water mark, ``"unavailable"``: service restarting after a crash)
    so callers can account for every submission.
    """

    def __init__(self, message: str, *, tenant: str = "", reason: str = "") -> None:
        super().__init__(message)
        self.tenant = tenant
        self.reason = reason


class TornFrameError(ServiceError):
    """A *non-final* journal frame failed its checksum — mid-log corruption.

    A torn tail (the crash case: the final frame cut short or scribbled
    mid-write) is recoverable by dropping the suffix, so replay treats it
    as a clean stop.  A corrupt frame with committed frames *after* it is
    different: dropping it would silently lose committed records, so the
    journal refuses to replay past it and raises this instead, carrying
    the byte offset and the checksum mismatch for the repair tooling.
    """

    def __init__(
        self,
        message: str,
        *,
        offset: int = 0,
        expected_checksum: int = 0,
        actual_checksum: int = 0,
    ) -> None:
        super().__init__(message)
        self.offset = offset
        self.expected_checksum = expected_checksum
        self.actual_checksum = actual_checksum


class QuorumLostError(ServiceError):
    """The replicated metadata plane cannot reach a majority.

    Raised by quorum appends, fencing rounds, elections and recovery when
    fewer than ``n // 2 + 1`` journal replicas (or voters) are reachable.
    Carries the tally so callers can report how far short the round fell.
    """

    def __init__(self, message: str, *, acks: int = 0, quorum: int = 0) -> None:
        super().__init__(message)
        self.acks = acks
        self.quorum = quorum


class StaleLeaderError(ServiceError):
    """A fenced-off leader tried to write — the split-brain guard.

    Every journal frame and every cluster mutation is stamped with the
    writing leader's epoch (its fencing token).  Once a newer epoch has
    been promised by a quorum, writes stamped with an older epoch are
    rejected with this error instead of being applied, so a deposed
    leader that does not yet know it lost can never corrupt the layout.
    """

    def __init__(self, message: str, *, epoch: int = 0, fence: int = 0) -> None:
        super().__init__(message)
        self.epoch = epoch
        self.fence = fence


class DeadlineExceeded(ServiceError):
    """A job's deadline or timeout expired before it could complete.

    Carries enough context to attribute the cancellation: whether the job
    was still queued or already running, and the limit that fired.
    """

    def __init__(
        self,
        message: str,
        *,
        job_id: str = "",
        tenant: str = "",
        limit_s: float = 0.0,
        while_running: bool = False,
    ) -> None:
        super().__init__(message)
        self.job_id = job_id
        self.tenant = tenant
        self.limit_s = limit_s
        self.while_running = while_running
