"""Experiment drivers: one module per paper figure/table.

Each driver exposes a ``run_*`` function returning a result dataclass with
a ``format()`` method that prints the same rows/series the paper reports.
Examples and benchmarks call these drivers; they contain *no* measurement
logic of their own — everything comes from the library layers below.

Driver map (see DESIGN.md section 4 for the full experiment index):

========  =====================================================
Fig. 1    :func:`repro.experiments.fig1.run_fig1`
Fig. 2    :func:`repro.experiments.fig2.run_fig2`
Table I   :func:`repro.experiments.table1.run_table1`
Fig. 5    :func:`repro.experiments.fig5.run_fig5`
Fig. 6    :func:`repro.experiments.fig6.run_fig6`
Fig. 7    :func:`repro.experiments.fig7.run_fig7`
Fig. 8    :func:`repro.experiments.fig8.run_fig8`
§V-A.4    :func:`repro.experiments.migration.run_migration`
Rebalance :func:`repro.experiments.rebalance.run_rebalance_comparison`
Table II  :func:`repro.experiments.table2.run_table2`
Fig. 9    :func:`repro.experiments.fig9.run_fig9`
Fig. 10   :func:`repro.experiments.fig10.run_fig10`
Ablations :mod:`repro.experiments.ablations`
========  =====================================================
"""

from .config import ReferenceConfig, MovieEnvironment, build_movie_environment

__all__ = ["ReferenceConfig", "MovieEnvironment", "build_movie_environment"]
