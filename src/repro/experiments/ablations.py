"""Ablations of DataNet's design choices (DESIGN.md section 6).

Not figures from the paper — these probe the *why* behind its design:

- :func:`run_bucket_ablation` — Fibonacci vs uniform vs geometric bucket
  boundaries at equal bucket count.
- :func:`run_scheduler_ablation` — stock locality vs Algorithm 1 vs the
  Ford-Fulkerson optimal vs the fractional lower bound.
- :func:`run_io_skip_ablation` — the I/O saved by skipping blocks the
  ElasticMap proves empty of the target.
- :func:`run_bloom_eps_ablation` — Bloom error rate vs metadata size vs
  accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.bucketizer import BucketSpec
from ..core.builder import ElasticMapBuilder
from ..core.datanet import DataNet
from ..core.elasticmap import MemoryModel
from ..core.flow import fractional_optimum, optimal_assignment
from ..mapreduce.apps import word_count_job
from ..mapreduce.scheduler import LocalityScheduler
from ..metrics.reporting import format_table
from ..units import KiB
from .config import ReferenceConfig, build_movie_environment

__all__ = [
    "run_bucket_ablation",
    "run_scheduler_ablation",
    "run_io_skip_ablation",
    "run_bloom_eps_ablation",
    "run_tail_store_ablation",
    "run_aggregation_ablation",
    "run_speculation_ablation",
    "AblationTable",
]


@dataclass
class AblationTable:
    """Generic (headers, rows) ablation outcome with a printable form."""

    title: str
    headers: List[str]
    rows: List[List[object]]

    def format(self) -> str:
        return format_table(self.headers, self.rows, title=self.title)

    def column(self, name: str) -> List[object]:
        """Values of one column, by header name."""
        idx = self.headers.index(name)
        return [row[idx] for row in self.rows]


def run_bucket_ablation(
    config: Optional[ReferenceConfig] = None, *, alpha: float = 0.3
) -> AblationTable:
    """Compare bucket-boundary families at the same bucket count.

    Quality = accuracy χ of the resulting ElasticMap and realized α drift
    from the requested α (whole buckets only — finer cutoffs track the
    request better).
    """
    env = build_movie_environment(config)
    all_ids = env.dataset.subdataset_ids()
    raw = env.dataset.total_bytes
    base = max(16, env.config.block_size // 1024)
    specs = {
        "fibonacci": BucketSpec.for_block_size(env.config.block_size),
        "uniform": BucketSpec.uniform(step=4 * base, count=10),
        "geometric": BucketSpec.geometric(base=base, ratio=1.66, count=10),
    }
    rows: List[List[object]] = []
    for name, spec in specs.items():
        builder = ElasticMapBuilder(alpha=alpha, spec=spec)
        array = builder.build(env.dataset.scan_blocks())
        rows.append(
            [
                name,
                f"{builder.stats.mean_alpha:.2f}",
                f"{abs(builder.stats.mean_alpha - alpha):.2f}",
                f"{array.accuracy(all_ids, raw):.3f}",
                f"{array.memory_bytes() / 1024:.1f}",
            ]
        )
    return AblationTable(
        title=f"Bucket-boundary ablation (requested alpha={alpha})",
        headers=["spec", "realized alpha", "alpha drift", "accuracy", "meta KiB"],
        rows=rows,
    )


def run_scheduler_ablation(config: Optional[ReferenceConfig] = None) -> AblationTable:
    """Max/mean workload of each scheduling strategy on the reference target."""
    env = build_movie_environment(config)
    graph = env.datanet.bipartite_graph(env.target, skip_absent=False)
    strategies = {
        "locality (stock Hadoop)": LocalityScheduler().schedule(graph),
        "Algorithm 1 (greedy)": env.datanet.schedule(env.target, skip_absent=False),
        "Ford-Fulkerson (optimal)": optimal_assignment(graph),
    }
    bound = fractional_optimum(graph)
    rows: List[List[object]] = []
    for name, assignment in strategies.items():
        rows.append(
            [
                name,
                f"{assignment.max_workload / KiB:.1f}",
                f"{assignment.imbalance:.2f}",
                f"{assignment.locality_fraction:.1%}",
            ]
        )
    rows.append(["fractional lower bound", f"{bound / KiB:.1f}", "1.00", "-"])
    return AblationTable(
        title="Scheduler ablation — max node workload (KiB of target sub-dataset)",
        headers=["strategy", "max workload KiB", "imbalance", "locality"],
        rows=rows,
    )


def run_io_skip_ablation(config: Optional[ReferenceConfig] = None) -> AblationTable:
    """Selection-phase I/O with and without ElasticMap block skipping."""
    env = build_movie_environment(config)
    job = word_count_job()
    rows: List[List[object]] = []
    for label, skip in (("scan all blocks", False), ("skip absent (ElasticMap)", True)):
        assignment = env.datanet.schedule(env.target, skip_absent=skip)
        selection = env.engine.run_selection(
            env.dataset, env.target, assignment, job.profile
        )
        rows.append(
            [
                label,
                selection.blocks_read,
                f"{selection.bytes_read / KiB:.0f}",
                f"{selection.makespan:.1f}",
            ]
        )
    return AblationTable(
        title="I/O-skipping ablation — selection phase cost",
        headers=["mode", "blocks read", "KiB read", "makespan (s)"],
        rows=rows,
    )


def run_tail_store_ablation(
    config: Optional[ReferenceConfig] = None, *, alpha: float = 0.3
) -> AblationTable:
    """Bloom-filter vs Count-Min tail store (design-space extension).

    The paper's Bloom tail records only existence; the Count-Min variant
    (:mod:`repro.core.sketchmap`) records approximate tail *sizes*.  This
    ablation measures what the extra bits buy: overall accuracy chi and
    the mean per-movie estimate error for the tail-resident population.
    """
    env = build_movie_environment(config)
    all_ids = env.dataset.subdataset_ids()
    truth = env.dataset.subdataset_sizes()
    raw = env.dataset.total_bytes
    rows: List[List[object]] = []
    for store in ("bloom", "countmin"):
        builder = ElasticMapBuilder(
            alpha=alpha, spec=env.config.bucket_spec(), tail_store=store
        )
        array = builder.build(env.dataset.scan_blocks())
        # mean relative error over the smaller half of sub-datasets (the
        # population that actually lives in the tail store)
        ordered = sorted(all_ids, key=lambda s: truth[s])
        tail_half = ordered[: len(ordered) // 2]
        errs = [
            abs(array.estimate_total_size(sid) - truth[sid]) / truth[sid]
            for sid in tail_half
            if truth[sid] > 0
        ]
        rows.append(
            [
                store,
                f"{array.memory_bytes() / 1024:.1f}",
                f"{array.accuracy(all_ids, raw):.3f}",
                f"{sum(errs) / len(errs):.2f}" if errs else "-",
            ]
        )
    return AblationTable(
        title=f"Tail-store ablation (alpha={alpha})",
        headers=["tail store", "meta KiB", "accuracy", "tail mean rel. err"],
        rows=rows,
    )


def run_aggregation_ablation(
    config: Optional[ReferenceConfig] = None,
) -> AblationTable:
    """Shuffle traffic with hash vs co-located reducer placement.

    Uses the balanced (DataNet) map phase, where the shuffle is fetch-
    rather than straggler-bound, so the transfer saving is visible in both
    bytes and seconds.  Implements the paper's future-work "minimize the
    data transferred" direction (Section IV-B).
    """
    from ..core.aggregation import plan_greedy, plan_optimal

    env = build_movie_environment(config)
    job = word_count_job()
    assignment = env.datanet.schedule(env.target, skip_absent=False)
    selection = env.engine.run_selection(
        env.dataset, env.target, assignment, job.profile
    )
    plain = env.engine.run_analysis(job, selection.local_data)
    coloc = env.engine.run_analysis(
        job, selection.local_data, colocate_reducers=True
    )

    # Re-derive the per-node per-reducer volumes for the byte accounting.
    volumes: dict = {}
    for node, records in selection.local_data.items():
        parts = volumes.setdefault(node, {})
        emitted: dict = {}
        for record in records:
            for k, v in job.run_mapper(record):
                emitted.setdefault(k, []).append(v)
        for k, values in emitted.items():
            for ck, cv in job.run_combiner(k, values):
                r = job.partition(ck)
                parts[r] = parts.get(r, 0) + len(repr(ck)) + len(repr(cv)) + 8
    greedy = plan_greedy(volumes)
    optimal = plan_optimal(volumes)
    rows: List[List[object]] = [
        [
            "hash placement (baseline)",
            f"{greedy.baseline_transfer / KiB:.1f}",
            f"{plain.shuffle.mean:.2f}",
        ],
        [
            "co-located (greedy)",
            f"{greedy.transfer / KiB:.1f}",
            f"{coloc.shuffle.mean:.2f}",
        ],
        [
            "co-located (Hungarian)",
            f"{optimal.transfer / KiB:.1f}",
            "-",
        ],
    ]
    return AblationTable(
        title="Aggregation-transfer ablation — word_count shuffle volume",
        headers=["placement", "shuffle KiB", "shuffle avg (s)"],
        rows=rows,
    )


def run_speculation_ablation(
    config: Optional[ReferenceConfig] = None,
) -> AblationTable:
    """Speculative execution vs DataNet on the imbalanced map phase.

    Hadoop's own straggler defense re-runs slow tasks elsewhere; for
    *data-imbalance* stragglers the backup re-processes the same oversized
    input, so it recovers little — while DataNet removes the imbalance
    before launch.
    """
    from ..mapreduce.speculative import SpeculativeExecutor
    from ..sim import SimTask
    from ..sim.speculation import SpeculativeSimulator
    from .pipeline import run_reference_pipeline

    pipe = run_reference_pipeline(config)
    base_maps = pipe.without_datanet.jobs["top_k_search"].map_times
    aware_maps = pipe.with_datanet.jobs["top_k_search"].map_times
    spec = SpeculativeExecutor().run(base_maps)
    # dynamic variant: replay the same map phase through the event-driven
    # simulator with backups injected at the median finish
    dyn = SpeculativeSimulator(slots_per_node=2).run(
        SimTask(task_id=f"map/{n}", node=n, duration=d, kind="map")
        for n, d in base_maps.items()
    )
    rows: List[List[object]] = [
        ["stock locality", f"{max(base_maps.values()):.1f}", "-"],
        [
            "stock + speculation (analytic)",
            f"{spec.makespan:.1f}",
            f"{spec.wasted_seconds:.1f}",
        ],
        [
            "stock + speculation (event-driven)",
            f"{dyn.makespan:.1f}",
            f"{dyn.wasted_seconds:.1f}",
        ],
        ["DataNet (Algorithm 1)", f"{max(aware_maps.values()):.1f}", "0.0"],
    ]
    return AblationTable(
        title="Speculation ablation — top_k_search map makespan (s)",
        headers=["strategy", "map makespan (s)", "wasted work (s)"],
        rows=rows,
    )


def run_bloom_eps_ablation(
    config: Optional[ReferenceConfig] = None,
    *,
    error_rates: Sequence[float] = (0.001, 0.01, 0.05, 0.2),
    alpha: float = 0.3,
) -> AblationTable:
    """Bloom-filter error rate vs metadata footprint vs accuracy."""
    env = build_movie_environment(config)
    all_ids = env.dataset.subdataset_ids()
    raw = env.dataset.total_bytes
    rows: List[List[object]] = []
    for eps in error_rates:
        model = MemoryModel(bloom_error_rate=eps)
        builder = ElasticMapBuilder(
            alpha=alpha, spec=env.config.bucket_spec(), memory_model=model
        )
        array = builder.build(env.dataset.scan_blocks())
        rows.append(
            [
                f"{eps:g}",
                f"{array.memory_bytes() / 1024:.1f}",
                f"{array.accuracy(all_ids, raw):.3f}",
                f"{array.representation_ratio(raw):.0f}",
            ]
        )
    return AblationTable(
        title=f"Bloom error-rate ablation (alpha={alpha})",
        headers=["eps", "meta KiB", "accuracy", "ratio"],
        rows=rows,
    )
