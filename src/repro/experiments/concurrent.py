"""Concurrent multi-job workloads on the event-driven simulator.

The paper evaluates its four analysis jobs one at a time; a production
cluster runs them together.  This experiment replays the full workload —
one shared selection pass, then all four analysis jobs submitted
simultaneously and contending for node slots — under both scheduling
methods, using :mod:`repro.sim`.  Contention *compounds* imbalance: a hot
node delays every job's maps, so DataNet's balanced placement helps the
batch more than it helps any single job.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..mapreduce.scheduler import LocalityScheduler
from ..metrics.balance import improvement
from ..metrics.reporting import format_table
from ..serve.admission import AdmissionController, TenantSpec
from ..sim import DiscreteEventSimulator, JobGraphBuilder, TaskTimeline
from .config import ReferenceConfig, build_movie_environment
from .pipeline import _jobs_for

__all__ = ["ConcurrentResult", "run_concurrent"]


@dataclass
class ConcurrentResult:
    """Batch timings for both scheduling methods."""

    batch_makespan: Dict[str, float]  # method -> all-jobs completion
    job_spans: Dict[str, Dict[str, float]]  # method -> job -> duration
    utilization: Dict[str, float]
    timelines: Dict[str, TaskTimeline]

    @property
    def batch_improvement(self) -> float:
        return improvement(
            self.batch_makespan["without"], self.batch_makespan["with"]
        )

    def format(self) -> str:
        rows = []
        jobs = sorted(self.job_spans["without"])
        for job in jobs:
            rows.append(
                [
                    job,
                    f"{self.job_spans['without'][job]:.1f}",
                    f"{self.job_spans['with'][job]:.1f}",
                    f"{improvement(self.job_spans['without'][job], self.job_spans['with'][job]):.1%}",
                ]
            )
        rows.append(
            [
                "BATCH (all jobs)",
                f"{self.batch_makespan['without']:.1f}",
                f"{self.batch_makespan['with']:.1f}",
                f"{self.batch_improvement:.1%}",
            ]
        )
        table = format_table(
            ["job", "without (s)", "with (s)", "improvement"],
            rows,
            title="Concurrent batch — four analysis jobs sharing the cluster",
        )
        return table + (
            f"\ncluster utilization: {self.utilization['without']:.0%} -> "
            f"{self.utilization['with']:.0%}"
        )


def run_concurrent(
    config: Optional[ReferenceConfig] = None, *, slots_per_node: int = 2
) -> ConcurrentResult:
    """Simulate the four-job batch under both scheduling methods."""
    cfg = config or ReferenceConfig()
    env = build_movie_environment(cfg)
    graph = env.datanet.bipartite_graph(env.target, skip_absent=False)
    assignments = {
        "without": LocalityScheduler().schedule(graph),
        "with": env.datanet.schedule(env.target, skip_absent=False),
    }

    batch_makespan: Dict[str, float] = {}
    job_spans: Dict[str, Dict[str, float]] = {}
    utilization: Dict[str, float] = {}
    timelines: Dict[str, TaskTimeline] = {}
    for method, assignment in assignments.items():
        builder = JobGraphBuilder(env.engine.cost)
        jobs = _jobs_for(cfg)
        any_profile = next(iter(jobs.values())).profile
        sel_ids, local_data = builder.add_selection(
            "select", env.dataset, env.target, assignment, any_profile
        )
        # The batch enters through the same admission queue the service
        # uses; with one tenant and equal weights the fair drain preserves
        # submission order, so the task graph is unchanged.
        controller: AdmissionController = AdmissionController(
            [TenantSpec("batch")], high_water=max(4, len(jobs))
        )
        for label, job in jobs.items():
            controller.submit("batch", (label, job), 0.0)
        for _tenant, (label, job) in controller.queue.drain():
            builder.add_analysis(label, job, local_data, deps=sel_ids)
        sim = DiscreteEventSimulator(slots_per_node=slots_per_node)
        result = sim.run(builder.tasks)
        tl = result.timeline
        batch_makespan[method] = result.makespan
        job_spans[method] = {
            label: tl.job_span(label)[1] - tl.job_span(label)[0]
            for label in jobs
        }
        utilization[method] = tl.utilization(env.cluster.nodes, slots_per_node)
        timelines[method] = tl
    return ConcurrentResult(
        batch_makespan=batch_makespan,
        job_spans=job_spans,
        utilization=utilization,
        timelines=timelines,
    )
