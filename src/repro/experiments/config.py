"""Reference experiment configuration and environment construction.

The paper's testbed: 32 worker nodes (of Marmot's 128), HDFS with 3-way
replication and 64 MB blocks, a chronological movie-review dataset of 256
blocks, ElasticMap ``alpha = 0.3``.

Scaling: blocks are stored at 64 KiB and the cost model's
``data_scale=1024`` makes each behave as 64 MB, so the full experiment
suite runs in seconds while timing ratios match the full-size system.
The movie workload parameters (Zipf 0.95, Γ(0.9, 18) arrival offsets) are
calibrated so the reference sub-dataset reproduces the paper's imbalance
regime: without DataNet max/mean ≈ 1.8-2.1 at 32 nodes, with DataNet
≈ 1.1-1.2.  The default seed (99) is the released reference run; other
seeds keep the ordering and the 4-6x shuffle gap but the improvement
percentages move by several points, as any placement-sensitive cluster
experiment does.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

import numpy as np

from ..coding import CodingSpec, validate_coding
from ..core.bucketizer import BucketSpec
from ..core.datanet import DataNet
from ..errors import ConfigError
from ..hdfs.cluster import DatasetView, HDFSCluster
from ..mapreduce.costmodel import ClusterCostModel
from ..mapreduce.engine import MapReduceEngine
from ..units import KiB
from ..workloads.clustering import GammaArrivalModel
from ..workloads.movielens import MovieLensGenerator, most_popular

__all__ = ["ReferenceConfig", "MovieEnvironment", "build_movie_environment"]


@dataclass(frozen=True)
class ReferenceConfig:
    """All knobs of the reference (paper Section V) experiment setup."""

    seed: int = 99
    num_nodes: int = 32
    block_size: int = 64 * KiB
    replication: int = 3
    #: optional (k, m) erasure coding; replaces replication when set.
    coding: Optional[CodingSpec] = None
    data_scale: float = 1024.0  # 64 KiB stored block behaves as 64 MB
    # movie workload (calibrated; see module docstring)
    num_movies: int = 1500
    total_reviews: int = 300_000
    duration_days: float = 150.0
    zipf_s: float = 0.95
    gamma_k: float = 0.9
    gamma_theta: float = 18.0
    # DataNet
    alpha: float = 0.3
    # analysis
    topk_query: str = "great movie amazing plot wonderful acting"
    #: "demonstrative" scans the most-reviewed movies and picks the one
    #: whose stock-scheduled workload is most imbalanced relative to what
    #: Algorithm 1 achieves (the paper studies "a certain movie" chosen to
    #: exhibit the problem); an integer picks the n-th most popular movie.
    target_policy: str | int = "demonstrative"
    target_candidates: int = 12

    def __post_init__(self) -> None:
        if self.num_nodes <= 0 or self.block_size <= 0:
            raise ConfigError("num_nodes and block_size must be positive")
        if not (0.0 <= self.alpha <= 1.0):
            raise ConfigError("alpha must be in [0, 1]")
        if self.coding is not None:
            validate_coding(self.coding, self.num_nodes)

    @classmethod
    def small(cls, **overrides) -> "ReferenceConfig":
        """A fast-variant config for unit tests (seconds → milliseconds)."""
        base = cls(
            num_nodes=8,
            num_movies=200,
            total_reviews=20_000,
            duration_days=60.0,
        )
        return replace(base, **overrides)

    def cost_model(self) -> ClusterCostModel:
        """The cluster cost model at this config's data scale."""
        return ClusterCostModel(data_scale=self.data_scale)

    def bucket_spec(self) -> BucketSpec:
        """Fibonacci buckets proportioned to this config's block size."""
        return BucketSpec.for_block_size(self.block_size)


@dataclass
class MovieEnvironment:
    """A fully built reference environment, shared across experiment drivers."""

    config: ReferenceConfig
    cluster: HDFSCluster
    dataset: DatasetView
    target: str
    datanet: DataNet
    engine: MapReduceEngine

    @property
    def target_total_bytes(self) -> int:
        """Ground-truth size of the target sub-dataset."""
        return self.dataset.subdataset_total_bytes(self.target)


# One environment per config is plenty: generation + scan cost a few
# seconds at reference size, and every fig5/6/7 bench shares them.
_ENV_CACHE: Dict[ReferenceConfig, MovieEnvironment] = {}


def _pick_demonstrative_target(
    dataset: DatasetView, datanet: DataNet, candidates: int
) -> str:
    """Pick the popular movie whose analysis best exhibits the paper's problem.

    Scores each of the ``candidates`` largest movies by the ratio of the
    stock locality scheduler's *ground-truth* workload imbalance to
    Algorithm 1's — i.e. how much imbalance stock scheduling causes *and*
    DataNet can actually remove — restricted to movies holding at least
    1 % of the dataset (so analysis time is non-trivial).  Mirrors the
    paper's choice of "a certain movie" that demonstrates the phenomenon.
    """
    from ..mapreduce.scheduler import LocalityScheduler

    sizes = dataset.subdataset_sizes()
    ranked = sorted(sizes, key=sizes.get, reverse=True)[:candidates]
    floor = 0.01 * dataset.total_bytes
    best_sid = ranked[0]
    best_score = -1.0
    for sid in ranked:
        if sizes[sid] < floor:
            continue
        truth = dataset.subdataset_bytes_per_block(sid)
        total = sum(truth.values())
        if total == 0:
            continue
        graph = datanet.bipartite_graph(sid, skip_absent=False)
        base = LocalityScheduler().schedule(graph)
        aware = datanet.schedule(sid, skip_absent=False)
        def true_max(assignment) -> float:
            return max(
                sum(truth.get(b, 0) for b in blocks)
                for blocks in assignment.blocks_by_node.values()
            )

        score = true_max(base) / max(true_max(aware), 1e-9)
        if score > best_score:
            best_score = score
            best_sid = sid
    return best_sid


def build_movie_environment(
    config: Optional[ReferenceConfig] = None, *, use_cache: bool = True
) -> MovieEnvironment:
    """Generate, store and index the reference movie dataset.

    Steps: seed RNG → generate the chronological review stream → write it
    to the simulated HDFS (random 3-way placement) → build the ElasticMap
    with the config's ``alpha`` (the single scan) → stand up the engine.
    """
    cfg = config or ReferenceConfig()
    if use_cache and cfg in _ENV_CACHE:
        return _ENV_CACHE[cfg]
    rng = np.random.default_rng(cfg.seed)
    cluster = HDFSCluster(
        num_nodes=cfg.num_nodes,
        block_size=cfg.block_size,
        replication=cfg.replication,
        rng=rng,
        coding=cfg.coding,
    )
    generator = MovieLensGenerator(
        num_movies=cfg.num_movies,
        total_reviews=cfg.total_reviews,
        duration_days=cfg.duration_days,
        zipf_s=cfg.zipf_s,
        arrival=GammaArrivalModel(cfg.gamma_k, cfg.gamma_theta),
        rng=rng,
    )
    records = generator.generate()
    dataset = cluster.write_dataset("movielens", records)
    datanet = DataNet.build(dataset, alpha=cfg.alpha, spec=cfg.bucket_spec())
    if isinstance(cfg.target_policy, int):
        target = most_popular(records, rank=cfg.target_policy)
    elif cfg.target_policy == "demonstrative":
        target = _pick_demonstrative_target(dataset, datanet, cfg.target_candidates)
    else:
        raise ConfigError(f"unknown target_policy: {cfg.target_policy!r}")
    engine = MapReduceEngine(cluster, cfg.cost_model())
    env = MovieEnvironment(
        config=cfg,
        cluster=cluster,
        dataset=dataset,
        target=target,
        datanet=datanet,
        engine=engine,
    )
    if use_cache:
        _ENV_CACHE[cfg] = env
    return env
