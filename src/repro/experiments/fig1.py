"""Figure 1: the motivating observation.

(a) One movie's data is clustered into a small run of chronological HDFS
blocks; (b) block-granularity locality scheduling therefore lands wildly
different filtered workloads on the cluster nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..mapreduce.scheduler import LocalityScheduler
from ..metrics.balance import imbalance_ratio
from ..metrics.reporting import format_kv, format_table
from ..units import KiB
from .config import ReferenceConfig, build_movie_environment

__all__ = ["Fig1Result", "run_fig1"]


@dataclass
class Fig1Result:
    """Reproduced series for Figure 1.

    Attributes:
        block_series: target sub-dataset KiB per chronological block
            (Fig. 1a's bars; zero blocks included to show the shape).
        node_workloads: filtered sub-dataset KiB per node under stock
            locality scheduling (Fig. 1b's bars).
    """

    target: str
    block_series: List[float]
    node_workloads: Dict[int, float]

    @property
    def concentration_30(self) -> float:
        """Fraction of the sub-dataset inside its densest 30 blocks
        (the paper: "the first 30 blocks contain ... most of our data")."""
        total = sum(self.block_series)
        if not total:
            return 0.0
        top = sorted(self.block_series, reverse=True)[:30]
        return sum(top) / total

    @property
    def workload_imbalance(self) -> float:
        """max/mean of the per-node workloads."""
        return imbalance_ratio(self.node_workloads.values())

    def format(self) -> str:
        nonzero = sum(1 for v in self.block_series if v > 0)
        head = format_kv(
            {
                "target sub-dataset": self.target,
                "blocks total": len(self.block_series),
                "blocks containing target": nonzero,
                "share in densest 30 blocks": f"{self.concentration_30:.1%}",
                "node workload imbalance (max/mean)": f"{self.workload_imbalance:.2f}",
            },
            title="Figure 1 — content clustering and the resulting imbalance",
        )
        rows = [
            [node, f"{kib:.1f}"] for node, kib in sorted(self.node_workloads.items())
        ]
        table = format_table(
            ["node", "filtered KiB"], rows, title="\nFig. 1b — workload per node"
        )
        return head + "\n" + table


def run_fig1(config: Optional[ReferenceConfig] = None) -> Fig1Result:
    """Reproduce both panels of Figure 1 on the reference environment."""
    env = build_movie_environment(config)
    per_block = env.dataset.subdataset_bytes_per_block(env.target)
    series = [
        per_block.get(bid, 0) / KiB for bid in env.dataset.block_ids
    ]
    graph = env.datanet.bipartite_graph(env.target, skip_absent=False)
    assignment = LocalityScheduler().schedule(graph)
    workloads = {
        node: load / KiB for node, load in assignment.workload_by_node.items()
    }
    return Fig1Result(
        target=env.target, block_series=series, node_workloads=workloads
    )
