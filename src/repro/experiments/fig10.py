"""Figure 10: degree of balanced computing as α varies.

The paper sweeps the hash-map fraction α from ~10 % to 100 % and plots the
max/min/avg node workload (normalized) plus the standard deviation under
distribution-aware scheduling.  Finding: "with only about 15 % of the
sub-datasets recorded in the hash map, DataNet is able to achieve a
satisfactory workload balance ... changing the percentage from 15 to 100
will have little effect" — the dominant sub-datasets are what matter, and
a small hash map already captures them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..core.builder import ElasticMapBuilder
from ..core.datanet import DataNet
from ..metrics.balance import BalanceSummary, summarize
from ..metrics.reporting import format_table
from .config import ReferenceConfig, build_movie_environment

__all__ = ["Fig10Result", "run_fig10"]


@dataclass
class Fig10Result:
    """Balance statistics per α (workloads normalized to the global max)."""

    summaries: Dict[float, BalanceSummary]  # requested alpha -> normalized stats
    realized_alphas: Dict[float, float]

    def stable_after(self, threshold_alpha: float = 0.15, tol: float = 0.1) -> bool:
        """True when max workload changes < tol beyond ``threshold_alpha``
        (the paper's 15 % finding)."""
        points = sorted(a for a in self.summaries if a >= threshold_alpha)
        if len(points) < 2:
            return True
        maxes = [self.summaries[a].maximum for a in points]
        return max(maxes) - min(maxes) <= tol

    def format(self) -> str:
        rows = [
            [
                f"{alpha:.0%}",
                f"{self.realized_alphas[alpha]:.0%}",
                f"{s.maximum:.2f}",
                f"{s.minimum:.2f}",
                f"{s.mean:.2f}",
                f"{s.std:.3f}",
            ]
            for alpha, s in sorted(self.summaries.items())
        ]
        return format_table(
            ["alpha", "realized", "max", "min", "avg", "std"],
            rows,
            title=(
                "Figure 10 — workload balance vs alpha (normalized; "
                "paper: stable beyond ~15%, max~0.9 min~0.7)"
            ),
        )


def run_fig10(
    config: Optional[ReferenceConfig] = None,
    *,
    alphas: Sequence[float] = (0.05, 0.10, 0.15, 0.22, 0.34, 0.46, 0.58, 0.70, 0.85, 1.0),
) -> Fig10Result:
    """Rebuild ElasticMap per α, schedule with Algorithm 1, summarize balance."""
    env = build_movie_environment(config)
    raw_summaries: Dict[float, BalanceSummary] = {}
    realized: Dict[float, float] = {}
    for alpha in alphas:
        builder = ElasticMapBuilder(alpha=alpha, spec=env.config.bucket_spec())
        array = builder.build(env.dataset.scan_blocks())
        datanet = DataNet(
            array, env.dataset.placement(), nodes=env.dataset.nodes
        )
        assignment = datanet.schedule(env.target, skip_absent=False)
        # Balance is judged on the *true* per-node filtered bytes, not the
        # (approximate) metadata weights the scheduler saw.
        truth = env.dataset.subdataset_bytes_per_block(env.target)
        loads = [
            float(sum(truth.get(b, 0) for b in blocks))
            for blocks in assignment.blocks_by_node.values()
        ]
        raw_summaries[alpha] = summarize(loads)
        realized[alpha] = builder.stats.mean_alpha
    global_max = max(s.maximum for s in raw_summaries.values())
    summaries = {
        alpha: s.normalized(global_max) for alpha, s in raw_summaries.items()
    }
    return Fig10Result(summaries=summaries, realized_alphas=realized)
