"""Figure 2: extreme-workload probability grows with cluster size.

Reproduces the four analytic curves with the paper's parameters
(k=1.2, θ=7, n=512) plus the text's expected extreme-node counts at
m=128, and cross-checks the closed form against a Monte-Carlo block deal.

Note on the paper's text: it quotes expected counts "less than 1/2·E(Z)
and 1/3·E(Z) are 3.9 and 1.5".  With the stated parameters the exact
values are P(Z<E/3)·128 = 3.9 and P(Z<E/4)·128 = 1.35, while the >2E
count matches exactly (4.0) — the under-loaded fractions in the text
appear shifted by one step.  We report both readings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..metrics.reporting import format_table
from ..theory.gamma_model import Fig2Point, WorkloadModel, fig2_curves

__all__ = ["Fig2Result", "run_fig2"]


@dataclass
class Fig2Result:
    """Reproduced curves and the expected extreme-node counts."""

    curves: Dict[str, List[Fig2Point]]
    expected_counts_m128: Dict[str, float]
    monte_carlo_counts_m128: Dict[str, float]

    def format(self) -> str:
        sizes = [8, 32, 64, 128, 256, 384]
        by_size = {
            label: {p.num_nodes: p.probability for p in points}
            for label, points in self.curves.items()
        }
        rows = []
        for m in sizes:
            rows.append(
                [m]
                + [f"{by_size[label].get(m, float('nan')):.4f}" for label in by_size]
            )
        table = format_table(
            ["m"] + list(by_size.keys()),
            rows,
            title="Figure 2 — P(extreme workload) vs cluster size (k=1.2, θ=7, n=512)",
        )
        rows2 = [
            [label, f"{analytic:.2f}", f"{self.monte_carlo_counts_m128[label]:.2f}"]
            for label, analytic in self.expected_counts_m128.items()
        ]
        table2 = format_table(
            ["quantity (m=128)", "analytic", "monte-carlo"],
            rows2,
            title="\nExpected extreme-node counts at m=128",
        )
        return table + "\n" + table2


def run_fig2(
    *,
    cluster_sizes: Sequence[int] = tuple(range(2, 385, 2)),
    mc_trials: int = 400,
    seed: int = 0,
) -> Fig2Result:
    """Compute the Figure 2 curves and validate them by simulation."""
    model = WorkloadModel(k=1.2, theta=7.0, num_blocks=512)
    curves = fig2_curves(model, cluster_sizes)

    m = 128
    analytic = {
        "E[#nodes < E/2]": model.expected_nodes_below(m, 0.5),
        "E[#nodes < E/3] (paper's 3.9)": model.expected_nodes_below(m, 1 / 3),
        "E[#nodes < E/4] (paper's 1.5)": model.expected_nodes_below(m, 0.25),
        "E[#nodes > 2E] (paper's 4.0)": model.expected_nodes_above(m, 2.0),
    }
    rng = np.random.default_rng(seed)
    counts = {label: 0.0 for label in analytic}
    for _ in range(mc_trials):
        loads = model.sample_node_workloads(m, rng)
        mean = loads.mean()
        counts["E[#nodes < E/2]"] += float((loads < mean / 2).sum())
        counts["E[#nodes < E/3] (paper's 3.9)"] += float((loads < mean / 3).sum())
        counts["E[#nodes < E/4] (paper's 1.5)"] += float((loads < mean / 4).sum())
        counts["E[#nodes > 2E] (paper's 4.0)"] += float((loads > 2 * mean).sum())
    mc = {label: total / mc_trials for label, total in counts.items()}
    return Fig2Result(
        curves=curves, expected_counts_m128=analytic, monte_carlo_counts_m128=mc
    )
