"""Figure 5: the headline comparison on the 32-node cluster.

(a) overall execution time of the four analysis jobs with/without DataNet
    (paper improvements: MovingAverage 20 %, WordCount 39.1 %,
    Histogram 40.6 %, TopKSearch 42 %);
(b) the target sub-dataset's distribution over HDFS blocks;
(c) the filtered workload per node under both scheduling methods.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..metrics.balance import imbalance_ratio
from ..metrics.reporting import format_table
from ..units import KiB
from .config import ReferenceConfig
from .pipeline import APP_ORDER, ReferencePipeline, run_reference_pipeline

__all__ = ["Fig5Result", "run_fig5", "PAPER_IMPROVEMENTS"]

#: The improvements reported in the paper's text for Fig. 5a.
PAPER_IMPROVEMENTS: Dict[str, float] = {
    "moving_average": 0.20,
    "word_count": 0.391,
    "histogram": 0.406,
    "top_k_search": 0.42,
}


@dataclass
class Fig5Result:
    """All three panels of Figure 5."""

    overall: Dict[str, Dict[str, float]]  # app -> {without, with, improvement}
    block_series: List[float]  # Fig. 5b: target KiB per block
    node_workloads_without: Dict[object, float]  # Fig. 5c, KiB
    node_workloads_with: Dict[object, float]

    @property
    def imbalance_without(self) -> float:
        return imbalance_ratio(self.node_workloads_without.values())

    @property
    def imbalance_with(self) -> float:
        return imbalance_ratio(self.node_workloads_with.values())

    def format(self) -> str:
        rows = [
            [
                app,
                f"{self.overall[app]['without']:.1f}",
                f"{self.overall[app]['with']:.1f}",
                f"{self.overall[app]['improvement']:.1%}",
                f"{PAPER_IMPROVEMENTS[app]:.1%}",
            ]
            for app in APP_ORDER
        ]
        t1 = format_table(
            ["application", "without (s)", "with (s)", "improvement", "paper"],
            rows,
            title="Figure 5a — overall execution time of the analysis jobs",
        )
        nonzero = sum(1 for v in self.block_series if v > 0)
        t2 = (
            f"\nFigure 5b — target over {len(self.block_series)} blocks: "
            f"{nonzero} blocks hold data, densest block "
            f"{max(self.block_series):.1f} KiB"
        )
        rows3 = [
            [
                node,
                f"{self.node_workloads_without[node]:.1f}",
                f"{self.node_workloads_with[node]:.1f}",
            ]
            for node in sorted(self.node_workloads_without)
        ]
        t3 = format_table(
            ["node", "without KiB", "with KiB"],
            rows3,
            title=(
                f"\nFigure 5c — filtered workload per node "
                f"(imbalance {self.imbalance_without:.2f} -> "
                f"{self.imbalance_with:.2f})"
            ),
        )
        return t1 + t2 + "\n" + t3


def run_fig5(config: Optional[ReferenceConfig] = None) -> Fig5Result:
    """Reproduce all three panels from the shared reference pipeline."""
    pipe: ReferencePipeline = run_reference_pipeline(config)
    improvements = pipe.improvements()
    overall = {
        app: {
            "without": pipe.without_datanet.jobs[app].total_time,
            "with": pipe.with_datanet.jobs[app].total_time,
            "improvement": improvements[app],
        }
        for app in APP_ORDER
    }
    per_block = pipe.env.dataset.subdataset_bytes_per_block(pipe.env.target)
    series = [per_block.get(bid, 0) / KiB for bid in pipe.env.dataset.block_ids]
    return Fig5Result(
        overall=overall,
        block_series=series,
        node_workloads_without={
            n: b / KiB for n, b in pipe.without_datanet.selection.bytes_per_node.items()
        },
        node_workloads_with={
            n: b / KiB for n, b in pipe.with_datanet.selection.bytes_per_node.items()
        },
    )
