"""Figure 6: map execution time on the filtered sub-dataset.

(a) Top K Search per-node map times — the paper observes a 5 s fastest vs
    64 s slowest node without DataNet;
(b)/(c) min/avg/max map times for Moving Average vs Word Count — the
    min-max gap widens with computational weight.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..metrics.balance import BalanceSummary, summarize
from ..metrics.reporting import format_table
from .config import ReferenceConfig
from .pipeline import ReferencePipeline, run_reference_pipeline

__all__ = ["Fig6Result", "run_fig6"]


@dataclass
class Fig6Result:
    """Per-node map timings for the analysis jobs."""

    topk_map_times_without: Dict[object, float]  # Fig. 6a
    topk_map_times_with: Dict[object, float]
    summaries: Dict[str, Dict[str, BalanceSummary]]  # app -> method -> stats

    @property
    def topk_spread_without(self) -> float:
        """max/min of TopK map times without DataNet (paper: 64/5 ≈ 13x)."""
        vals = list(self.topk_map_times_without.values())
        return max(vals) / min(vals) if min(vals) > 0 else float("inf")

    def gap(self, app: str, method: str) -> float:
        """max - min map time (the Fig. 6b/c whisker width)."""
        s = self.summaries[app][method]
        return s.maximum - s.minimum

    def format(self) -> str:
        t1_rows = [
            [
                node,
                f"{self.topk_map_times_without[node]:.1f}",
                f"{self.topk_map_times_with[node]:.1f}",
            ]
            for node in sorted(self.topk_map_times_without)
        ]
        t1 = format_table(
            ["node", "without (s)", "with (s)"],
            t1_rows,
            title=(
                "Figure 6a — TopK map time per node "
                f"(spread without: {self.topk_spread_without:.1f}x)"
            ),
        )
        t2_rows = []
        for app in ("moving_average", "word_count", "top_k_search"):
            for method in ("without", "with"):
                s = self.summaries[app][method]
                t2_rows.append(
                    [
                        app,
                        method,
                        f"{s.minimum:.2f}",
                        f"{s.mean:.2f}",
                        f"{s.maximum:.2f}",
                    ]
                )
        t2 = format_table(
            ["application", "method", "min (s)", "avg (s)", "max (s)"],
            t2_rows,
            title="\nFigure 6b/c — map-time min/avg/max",
        )
        return t1 + "\n" + t2


def run_fig6(config: Optional[ReferenceConfig] = None) -> Fig6Result:
    """Extract Figure 6's views from the shared reference pipeline."""
    pipe: ReferencePipeline = run_reference_pipeline(config)
    summaries: Dict[str, Dict[str, BalanceSummary]] = {}
    for app in ("moving_average", "word_count", "histogram", "top_k_search"):
        summaries[app] = {
            "without": summarize(
                list(pipe.without_datanet.jobs[app].map_times.values())
            ),
            "with": summarize(list(pipe.with_datanet.jobs[app].map_times.values())),
        }
    return Fig6Result(
        topk_map_times_without=dict(
            pipe.without_datanet.jobs["top_k_search"].map_times
        ),
        topk_map_times_with=dict(pipe.with_datanet.jobs["top_k_search"].map_times),
        summaries=summaries,
    )
