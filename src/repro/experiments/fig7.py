"""Figure 7: shuffle-phase execution time comparison.

The paper: "the shuffle phase without the use of DataNet takes 4-5X longer
than with DataNet", and Top K Search's shuffle speedup exceeds Word
Count's because its map phase is longer (the straggler wait dominates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..metrics.balance import speedup
from ..metrics.reporting import format_table
from .config import ReferenceConfig
from .pipeline import ReferencePipeline, run_reference_pipeline

__all__ = ["Fig7Result", "run_fig7"]


@dataclass
class Fig7Result:
    """Shuffle min/avg/max per app and method, plus speedups."""

    stats: Dict[str, Dict[str, Dict[str, float]]]  # app -> method -> min/avg/max

    def speedup_of(self, app: str) -> float:
        """Mean-shuffle speedup of DataNet for one application."""
        return speedup(
            self.stats[app]["without"]["avg"], self.stats[app]["with"]["avg"]
        )

    def format(self) -> str:
        rows = []
        for app in ("word_count", "top_k_search"):
            for method in ("without", "with"):
                s = self.stats[app][method]
                rows.append(
                    [app, method, f"{s['min']:.2f}", f"{s['avg']:.2f}", f"{s['max']:.2f}"]
                )
            rows.append(
                [app, "speedup", f"{self.speedup_of(app):.1f}x", "", ""]
            )
        return format_table(
            ["application", "method", "min (s)", "avg (s)", "max (s)"],
            rows,
            title="Figure 7 — shuffle-phase execution times (paper: 4-5x)",
        )


def run_fig7(config: Optional[ReferenceConfig] = None) -> Fig7Result:
    """Extract Figure 7's shuffle statistics from the reference pipeline."""
    pipe: ReferencePipeline = run_reference_pipeline(config)
    stats: Dict[str, Dict[str, Dict[str, float]]] = {}
    for app in ("moving_average", "word_count", "histogram", "top_k_search"):
        stats[app] = {}
        for method, run in (
            ("without", pipe.without_datanet),
            ("with", pipe.with_datanet),
        ):
            sh = run.jobs[app].shuffle
            stats[app][method] = {"min": sh.min, "avg": sh.mean, "max": sh.max}
    return Fig7Result(stats=stats)
