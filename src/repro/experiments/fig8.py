"""Figure 8 + Section V-A.4: the GitHub event-log experiment.

The IssuesEvent sub-dataset is spread unevenly over blocks *without*
content clustering (stationary event rates).  DataNet still balances the
workload via ElasticMap, but the gain is smaller than on the movie data —
the paper reports the longest Top K Search map task dropping from 125 s to
107 s (≈14 %), with overall improvement "much less than that of the movie
dataset".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..core.datanet import DataNet
from ..hdfs.cluster import HDFSCluster
from ..mapreduce.apps import top_k_search_job
from ..mapreduce.engine import MapReduceEngine
from ..mapreduce.scheduler import LocalityScheduler
from ..metrics.balance import imbalance_ratio, improvement
from ..metrics.reporting import format_kv
from ..units import KiB
from ..workloads.github_events import GitHubEventsGenerator
from .config import ReferenceConfig

__all__ = ["Fig8Result", "run_fig8"]


@dataclass
class Fig8Result:
    """Reproduced GitHub IssuesEvent experiment."""

    target: str
    block_series: List[float]  # Fig. 8a: KiB per block
    node_workloads: Dict[object, float]  # Fig. 8b: filtered KiB per node (stock)
    longest_map_without: float
    longest_map_with: float
    overall_improvement: float

    @property
    def block_imbalance(self) -> float:
        """max/mean over blocks actually holding the event type."""
        nonzero = [v for v in self.block_series if v > 0]
        return imbalance_ratio(nonzero)

    @property
    def map_improvement(self) -> float:
        """Longest-map improvement (paper: 125 s -> 107 s ≈ 14 %)."""
        return improvement(self.longest_map_without, self.longest_map_with)

    def format(self) -> str:
        return format_kv(
            {
                "target sub-dataset": self.target,
                "blocks": len(self.block_series),
                "block-level imbalance (max/mean)": f"{self.block_imbalance:.2f}",
                "node workload imbalance (stock)": f"{imbalance_ratio(self.node_workloads.values()):.2f}",
                "longest TopK map without (s)": f"{self.longest_map_without:.1f}",
                "longest TopK map with (s)": f"{self.longest_map_with:.1f}",
                "longest-map improvement": f"{self.map_improvement:.1%} (paper: 125->107 s, 14.4%)",
                "overall improvement": f"{self.overall_improvement:.1%} (paper: much less than movie data)",
            },
            title="Figure 8 — GitHub IssuesEvent (imbalance without clustering)",
        )


def run_fig8(
    config: Optional[ReferenceConfig] = None,
    *,
    target: str = "IssuesEvent",
    total_events: Optional[int] = None,
) -> Fig8Result:
    """Generate the GitHub stream, index it, and run TopK both ways."""
    cfg = config or ReferenceConfig()
    rng = np.random.default_rng(cfg.seed + 1)
    cluster = HDFSCluster(
        num_nodes=cfg.num_nodes,
        block_size=cfg.block_size,
        replication=cfg.replication,
        rng=rng,
    )
    generator = GitHubEventsGenerator(
        total_events=total_events
        if total_events is not None
        else cfg.total_reviews,
        duration_days=30.0,
        rng=rng,
    )
    records = generator.generate()
    dataset = cluster.write_dataset("github", records)
    datanet = DataNet.build(dataset, alpha=cfg.alpha, spec=cfg.bucket_spec())
    engine = MapReduceEngine(cluster, cfg.cost_model())

    graph = datanet.bipartite_graph(target, skip_absent=False)
    base = LocalityScheduler().schedule(graph)
    aware = datanet.schedule(target, skip_absent=False)

    job = top_k_search_job(cfg.topk_query, k=10)
    sel_base = engine.run_selection(dataset, target, base, job.profile)
    sel_aware = engine.run_selection(dataset, target, aware, job.profile)
    res_base = engine.run_analysis(job, sel_base.local_data)
    res_aware = engine.run_analysis(job, sel_aware.local_data)

    per_block = dataset.subdataset_bytes_per_block(target)
    series = [per_block.get(bid, 0) / KiB for bid in dataset.block_ids]
    return Fig8Result(
        target=target,
        block_series=series,
        node_workloads={n: b / KiB for n, b in sel_base.bytes_per_node.items()},
        longest_map_without=max(res_base.map_times.values()),
        longest_map_with=max(res_aware.map_times.values()),
        overall_improvement=improvement(res_base.total_time, res_aware.total_time),
    )
