"""Figure 9: per-sub-dataset accuracy of the Eq. 6 size estimate.

Movies are sorted by actual size; the estimate/actual ratio is plotted
against size.  The paper's finding: large sub-datasets (dominant on most
of their blocks, hence hash-map-resident) estimate accurately; small ones
(Bloom-resident) deviate — but they are also the ones that cannot cause
imbalance, so the inaccuracy is harmless.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..metrics.reporting import format_table
from ..units import KiB
from .config import ReferenceConfig, build_movie_environment

__all__ = ["Fig9Point", "Fig9Result", "run_fig9"]


@dataclass(frozen=True)
class Fig9Point:
    """One sub-dataset's actual vs estimated size."""

    sub_id: str
    actual_bytes: int
    estimated_bytes: int

    @property
    def ratio(self) -> float:
        """estimate / actual (1.0 is perfect)."""
        return self.estimated_bytes / self.actual_bytes if self.actual_bytes else 1.0


@dataclass
class Fig9Result:
    """Per-sub-dataset estimate accuracy, sorted ascending by actual size."""

    points: List[Fig9Point]
    small_threshold: int  # bytes below which the paper expects deviation

    def mean_ratio_above(self, threshold: int) -> float:
        pts = [p for p in self.points if p.actual_bytes >= threshold]
        return sum(p.ratio for p in pts) / len(pts) if pts else float("nan")

    def mean_abs_error_above(self, threshold: int) -> float:
        """Mean |ratio - 1| of sub-datasets at or above ``threshold``."""
        pts = [p for p in self.points if p.actual_bytes >= threshold]
        return (
            sum(abs(p.ratio - 1.0) for p in pts) / len(pts) if pts else float("nan")
        )

    def mean_abs_error_below(self, threshold: int) -> float:
        pts = [p for p in self.points if p.actual_bytes < threshold]
        return (
            sum(abs(p.ratio - 1.0) for p in pts) / len(pts) if pts else float("nan")
        )

    def format(self) -> str:
        # decile view over the size-sorted series
        n = len(self.points)
        rows = []
        for d in range(10):
            chunk = self.points[d * n // 10 : (d + 1) * n // 10]
            if not chunk:
                continue
            mean_ratio = sum(p.ratio for p in chunk) / len(chunk)
            rows.append(
                [
                    f"decile {d + 1}",
                    f"{chunk[0].actual_bytes / KiB:.1f}",
                    f"{chunk[-1].actual_bytes / KiB:.1f}",
                    f"{mean_ratio:.2f}",
                ]
            )
        return format_table(
            ["size band", "from KiB", "to KiB", "mean est/actual"],
            rows,
            title=(
                "Figure 9 — estimate accuracy vs sub-dataset size "
                f"(err small: {self.mean_abs_error_below(self.small_threshold):.2f}, "
                f"large: {self.mean_abs_error_above(self.small_threshold):.2f})"
            ),
        )


def run_fig9(
    config: Optional[ReferenceConfig] = None, *, max_subdatasets: int = 400
) -> Fig9Result:
    """Compare Eq. 6 estimates to ground truth for every movie.

    ``max_subdatasets`` limits the series to the largest N movies plus a
    uniform sample of the tail, keeping the driver fast at full scale.
    """
    env = build_movie_environment(config)
    sizes = env.dataset.subdataset_sizes()
    ordered = sorted(sizes, key=sizes.get)
    if len(ordered) > max_subdatasets:
        step = len(ordered) / max_subdatasets
        ordered = [ordered[int(i * step)] for i in range(max_subdatasets)]
    points = [
        Fig9Point(
            sub_id=sid,
            actual_bytes=sizes[sid],
            estimated_bytes=env.datanet.estimate_total_size(sid),
        )
        for sid in ordered
    ]
    # The paper calls out sizes below 32 MB (of 64 MB blocks) as the
    # deviating band; the scaled equivalent is half a block.
    threshold = env.config.block_size // 2
    return Fig9Result(points=points, small_threshold=threshold)
