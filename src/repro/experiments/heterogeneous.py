"""Heterogeneous-cluster scheduling (paper Section IV-B).

The paper: "According to the computing capability of computational nodes,
we can calculate the amount of sub-datasets to be assigned to each node."
This experiment builds a mixed cluster — half the nodes twice as fast —
and compares three policies on the target sub-dataset's analysis map
phase:

1. stock locality scheduling (capacity- and distribution-blind),
2. Algorithm 1 homogeneous (distribution-aware, capacity-blind),
3. Algorithm 1 with capacities (both-aware): fast nodes receive
   proportionally more sub-dataset bytes, equalizing *completion time*.

The metric is the map-phase makespan proxy ``max(workload_i / capacity_i)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Optional

from ..core.scheduler import Assignment, DistributionAwareScheduler
from ..mapreduce.scheduler import LocalityScheduler
from ..metrics.reporting import format_table
from .config import ReferenceConfig, build_movie_environment

__all__ = ["HeterogeneousResult", "run_heterogeneous"]

NodeId = Hashable


def _completion_proxy(
    assignment: Assignment, capacities: Dict[NodeId, float]
) -> float:
    """max over nodes of sub-dataset bytes divided by node capacity."""
    return max(
        assignment.workload_by_node[n] / capacities[n]
        for n in assignment.workload_by_node
    )


@dataclass
class HeterogeneousResult:
    """Makespan proxies for the three policies."""

    makespans: Dict[str, float]  # policy -> max(workload/capacity)
    fast_fraction_aware: float  # share of bytes on fast nodes, capacity-aware

    def format(self) -> str:
        best = min(self.makespans.values())
        rows = [
            [name, f"{value:,.0f}", f"{value / best:.2f}x"]
            for name, value in self.makespans.items()
        ]
        table = format_table(
            ["policy", "makespan proxy (bytes/capacity)", "vs best"],
            rows,
            title="Heterogeneous cluster — half the nodes 2x faster",
        )
        return (
            table
            + f"\nfast nodes' byte share under capacity-aware: "
            f"{self.fast_fraction_aware:.0%} (ideal ≈ 67%)"
        )


def run_heterogeneous(
    config: Optional[ReferenceConfig] = None, *, speed_ratio: float = 2.0
) -> HeterogeneousResult:
    """Compare capacity-blind and capacity-aware scheduling."""
    env = build_movie_environment(config)
    nodes = env.cluster.nodes
    capacities: Dict[NodeId, float] = {
        n: (speed_ratio if n % 2 == 0 else 1.0) for n in nodes
    }
    graph = env.datanet.bipartite_graph(env.target, skip_absent=False)

    stock = LocalityScheduler().schedule(graph)
    blind = DistributionAwareScheduler().schedule(graph)
    aware = DistributionAwareScheduler(capacities).schedule(graph)

    total = sum(aware.workload_by_node.values())
    fast_bytes = sum(
        w for n, w in aware.workload_by_node.items() if capacities[n] > 1.0
    )
    return HeterogeneousResult(
        makespans={
            "stock locality": _completion_proxy(stock, capacities),
            "Algorithm 1 (capacity-blind)": _completion_proxy(blind, capacities),
            "Algorithm 1 (capacity-aware)": _completion_proxy(aware, capacities),
        },
        fast_fraction_aware=fast_bytes / total if total else 0.0,
    )
