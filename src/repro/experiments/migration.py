"""Section V-A.4: DataNet vs dynamic runtime rebalancing.

The paper's comparison point: fixing the imbalance *after* selection by
migrating sub-dataset records between nodes balances the analysis just as
well, but "almost every cluster node will transfer or receive sub-datasets
and the overall percentage of data migration is more than 30 %" — network
time and monitoring overhead DataNet avoids by scheduling with foresight.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..baselines.dynamic_rebalance import DynamicRebalancer, MigrationStats
from ..mapreduce.apps import word_count_job
from ..metrics.balance import improvement
from ..metrics.reporting import format_kv
from .config import ReferenceConfig
from .pipeline import ReferencePipeline, run_reference_pipeline

__all__ = ["MigrationResult", "run_migration"]


@dataclass
class MigrationResult:
    """Dynamic-rebalance baseline vs DataNet on the same workload."""

    stats: MigrationStats
    time_without: float  # stock scheduling, no rebalance
    time_dynamic: float  # stock scheduling + migration + balanced analysis
    time_datanet: float  # DataNet scheduling

    @property
    def datanet_vs_dynamic(self) -> float:
        """How much faster DataNet is than migrate-at-runtime."""
        return improvement(self.time_dynamic, self.time_datanet)

    def format(self) -> str:
        return format_kv(
            {
                "data migrated": f"{self.stats.migration_fraction:.1%} (paper: >30%)",
                "nodes touched": self.stats.nodes_touched,
                "migration + monitor overhead (s)": f"{self.stats.overhead_time:.1f}",
                "word_count without rebalance (s)": f"{self.time_without:.1f}",
                "word_count with dynamic rebalance (s)": f"{self.time_dynamic:.1f}",
                "word_count with DataNet (s)": f"{self.time_datanet:.1f}",
                "DataNet vs dynamic": f"{self.datanet_vs_dynamic:.1%} faster",
            },
            title="Section V-A.4 — dynamic rebalance vs DataNet",
        )


def run_migration(config: Optional[ReferenceConfig] = None) -> MigrationResult:
    """Rebalance the stock selection output at runtime and compare."""
    pipe: ReferencePipeline = run_reference_pipeline(config)
    env = pipe.env
    rebalancer = DynamicRebalancer(env.config.cost_model())
    balanced, stats = rebalancer.rebalance(pipe.without_datanet.selection.local_data)

    job = word_count_job()
    dynamic_run = env.engine.run_analysis(job, balanced)
    time_dynamic = dynamic_run.total_time + stats.overhead_time
    return MigrationResult(
        stats=stats,
        time_without=pipe.without_datanet.jobs["word_count"].total_time,
        time_dynamic=time_dynamic,
        time_datanet=pipe.with_datanet.jobs["word_count"].total_time,
    )
