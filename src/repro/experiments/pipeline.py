"""The shared reference pipeline behind Figures 5, 6 and 7.

Runs the paper's workflow once per scheduling method:

1. selection phase over all blocks — "without DataNet" uses stock
   locality scheduling, "with DataNet" uses Algorithm 1 over the
   ElasticMap weights;
2. the four analysis jobs over each method's filtered per-node data.

Results are cached per config: Figures 5, 6 and 7 are different views of
the same two runs, exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..core.scheduler import Assignment
from ..mapreduce.apps import (
    histogram_job,
    moving_average_job,
    top_k_search_job,
    word_count_job,
)
from ..mapreduce.engine import JobResult, SelectionResult
from ..mapreduce.scheduler import LocalityScheduler
from ..metrics.balance import improvement
from .config import MovieEnvironment, ReferenceConfig, build_movie_environment

__all__ = ["MethodRun", "ReferencePipeline", "run_reference_pipeline", "APP_ORDER"]

#: Paper presentation order (Fig. 5a, left to right).
APP_ORDER = ("moving_average", "word_count", "histogram", "top_k_search")


@dataclass
class MethodRun:
    """One scheduling method's selection + four analysis jobs."""

    method: str
    assignment: Assignment
    selection: SelectionResult
    jobs: Dict[str, JobResult]


@dataclass
class ReferencePipeline:
    """Both methods' runs over the same stored dataset."""

    env: MovieEnvironment
    without_datanet: MethodRun
    with_datanet: MethodRun

    def improvements(self) -> Dict[str, float]:
        """Fig. 5a's per-application improvement ``1 - with/without``."""
        return {
            app: improvement(
                self.without_datanet.jobs[app].total_time,
                self.with_datanet.jobs[app].total_time,
            )
            for app in APP_ORDER
        }


_PIPELINE_CACHE: Dict[ReferenceConfig, ReferencePipeline] = {}


def _jobs_for(config: ReferenceConfig) -> Dict[str, object]:
    return {
        "moving_average": moving_average_job(window_days=7.0, num_reducers=8),
        "word_count": word_count_job(num_reducers=8),
        "histogram": histogram_job(num_reducers=8),
        "top_k_search": top_k_search_job(config.topk_query, k=10),
    }


def run_reference_pipeline(
    config: Optional[ReferenceConfig] = None, *, use_cache: bool = True
) -> ReferencePipeline:
    """Execute (or fetch cached) both methods' full pipeline runs."""
    cfg = config or ReferenceConfig()
    if use_cache and cfg in _PIPELINE_CACHE:
        return _PIPELINE_CACHE[cfg]
    env = build_movie_environment(cfg, use_cache=use_cache)

    # Both methods schedule the same task list: every block of the dataset
    # (the paper's selection jobs scan the full dataset; ElasticMap-driven
    # block skipping is evaluated separately in the I/O ablation).
    graph = env.datanet.bipartite_graph(env.target, skip_absent=False)
    base_assignment = LocalityScheduler().schedule(graph)
    aware_assignment = env.datanet.schedule(env.target, skip_absent=False)

    runs: Dict[str, MethodRun] = {}
    for method, assignment in (
        ("without", base_assignment),
        ("with", aware_assignment),
    ):
        jobs = _jobs_for(cfg)
        any_profile = next(iter(jobs.values())).profile
        selection = env.engine.run_selection(
            env.dataset, env.target, assignment, any_profile
        )
        results: Dict[str, JobResult] = {}
        for app, job in jobs.items():
            result = env.engine.run_analysis(job, selection.local_data)
            result.selection = selection
            results[app] = result
        runs[method] = MethodRun(
            method=method,
            assignment=assignment,
            selection=selection,
            jobs=results,
        )

    pipeline = ReferencePipeline(
        env=env, without_datanet=runs["without"], with_datanet=runs["with"]
    )
    if use_cache:
        _PIPELINE_CACHE[cfg] = pipeline
    return pipeline
