"""Three-way comparison: fix placement vs schedule around it vs migrate at runtime.

The repo now has three answers to a skewed sub-dataset layout:

* **scheduling-only** — Algorithm 1 (`DataNet.schedule`) routes tasks
  around the skew; the layout is untouched (the paper's approach);
* **dynamic rebalance** — the SkewTune-style baseline migrates the
  *selected records* between nodes at runtime and bills the job for the
  transfer and monitoring (`baselines/dynamic_rebalance`);
* **rebalance-then-schedule** — the :mod:`repro.rebalance` background
  optimizer moves *replicas* between jobs under a migration-byte budget,
  then the same Algorithm 1 schedules on the improved layout.

The third arm's migration happens off the job clock (that is the point
of a background optimizer), so its cost is reported separately as the
plan's bytes and modeled transfer seconds — the budget keeps it bounded
at ≤ 25 % of dataset bytes, against the >30 % the runtime baseline moves
*per job*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..baselines.dynamic_rebalance import DynamicRebalancer, MigrationStats
from ..core.datanet import DataNet
from ..errors import ConfigError
from ..hdfs.cluster import HDFSCluster
from ..mapreduce.apps import word_count_job
from ..mapreduce.engine import MapReduceEngine
from ..mapreduce.scheduler import LocalityScheduler
from ..metrics.balance import improvement
from ..metrics.reporting import format_kv
from ..obs import NULL_OBS, Observability
from ..rebalance import (
    RebalanceExecutor,
    RebalancePlan,
    RebalancePlanner,
    WorkloadProfile,
)
from ..workloads.github_events import GitHubEventsGenerator
from .config import MovieEnvironment, ReferenceConfig, build_movie_environment

__all__ = ["RebalanceComparison", "run_rebalance_comparison"]

WORKLOADS = ("movielens", "github_events")


@dataclass
class RebalanceComparison:
    """One workload's three-way makespan comparison."""

    workload: str
    target: str
    plan: RebalancePlan
    dataset_bytes: int
    migration_time: float  # modeled background transfer seconds (off job clock)
    stats: MigrationStats  # the runtime baseline's migration ledger
    time_scheduling_only: float
    time_dynamic: float
    time_rebalanced: float
    profile_subs: Tuple[str, ...] = field(default_factory=tuple)

    @property
    def migration_fraction(self) -> float:
        """Plan bytes over dataset bytes (budgeted ≤ 25 % by default)."""
        if self.dataset_bytes == 0:
            return 0.0
        return self.plan.total_bytes / self.dataset_bytes

    @property
    def rebalanced_vs_scheduling(self) -> float:
        """How much faster the job runs on the rebalanced layout."""
        return improvement(self.time_scheduling_only, self.time_rebalanced)

    @property
    def rebalanced_vs_dynamic(self) -> float:
        return improvement(self.time_dynamic, self.time_rebalanced)

    def format(self) -> str:
        return format_kv(
            {
                "workload": self.workload,
                "target sub-dataset": self.target,
                "profiled sub-datasets": len(self.profile_subs),
                "plan moves": self.plan.num_moves,
                "bytes migrated (background)": (
                    f"{self.plan.total_bytes} ({self.migration_fraction:.1%} "
                    f"of dataset, budget {self.plan.budget_bytes})"
                ),
                "background transfer (s)": f"{self.migration_time:.1f}",
                "layout cost before/after": (
                    f"{self.plan.cost_before:.0f} / {self.plan.cost_after:.0f} "
                    f"({self.plan.improvement:.1%} lower)"
                ),
                "runtime baseline migrated": f"{self.stats.migration_fraction:.1%}",
                "scheduling-only (s)": f"{self.time_scheduling_only:.1f}",
                "dynamic rebalance (s)": f"{self.time_dynamic:.1f}",
                "rebalance-then-schedule (s)": f"{self.time_rebalanced:.1f}",
                "vs scheduling-only": f"{self.rebalanced_vs_scheduling:.1%} faster",
                "vs dynamic": f"{self.rebalanced_vs_dynamic:.1%} faster",
            },
            title=f"rebalance three-way — {self.workload}",
        )


def _build_profile(env: MovieEnvironment, profile_subs: int) -> WorkloadProfile:
    """The tenant workload: the target plus the next-hottest sub-datasets,
    weighted by their bytes.  The target — the query the tenant actually
    runs in this experiment — gets 4x the hottest sub-dataset's weight,
    the way an access-log-derived profile would up-weight the dominant
    query stream."""
    sizes = env.dataset.subdataset_sizes()
    ranked = sorted(sizes, key=sizes.get, reverse=True)[:profile_subs]
    weights = {
        sid: float(sizes[sid]) for sid in dict.fromkeys([env.target] + ranked)
    }
    weights[env.target] = 4.0 * max(weights.values())
    return WorkloadProfile(weights)


def _github_environment(cfg: ReferenceConfig) -> MovieEnvironment:
    """A github_events analogue of the movie environment (no clustering in
    time, but Zipf-shaped type rates still skew per-block placement)."""
    rng = np.random.default_rng(cfg.seed)
    cluster = HDFSCluster(
        num_nodes=cfg.num_nodes,
        block_size=cfg.block_size,
        replication=cfg.replication,
        rng=rng,
        coding=cfg.coding,
    )
    generator = GitHubEventsGenerator(
        total_events=cfg.total_reviews,
        duration_days=cfg.duration_days,
        rng=rng,
    )
    dataset = cluster.write_dataset("github_events", generator.generate())
    datanet = DataNet.build(dataset, alpha=cfg.alpha, spec=cfg.bucket_spec())
    sizes = dataset.subdataset_sizes()
    target = max(sorted(sizes), key=sizes.get)
    engine = MapReduceEngine(cluster, cfg.cost_model())
    return MovieEnvironment(
        config=cfg,
        cluster=cluster,
        dataset=dataset,
        target=target,
        datanet=datanet,
        engine=engine,
    )


def run_rebalance_comparison(
    config: Optional[ReferenceConfig] = None,
    *,
    workload: str = "movielens",
    budget_fraction: float = 0.25,
    iterations: int = 6000,
    profile_subs: int = 6,
    seed: int = 7,
    obs: Observability = NULL_OBS,
) -> RebalanceComparison:
    """Run all three arms on one workload; the cluster is private (the
    rebalance arm mutates placement, so the shared env cache is bypassed).
    """
    if workload not in WORKLOADS:
        raise ConfigError(
            f"unknown workload {workload!r}; expected one of {WORKLOADS}"
        )
    cfg = config or ReferenceConfig.small()
    if workload == "movielens":
        env = build_movie_environment(cfg, use_cache=False)
    else:
        env = _github_environment(cfg)
    dataset, datanet, engine = env.dataset, env.datanet, env.engine
    target = env.target
    job = word_count_job()

    # arm 1 — scheduling-only (Algorithm 1 on the as-written layout)
    t_sched = engine.run_job(
        dataset, target, job, datanet.schedule(target)
    ).total_time

    # arm 2 — SkewTune-style runtime migration, billed to the job
    base = LocalityScheduler().schedule(
        datanet.bipartite_graph(target, skip_absent=False)
    )
    selection = engine.run_selection(dataset, target, base, job.profile)
    balanced, stats = DynamicRebalancer(cfg.cost_model()).rebalance(
        selection.local_data
    )
    t_dynamic = (
        engine.run_analysis(job, balanced, start_time=selection.makespan).total_time
        + stats.overhead_time
    )

    # arm 3 — background rebalance (off the job clock), then schedule again
    profile = _build_profile(env, profile_subs)
    planner = RebalancePlanner(
        dataset,
        datanet,
        profile,
        budget_fraction=budget_fraction,
        seed=seed,
        iterations=iterations,
        obs=obs,
    )
    plan = planner.plan()
    env.cluster.watch_placement(dataset.name, datanet)
    RebalanceExecutor(env.cluster, obs=obs).apply(plan)
    migration_time = cfg.cost_model().transfer(plan.total_bytes)
    t_rebalanced = engine.run_job(
        dataset, target, job, datanet.schedule(target)
    ).total_time

    return RebalanceComparison(
        workload=workload,
        target=target,
        plan=plan,
        dataset_bytes=dataset.total_bytes,
        migration_time=migration_time,
        stats=stats,
        time_scheduling_only=t_sched,
        time_dynamic=t_dynamic,
        time_rebalanced=t_rebalanced,
        profile_subs=tuple(profile.sub_ids()),
    )
