"""Reducer-skew mitigation (LIBRA) vs map-side balance (DataNet).

The paper positions LIBRA-style intermediate-data sampling as related but
*orthogonal* work: it balances the load **across reducers** of one job,
while DataNet balances the filtered input **across map nodes**.  This
experiment makes the orthogonality concrete on one WordCount run:

* hash partitioning leaves reducers skewed (hot words like "the" pile
  onto one reducer);
* the sampling partitioner flattens the reducer loads —
* — but the *map-side* imbalance (stock vs DataNet scheduling) is exactly
  the same under either partitioner: sampling never touches it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..baselines.sampling import SamplingPartitioner
from ..mapreduce.apps import word_count_job
from ..metrics.balance import imbalance_ratio
from ..metrics.reporting import format_table
from .config import ReferenceConfig
from .pipeline import run_reference_pipeline

__all__ = ["ReducerSkewResult", "run_reducer_skew"]


@dataclass
class ReducerSkewResult:
    """Reducer loads under both partitioners + the untouched map imbalance."""

    hash_loads: List[int]
    sampled_loads: List[int]
    map_imbalance_without: float
    map_imbalance_with: float

    @property
    def hash_imbalance(self) -> float:
        return imbalance_ratio(self.hash_loads)

    @property
    def sampled_imbalance(self) -> float:
        return imbalance_ratio(self.sampled_loads)

    def format(self) -> str:
        rows = [
            [
                r,
                self.hash_loads[r],
                self.sampled_loads[r],
            ]
            for r in range(len(self.hash_loads))
        ]
        table = format_table(
            ["reducer", "hash pairs", "sampled pairs"],
            rows,
            title=(
                "Reducer skew — hash vs LIBRA-style sampling partitioner "
                f"(imbalance {self.hash_imbalance:.2f} -> "
                f"{self.sampled_imbalance:.2f})"
            ),
        )
        return table + (
            "\nmap-side imbalance (untouched by either partitioner): "
            f"stock {self.map_imbalance_without:.2f}, "
            f"DataNet {self.map_imbalance_with:.2f} — the two techniques "
            "compose, as the paper argues"
        )


def run_reducer_skew(
    config: Optional[ReferenceConfig] = None,
    *,
    num_reducers: int = 8,
    sample_rate: float = 0.2,
) -> ReducerSkewResult:
    """Partition one WordCount run's intermediate pairs both ways."""
    cfg = config or ReferenceConfig()
    pipe = run_reference_pipeline(cfg)
    job = word_count_job(num_reducers=num_reducers)

    # intermediate pairs from the DataNet run's filtered data
    pairs = []
    for records in pipe.with_datanet.selection.local_data.values():
        emitted: Dict[str, List[int]] = {}
        for record in records:
            for k, v in job.run_mapper(record):
                emitted.setdefault(k, []).append(v)
        for k, values in emitted.items():
            pairs.extend(job.run_combiner(k, values))
    # weight pairs by their combined counts so skew reflects real volume
    weighted = [(k, v) for k, v in pairs for _ in range(max(int(v) // 50, 1))]

    hash_loads = [0] * num_reducers
    for k, _v in weighted:
        hash_loads[job.partition(k)] += 1

    partitioner = SamplingPartitioner(
        num_reducers, sample_rate=sample_rate, rng=np.random.default_rng(cfg.seed)
    ).fit(weighted)
    sampled_loads = partitioner.reducer_loads(weighted)

    return ReducerSkewResult(
        hash_loads=hash_loads,
        sampled_loads=sampled_loads,
        map_imbalance_without=imbalance_ratio(
            pipe.without_datanet.selection.bytes_per_node.values()
        ),
        map_imbalance_with=imbalance_ratio(
            pipe.with_datanet.selection.bytes_per_node.values()
        ),
    )
