"""Cluster-size scaling: Section II-B's theory, observed end to end.

The theory (Fig. 2) predicts that the probability of extreme per-node
workloads grows with the node count ``m``.  This experiment verifies the
system-level consequence: re-running the reference pipeline at several
cluster sizes, the *stock* imbalance grows with m while DataNet holds the
balance, so DataNet's improvement widens on larger clusters — the paper's
implicit argument for why a 128-node deployment needs this more than an
8-node one.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

from ..metrics.balance import imbalance_ratio, improvement
from ..metrics.reporting import format_table
from .config import ReferenceConfig
from .pipeline import run_reference_pipeline

__all__ = ["ScalingPoint", "ScalingResult", "run_scaling"]


@dataclass(frozen=True)
class ScalingPoint:
    """One cluster size's outcome."""

    num_nodes: int
    imbalance_without: float
    imbalance_with: float
    topk_improvement: float


@dataclass
class ScalingResult:
    """Imbalance and improvement across cluster sizes."""

    points: List[ScalingPoint]

    def imbalances_without(self) -> List[float]:
        return [p.imbalance_without for p in self.points]

    def improvements(self) -> List[float]:
        return [p.topk_improvement for p in self.points]

    def format(self) -> str:
        rows = [
            [
                p.num_nodes,
                f"{p.imbalance_without:.2f}",
                f"{p.imbalance_with:.2f}",
                f"{p.topk_improvement:.1%}",
            ]
            for p in self.points
        ]
        return format_table(
            ["nodes", "imbalance w/o", "imbalance with", "TopK improvement"],
            rows,
            title=(
                "Cluster-size scaling — stock imbalance grows with m "
                "(Section II-B's prediction, measured end to end)"
            ),
        )


def run_scaling(
    config: Optional[ReferenceConfig] = None,
    *,
    cluster_sizes: Sequence[int] = (8, 16, 32, 64),
) -> ScalingResult:
    """Run the reference pipeline at several cluster sizes.

    The workload is held fixed; only ``num_nodes`` varies (fewer blocks
    per node at larger m — the concentration regime of the theory).
    """
    base_cfg = config or ReferenceConfig()
    points: List[ScalingPoint] = []
    for m in cluster_sizes:
        cfg = replace(base_cfg, num_nodes=m)
        pipe = run_reference_pipeline(cfg)
        points.append(
            ScalingPoint(
                num_nodes=m,
                imbalance_without=imbalance_ratio(
                    pipe.without_datanet.selection.bytes_per_node.values()
                ),
                imbalance_with=imbalance_ratio(
                    pipe.with_datanet.selection.bytes_per_node.values()
                ),
                topk_improvement=pipe.improvements()["top_k_search"],
            )
        )
    return ScalingResult(points=points)
