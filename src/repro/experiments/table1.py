"""Table I: the per-block sub-dataset size map a hash table would store.

The paper's example records "the number of reviews corresponding to
different movies within a block file" — the raw form of ElasticMap's
hash-map half.  This driver materializes that table for the densest block
of the reference dataset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..metrics.reporting import format_table
from .config import ReferenceConfig, build_movie_environment

__all__ = ["Table1Result", "run_table1"]


@dataclass
class Table1Result:
    """Per-movie review counts (and bytes) inside one block file."""

    block_id: int
    rows: List[Tuple[str, int, int]]  # (movie id, #reviews, bytes)

    @property
    def num_movies(self) -> int:
        return len(self.rows)

    def format(self) -> str:
        shown = self.rows[:10]
        table_rows = [[sid, count, nbytes] for sid, count, nbytes in shown]
        if len(self.rows) > len(shown):
            table_rows.append(["...", "...", "..."])
        return format_table(
            ["movie id", "# of reviews", "bytes"],
            table_rows,
            title=(
                f"Table I — sub-dataset sizes within block {self.block_id} "
                f"({self.num_movies} movies total)"
            ),
        )


def run_table1(config: Optional[ReferenceConfig] = None) -> Table1Result:
    """Build Table I from the reference dataset's densest block."""
    env = build_movie_environment(config)
    per_block = env.dataset.subdataset_bytes_per_block(env.target)
    block_id = max(per_block, key=per_block.get)
    block = env.dataset.block(block_id)
    counts: Dict[str, int] = {}
    sizes: Dict[str, int] = {}
    for record in block.records():
        counts[record.sub_id] = counts.get(record.sub_id, 0) + 1
        sizes[record.sub_id] = sizes.get(record.sub_id, 0) + record.nbytes
    rows = sorted(
        ((sid, counts[sid], sizes[sid]) for sid in counts),
        key=lambda r: -r[1],
    )
    return Table1Result(block_id=block_id, rows=rows)
