"""Table II: ElasticMap memory efficiency vs accuracy.

The paper sweeps the fraction of sub-datasets stored exactly in the hash
map (realized α from 51 % down to 21 %) and reports overall accuracy χ
(97 % → 80 %) against the raw-data-to-meta-data representation ratio
(1857 → 3497): fewer exact entries → smaller metadata → lower accuracy.

Absolute ratios depend on how many sub-datasets share a block (the
paper's 64 MB blocks hold thousands of movies; our scaled blocks hold
~200), so the *trend* is the reproduction target; the result carries both
the measured ratio over stored bytes and the scale-equivalent ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.builder import ElasticMapBuilder
from ..metrics.reporting import format_table
from .config import ReferenceConfig, build_movie_environment

__all__ = ["Table2Row", "Table2Result", "run_table2"]


@dataclass(frozen=True)
class Table2Row:
    """One α setting's outcome."""

    requested_alpha: float
    realized_alpha: float  # fraction of sub-datasets in the hash map
    accuracy: float  # the paper's chi
    representation_ratio: float  # stored raw bytes per metadata byte
    metadata_bytes: float


@dataclass
class Table2Result:
    """The reproduced Table II."""

    rows: List[Table2Row]
    raw_bytes: int
    data_scale: float

    def format(self) -> str:
        table_rows = [
            [
                f"{r.realized_alpha:.0%}",
                f"{r.accuracy:.0%}",
                f"{r.representation_ratio:.0f}",
                f"{r.representation_ratio * self.data_scale:,.0f}",
                f"{r.metadata_bytes / 1024:.1f}",
            ]
            for r in self.rows
        ]
        return format_table(
            ["alpha", "accuracy (chi)", "ratio (stored)", "ratio (scaled)", "meta KiB"],
            table_rows,
            title=(
                "Table II — ElasticMap efficiency "
                "(paper: alpha 51->21% gives chi 97->80%, ratio 1857->3497)"
            ),
        )


def run_table2(
    config: Optional[ReferenceConfig] = None,
    *,
    alphas: Sequence[float] = (0.5, 0.4, 0.3, 0.25, 0.2),
) -> Table2Result:
    """Rebuild the ElasticMap at several α values and measure Table II."""
    env = build_movie_environment(config)
    all_ids = env.dataset.subdataset_ids()
    raw = env.dataset.total_bytes
    rows: List[Table2Row] = []
    for alpha in alphas:
        builder = ElasticMapBuilder(alpha=alpha, spec=env.config.bucket_spec())
        array = builder.build(env.dataset.scan_blocks())
        rows.append(
            Table2Row(
                requested_alpha=alpha,
                realized_alpha=builder.stats.mean_alpha,
                accuracy=array.accuracy(all_ids, raw),
                representation_ratio=array.representation_ratio(raw),
                metadata_bytes=array.memory_bytes(),
            )
        )
    return Table2Result(
        rows=rows, raw_bytes=raw, data_scale=env.config.data_scale
    )
