"""Fault injection, task retries, and mid-job recovery.

The paper evaluates DataNet on a healthy cluster; this package makes the
reproduction survive an unhealthy one.  It is organized as four layers:

- :mod:`repro.faults.plan` — declarative, seed-driven fault scripts
  (:class:`FaultPlan`): node crashes at fixed times, hash-drawn transient
  task failures, slow nodes, metadata-shard outages, replica bit rot,
  stale metadata entries, and mid-job driver restarts.
- :mod:`repro.faults.injector` — :class:`FaultInjector`, the deterministic
  oracle the engine and the discrete-event simulator consult at event
  boundaries.
- :mod:`repro.faults.retry` — the task-attempt lifecycle: exponential
  backoff, retry budgets, heartbeat-delayed crash detection, per-node
  blacklisting, and the :class:`AttemptLog` ledger behind the recovery
  metrics.
- :mod:`repro.faults.health` / :mod:`repro.faults.dedup` — gray-failure
  detection and settlement: the φ-accrual :class:`HealthDetector` turns
  heartbeat intervals into continuous suspicion/health scores, and
  :class:`FirstWinLedger` settles hedged/speculative completion races
  first-response-wins without double-counting bytes.
- :mod:`repro.faults.runner` / :mod:`repro.faults.degrade` — whole-job
  recovery: :class:`ChaosRunner` replays a job under a plan, re-replicates
  after crashes, reschedules lost work on a rebuilt bipartite graph,
  routes around slow nodes, flaky links and healing network partitions,
  and degrades metadata-less blocks to locality-only scheduling instead
  of failing.

Determinism is the design invariant throughout: the same plan over the
same seeded cluster produces an identical job result, and recovery never
changes the analysis output.
"""

from .dedup import CompletionWin, FirstWinLedger
from .degrade import degraded_schedule, merge_assignments
from .health import HealthDetector, validate_health
from .injector import FaultInjector, ResolvedPartition
from .plan import (
    BitRot,
    DriverRestart,
    FaultPlan,
    FlakyLink,
    JournalReplicaCrash,
    LeaderCrash,
    MetadataPartition,
    MetaOutage,
    NetworkPartition,
    NodeCrash,
    ServiceCrash,
    SlowNode,
    StaleMetadata,
    TransientFaults,
)
from .retry import AttemptLog, AttemptRecord, NodeBlacklist, RetryPolicy, run_attempts
from .runner import ChaosReport, ChaosRunner

__all__ = [
    "FaultPlan",
    "NodeCrash",
    "SlowNode",
    "FlakyLink",
    "NetworkPartition",
    "TransientFaults",
    "MetaOutage",
    "BitRot",
    "StaleMetadata",
    "DriverRestart",
    "ServiceCrash",
    "LeaderCrash",
    "JournalReplicaCrash",
    "MetadataPartition",
    "FaultInjector",
    "ResolvedPartition",
    "HealthDetector",
    "validate_health",
    "FirstWinLedger",
    "CompletionWin",
    "RetryPolicy",
    "AttemptRecord",
    "AttemptLog",
    "NodeBlacklist",
    "run_attempts",
    "degraded_schedule",
    "merge_assignments",
    "ChaosRunner",
    "ChaosReport",
]
