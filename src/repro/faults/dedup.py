"""First-response-wins deduplication for redundant executions.

Hedged reads and speculative backups both run the same logical work
twice; correctness requires that exactly one completion is *counted* —
the first one to arrive — and every later arrival for the same key is
recorded as a duplicate, never added to output bytes.  The
:class:`FirstWinLedger` is that single source of truth: hedged readers,
the speculative simulator and tests all settle races through it, so the
"never double-count" property is proved once (see the hypothesis test in
``tests/test_gray.py``) and inherited everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional

from ..errors import ConfigError

__all__ = ["CompletionWin", "FirstWinLedger"]


@dataclass(frozen=True)
class CompletionWin:
    """The counted completion for one logical key."""

    source: str
    arrival: float
    nbytes: int


class FirstWinLedger:
    """Settle duplicate completions: the first offer for a key wins.

    Callers present completions in arrival order (ties settled by the
    caller's offer order); the ledger counts the winner's bytes exactly
    once and tallies everything else as duplicate work.
    """

    def __init__(self) -> None:
        self._wins: Dict[Hashable, CompletionWin] = {}
        self.offers = 0
        self.duplicates = 0
        self.duplicate_bytes = 0

    def offer(
        self, key: Hashable, source: str, arrival: float, nbytes: int = 0
    ) -> bool:
        """Offer one completion; True iff it is the winner for ``key``."""
        if arrival < 0:
            raise ConfigError(f"arrival time must be non-negative, got {arrival}")
        if nbytes < 0:
            raise ConfigError(f"completion bytes must be non-negative, got {nbytes}")
        self.offers += 1
        if key in self._wins:
            self.duplicates += 1
            self.duplicate_bytes += nbytes
            return False
        self._wins[key] = CompletionWin(source=source, arrival=arrival, nbytes=nbytes)
        return True

    def winner(self, key: Hashable) -> Optional[CompletionWin]:
        """The counted completion for ``key``, or ``None`` if never offered."""
        return self._wins.get(key)

    def keys(self) -> List[Hashable]:
        """All settled keys, sorted by repr for deterministic iteration."""
        return sorted(self._wins, key=repr)

    @property
    def counted_bytes(self) -> int:
        """Total bytes counted — exactly one completion per key."""
        return sum(w.nbytes for w in self._wins.values())

    def __len__(self) -> int:
        return len(self._wins)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._wins
