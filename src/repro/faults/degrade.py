"""Graceful degradation: metadata-free scheduling for unreachable blocks.

DataNet's whole advantage rides on per-block ElasticMap metadata.  When a
:class:`~repro.core.metastore.DistributedMetaStore` shard is down past its
failover depth, some blocks simply have no reachable ``|b ∩ s|`` weight —
and the job must not fail because of it.  :func:`degraded_schedule` splits
the block set:

* **healthy** blocks (metadata reachable) go through Algorithm 1 with
  their true sub-dataset weights;
* **degraded** blocks fall back to the stock locality scheduler, weighted
  by raw block size — exactly what a metadata-free Hadoop would do.

The merged assignment covers every block, and the degraded ids are
reported so the observability layer can show what ran blind.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from ..core.bipartite import BipartiteGraph
from ..core.metastore import DistributedMetaStore
from ..core.scheduler import Assignment, DistributionAwareScheduler
from ..errors import MetadataError, SchedulingError
from ..hdfs.cluster import DatasetView
from ..mapreduce.scheduler import LocalityScheduler

__all__ = ["degraded_schedule", "merge_assignments"]

NodeId = Hashable


def merge_assignments(*parts: Assignment) -> Assignment:
    """Combine disjoint partial assignments into one.

    Raises:
        SchedulingError: if two parts assign the same block.
    """
    blocks_by_node: Dict[NodeId, List[int]] = {}
    workload: Dict[NodeId, int] = {}
    local = remote = 0
    seen: set = set()
    for part in parts:
        for node, blocks in part.blocks_by_node.items():
            dup = seen.intersection(blocks)
            if dup:
                raise SchedulingError(
                    f"blocks assigned twice across merged parts: {sorted(dup)[:5]}"
                )
            seen.update(blocks)
            blocks_by_node.setdefault(node, []).extend(blocks)
        for node, w in part.workload_by_node.items():
            workload[node] = workload.get(node, 0) + w
        local += part.local_assignments
        remote += part.remote_assignments
    return Assignment(
        blocks_by_node=blocks_by_node,
        workload_by_node=workload,
        local_assignments=local,
        remote_assignments=remote,
    )


def degraded_schedule(
    store: DistributedMetaStore,
    dataset: DatasetView,
    sub_dataset_id: str,
    *,
    live_nodes: Optional[Sequence[NodeId]] = None,
    exclude_nodes: Sequence[NodeId] = (),
) -> Tuple[Assignment, List[int], List[int]]:
    """Schedule one sub-dataset's selection with per-block metadata fallback.

    Every block whose metadata is reachable is weighted and balanced by
    Algorithm 1; every block whose metadata lookup raises
    :class:`~repro.errors.MetadataError` (all replica shards down) joins
    the locality-scheduled fallback pool instead of failing the job.

    Args:
        store: the distributed metadata fleet (possibly with dead shards).
        dataset: provides current replica placement and raw block sizes.
        sub_dataset_id: the target sub-dataset.
        live_nodes: cluster nodes eligible to run tasks; defaults to all
            nodes in the dataset's cluster.
        exclude_nodes: additionally barred nodes (e.g. blacklisted ones).

    Returns:
        ``(assignment, healthy_blocks, degraded_blocks)``.  Healthy blocks
        where the metadata reports the sub-dataset absent are skipped
        entirely (the paper's I/O saving); degraded blocks are *always*
        scanned, since without metadata absence cannot be proven.

    Raises:
        SchedulingError: when a block has no replica on an eligible node
            (re-replicate before scheduling) or no eligible nodes remain.
    """
    barred = set(exclude_nodes)
    universe = list(dataset.nodes if live_nodes is None else live_nodes)
    eligible = [n for n in universe if n not in barred]
    if not eligible:
        raise SchedulingError("no eligible nodes left to schedule on")
    eligible_set = set(eligible)

    needed = dataset.fragments_needed() if hasattr(dataset, "fragments_needed") else {}
    placement: Dict[int, List[NodeId]] = {}
    for bid, replicas in dataset.placement().items():
        live_replicas = [n for n in replicas if n in eligible_set]
        if len(live_replicas) < needed.get(bid, 1):
            raise SchedulingError(
                f"block {bid} has fewer than {needed.get(bid, 1)} holders on "
                "eligible nodes; repair before scheduling"
            )
        placement[bid] = live_replicas

    healthy_weights: Dict[int, int] = {}
    degraded: List[int] = []
    stored = set(store.block_ids)
    for bid in sorted(placement):
        if bid not in stored:
            degraded.append(bid)
            continue
        try:
            size, kind = store.get_block(bid).query(sub_dataset_id)
        except MetadataError:
            degraded.append(bid)
            continue
        if kind != "absent":
            healthy_weights[bid] = size

    parts: List[Assignment] = []
    if healthy_weights:
        graph = BipartiteGraph(
            {b: placement[b] for b in healthy_weights},
            healthy_weights,
            nodes=eligible,
            needed={b: needed[b] for b in healthy_weights if b in needed},
        )
        parts.append(DistributionAwareScheduler().schedule(graph))
    if degraded:
        # metadata-free pool: weight by raw block bytes, balance block
        # counts with locality preference — stock Hadoop behaviour.
        fallback_weights = {b: dataset.block(b).used_bytes for b in degraded}
        graph = BipartiteGraph(
            {b: placement[b] for b in degraded},
            fallback_weights,
            nodes=eligible,
            needed={b: needed[b] for b in degraded if b in needed},
        )
        parts.append(LocalityScheduler().schedule(graph))
    if not parts:
        # nothing to do: the sub-dataset is provably absent everywhere
        parts.append(
            Assignment(
                blocks_by_node={n: [] for n in eligible},
                workload_by_node={n: 0 for n in eligible},
            )
        )
    merged = merge_assignments(*parts)
    return merged, sorted(healthy_weights), degraded
