"""φ-accrual-style health detection from heartbeat/completion intervals.

Real schedulers cannot see a :class:`~repro.faults.plan.SlowNode` — they
only see that its heartbeats and task completions arrive late.  The
:class:`HealthDetector` accumulates per-node inter-arrival intervals and
turns them into two continuous signals:

* ``suspicion(node, now)`` — the φ-accrual score
  ``phi = elapsed / (mean_interval * ln 10)`` of the exponential-arrival
  model (Hayashibara et al.): φ = 1 means "90% sure the node missed its
  heartbeat", φ = 2 means 99%, and so on.  Continuous, so callers pick
  their own threshold instead of inheriting a binary blacklist.
* ``health_score(node)`` — ``expected_interval / observed mean`` clamped
  to ``[min_score, 1.0]``.  A node running 4× slow heartbeats at a 4×
  interval and scores 0.25 — exactly the capacity weight the
  distribution-aware scheduler should give it.

Everything is plain arithmetic over recorded arrival times: feeding the
detector from a seeded :class:`~repro.faults.injector.FaultInjector`
(:meth:`observe_heartbeats`) keeps the whole pipeline deterministic.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Dict, Hashable, Iterable, List, Mapping, Optional

from ..errors import ConfigError

__all__ = ["HealthDetector", "validate_health"]

NodeId = Hashable


class HealthDetector:
    """Accrual failure detector over per-node arrival intervals."""

    def __init__(
        self,
        *,
        expected_interval_s: float = 1.0,
        window: int = 32,
        min_score: float = 0.05,
    ) -> None:
        if expected_interval_s <= 0:
            raise ConfigError("expected_interval_s must be positive")
        if window < 2:
            raise ConfigError("window must hold at least 2 arrivals")
        if not 0.0 < min_score <= 1.0:
            raise ConfigError("min_score must be in (0, 1]")
        self.expected_interval_s = expected_interval_s
        self.window = window
        self.min_score = min_score
        self._arrivals: Dict[NodeId, Deque[float]] = {}

    # -- feeding -------------------------------------------------------------------

    def record(self, node: NodeId, arrival_time: float) -> None:
        """Record one heartbeat/completion arrival from ``node``."""
        if arrival_time < 0:
            raise ConfigError("arrival time must be non-negative")
        q = self._arrivals.setdefault(node, deque(maxlen=self.window))
        if q and arrival_time < q[-1]:
            raise ConfigError(
                f"arrivals from {node!r} must be monotonic: "
                f"{arrival_time} after {q[-1]}"
            )
        q.append(arrival_time)

    def observe_heartbeats(
        self,
        nodes: Iterable[NodeId],
        injector,
        *,
        count: int = 8,
        start: float = 0.0,
    ) -> None:
        """Simulate a heartbeat probe window against a fault injector.

        Each node *sends* a heartbeat every ``expected_interval_s``, but a
        gray node emits late (the interval stretches by the node's active
        slowdown factor) and a partitioned node's beats are dropped while
        the cut is active.  Deterministic: pure function of the plan.
        """
        if count < 2:
            raise ConfigError("a probe needs at least 2 heartbeats per node")
        partitions_known = injector.plan.partitions and hasattr(
            injector, "partitions_chronological"
        )
        for node in sorted(nodes, key=repr):
            t = start
            for _ in range(count):
                t += self.expected_interval_s * injector.slowdown(node, t)
                if partitions_known and injector.unreachable(node, t):
                    continue  # beat dropped behind the cut
                self.record(node, t)

    # -- scoring -------------------------------------------------------------------

    def mean_interval(self, node: NodeId) -> Optional[float]:
        """Mean observed inter-arrival interval, or ``None`` below 2 samples."""
        q = self._arrivals.get(node)
        if q is None or len(q) < 2:
            return None
        span = q[-1] - q[0]
        if span <= 0:
            return None
        return span / (len(q) - 1)

    def suspicion(self, node: NodeId, now: float) -> float:
        """φ-accrual suspicion that ``node`` is gone, given silence until ``now``.

        0.0 with insufficient history (no evidence either way).
        """
        q = self._arrivals.get(node)
        mean = self.mean_interval(node)
        if q is None or mean is None:
            return 0.0
        elapsed = max(now - q[-1], 0.0)
        return elapsed / (mean * math.log(10.0))

    def health_score(self, node: NodeId) -> float:
        """Relative service rate in ``[min_score, 1.0]`` (1.0 = healthy)."""
        mean = self.mean_interval(node)
        if mean is None:
            return 1.0
        ratio = self.expected_interval_s / mean
        return max(self.min_score, min(1.0, ratio))

    def scores(self, nodes: Iterable[NodeId]) -> Dict[NodeId, float]:
        """Health scores for every node, in a plain dict."""
        return {n: self.health_score(n) for n in sorted(nodes, key=repr)}

    def suspected(
        self, nodes: Iterable[NodeId], now: float, *, threshold: float = 1.0
    ) -> List[NodeId]:
        """Nodes whose suspicion crosses ``threshold``, sorted by repr."""
        return [
            n
            for n in sorted(nodes, key=repr)
            if self.suspicion(n, now) >= threshold
        ]

    # -- export --------------------------------------------------------------------

    def export(self, obs, nodes: Iterable[NodeId], now: float) -> None:
        """Publish per-node suspicion and health gauges through ``repro.obs``."""
        suspicion = obs.metrics.gauge(
            "node_suspicion_phi",
            help="Accrual suspicion score per node (phi, higher = more suspect)",
            labelnames=("node",),
        )
        health = obs.metrics.gauge(
            "node_health_score",
            help="Detector health score per node (1.0 = healthy)",
            labelnames=("node",),
        )
        for node in sorted(nodes, key=repr):
            suspicion.set(self.suspicion(node, now), node=str(node))
            health.set(self.health_score(node), node=str(node))


def validate_health(health: Optional[Mapping[NodeId, float]]) -> None:
    """Shared guard for scheduler/speculation health inputs."""
    if health is None:
        return
    for node, score in health.items():
        if not 0.0 < score <= 1.0:
            raise ConfigError(
                f"health score for {node!r} must be in (0, 1], got {score}"
            )
