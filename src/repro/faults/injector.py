"""The fault oracle execution layers consult at event boundaries.

:class:`FaultInjector` turns a declarative :class:`~repro.faults.plan.FaultPlan`
into point queries: *does this attempt fail?*, *is this node dead yet?*,
*how slow is this node right now?*  Every answer is a pure function of the
plan — transient decisions hash ``(seed, task, attempt, node)`` through
BLAKE2b — so the engine and the discrete-event simulator stay fully
deterministic under injection.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Hashable, List, Optional

from .plan import BitRot, DriverRestart, FaultPlan, NodeCrash, SlowNode

__all__ = ["FaultInjector"]

NodeId = Hashable


class FaultInjector:
    """Stateless fault oracle over one :class:`FaultPlan`."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._crash_time: Dict[NodeId, float] = {c.node: c.time for c in plan.crashes}
        self._slow: Dict[NodeId, SlowNode] = {s.node: s for s in plan.slow_nodes}

    # -- transient task failures ---------------------------------------------------

    @staticmethod
    def _uniform(*parts: object) -> float:
        """Deterministic U[0, 1) from the given identity tuple."""
        payload = "/".join(repr(p) for p in parts).encode("utf-8")
        digest = hashlib.blake2b(payload, digest_size=8).digest()
        return int.from_bytes(digest, "little") / 2.0**64

    def attempt_fails(self, task_key: str, attempt: int, node: NodeId) -> bool:
        """Whether attempt ``attempt`` of ``task_key`` on ``node`` dies."""
        t = self.plan.transient
        if t is None or t.probability <= 0.0:
            return False
        return (
            self._uniform(self.plan.seed, task_key, attempt, node) < t.probability
        )

    @property
    def waste_fraction(self) -> float:
        """Fraction of an attempt's duration burned before a transient death."""
        t = self.plan.transient
        return t.waste_fraction if t is not None else 0.5

    # -- crashes ------------------------------------------------------------------

    def crash_time(self, node: NodeId) -> Optional[float]:
        """When ``node`` dies, or ``None`` if the plan spares it."""
        return self._crash_time.get(node)

    def is_crashed(self, node: NodeId, time: float) -> bool:
        """Whether ``node`` is already dead at simulated ``time``."""
        t = self._crash_time.get(node)
        return t is not None and time >= t

    def crashes_chronological(self) -> List[NodeCrash]:
        """All planned crashes, earliest first (ties broken by node repr)."""
        return sorted(self.plan.crashes, key=lambda c: (c.time, repr(c.node)))

    # -- slowdowns ----------------------------------------------------------------

    def slowdown(self, node: NodeId, time: float = 0.0) -> float:
        """Duration multiplier for work starting on ``node`` at ``time``."""
        s = self._slow.get(node)
        if s is None or time < s.start:
            return 1.0
        return s.factor

    # -- integrity faults ----------------------------------------------------------

    def bit_rots_chronological(self) -> List[BitRot]:
        """All planned replica corruptions, earliest first (stable order)."""
        return sorted(
            self.plan.bit_rots, key=lambda r: (r.time, repr(r.node), r.block)
        )

    def stale_blocks(self) -> List[int]:
        """Block ids whose metadata entry the plan marks stale, sorted."""
        return sorted(s.block for s in self.plan.stale_metadata)

    def driver_restarts(self) -> List[DriverRestart]:
        """All planned driver restarts, earliest wave first."""
        return sorted(self.plan.driver_restarts, key=lambda r: r.wave)
