"""The fault oracle execution layers consult at event boundaries.

:class:`FaultInjector` turns a declarative :class:`~repro.faults.plan.FaultPlan`
into point queries: *does this attempt fail?*, *is this node dead yet?*,
*how slow is this node right now?*  Every answer is a pure function of the
plan — transient decisions hash ``(seed, task, attempt, node)`` through
BLAKE2b — so the engine and the discrete-event simulator stay fully
deterministic under injection.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Optional,
    Tuple,
)

from ..errors import ConfigError
from .plan import (
    BitRot,
    DriverRestart,
    FaultPlan,
    FlakyLink,
    JournalReplicaCrash,
    LeaderCrash,
    MetadataPartition,
    NodeCrash,
    ServiceCrash,
    SlowNode,
)

__all__ = ["FaultInjector", "ResolvedPartition"]

NodeId = Hashable


@dataclass(frozen=True)
class ResolvedPartition:
    """A :class:`~repro.faults.plan.NetworkPartition` with its cut set resolved.

    ``nodes`` is the concrete minority side (rack scopes expanded against
    the cluster topology); the cut is active during ``[start, heals_at)``.
    """

    nodes: FrozenSet[NodeId]
    start: float
    heals_at: float

    def active(self, time: float) -> bool:
        return self.start <= time < self.heals_at

    def sorted_nodes(self) -> List[NodeId]:
        return sorted(self.nodes, key=repr)


class FaultInjector:
    """Stateless fault oracle over one :class:`FaultPlan`."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._crash_time: Dict[NodeId, float] = {c.node: c.time for c in plan.crashes}
        self._slow: Dict[NodeId, List[SlowNode]] = {}
        for s in plan.slow_nodes:
            self._slow.setdefault(s.node, []).append(s)
        for windows in self._slow.values():
            windows.sort(key=lambda s: s.start)
        self._links: Dict[Tuple[NodeId, NodeId], List[FlakyLink]] = {}
        for l in plan.flaky_links:
            self._links.setdefault(l.edge, []).append(l)
        for faults in self._links.values():
            faults.sort(key=lambda l: l.start)
        self._partitions: Optional[List[ResolvedPartition]] = (
            [] if not plan.partitions else None
        )

    # -- transient task failures ---------------------------------------------------

    @staticmethod
    def _uniform(*parts: object) -> float:
        """Deterministic U[0, 1) from the given identity tuple."""
        payload = "/".join(repr(p) for p in parts).encode("utf-8")
        digest = hashlib.blake2b(payload, digest_size=8).digest()
        return int.from_bytes(digest, "little") / 2.0**64

    def attempt_fails(self, task_key: str, attempt: int, node: NodeId) -> bool:
        """Whether attempt ``attempt`` of ``task_key`` on ``node`` dies."""
        t = self.plan.transient
        if t is None or t.probability <= 0.0:
            return False
        return (
            self._uniform(self.plan.seed, task_key, attempt, node) < t.probability
        )

    @property
    def waste_fraction(self) -> float:
        """Fraction of an attempt's duration burned before a transient death."""
        t = self.plan.transient
        return t.waste_fraction if t is not None else 0.5

    # -- crashes ------------------------------------------------------------------

    def crash_time(self, node: NodeId) -> Optional[float]:
        """When ``node`` dies, or ``None`` if the plan spares it."""
        return self._crash_time.get(node)

    def is_crashed(self, node: NodeId, time: float) -> bool:
        """Whether ``node`` is already dead at simulated ``time``."""
        t = self._crash_time.get(node)
        return t is not None and time >= t

    def crashes_chronological(self) -> List[NodeCrash]:
        """All planned crashes, earliest first (ties broken by node repr)."""
        return sorted(self.plan.crashes, key=lambda c: (c.time, repr(c.node)))

    # -- slowdowns ----------------------------------------------------------------

    def slowdown(self, node: NodeId, time: float = 0.0) -> float:
        """Duration multiplier for work starting on ``node`` at ``time``."""
        for s in self._slow.get(node, ()):
            if s.start <= time and (s.end is None or time < s.end):
                return s.factor
        return 1.0

    # -- flaky links --------------------------------------------------------------

    def link_fault(
        self, a: NodeId, b: NodeId, time: float = 0.0
    ) -> Optional[FlakyLink]:
        """The link degradation active on edge ``(a, b)`` at ``time``, if any."""
        edge = tuple(sorted((a, b), key=repr))
        for l in self._links.get(edge, ()):  # windows are disjoint: first hit wins
            if l.start <= time and (l.end is None or time < l.end):
                return l
        return None

    def link_penalty(
        self,
        a: NodeId,
        b: NodeId,
        *,
        time: float = 0.0,
        key: str = "",
        base_cost: float = 0.0,
    ) -> float:
        """Extra seconds a transfer over edge ``(a, b)`` pays at ``time``.

        A drop (probability ``loss``, hashed from the plan seed and
        ``key``) costs one retransmission: ``base_cost`` again on top of
        the added latency.  Returns 0.0 on healthy edges.
        """
        fault = self.link_fault(a, b, time)
        if fault is None:
            return 0.0
        penalty = fault.latency_s
        if fault.loss > 0.0:
            edge = fault.edge
            coin = self._uniform(self.plan.seed, "link", edge[0], edge[1], key)
            if coin < fault.loss:
                penalty += base_cost
        return penalty

    # -- partitions ---------------------------------------------------------------

    def resolve_partitions(
        self,
        nodes: Iterable[NodeId],
        *,
        rack_of: Optional[Callable[[NodeId], int]] = None,
    ) -> List[ResolvedPartition]:
        """Expand the plan's partitions against a concrete node universe.

        Rack scopes need ``rack_of`` (the cluster topology); explicit node
        scopes must name known nodes, and a cut may never swallow the
        whole cluster (that would be an outage, not a partition).  The
        resolution is cached so later :meth:`unreachable` / :meth:`same_side`
        queries are cheap and consistent.
        """
        universe = sorted(nodes, key=repr)
        known = {repr(n) for n in universe}
        resolved: List[ResolvedPartition] = []
        for p in self.plan.partitions:
            if p.nodes:
                unknown = sorted(repr(n) for n in p.nodes if repr(n) not in known)
                if unknown:
                    raise ConfigError(
                        f"partition names unknown node(s): {', '.join(unknown)}"
                    )
                cut = frozenset(p.nodes)
            else:
                if rack_of is None:
                    raise ConfigError(
                        f"rack-scoped partition (rack={p.rack}) needs a cluster "
                        "topology to resolve — pass rack_of"
                    )
                cut = frozenset(n for n in universe if rack_of(n) == p.rack)
                if not cut:
                    raise ConfigError(f"partition rack {p.rack} holds no nodes")
            if len(cut) >= len(universe):
                raise ConfigError(
                    "partition cut covers every node — that is a full outage, "
                    "not a partition"
                )
            resolved.append(ResolvedPartition(cut, p.start, p.heals_at))
        # Rack expansion can create overlaps the plan could not see
        # (rack scope vs explicit nodes in that rack): reject them here.
        for i, x in enumerate(resolved):
            for y in resolved[i + 1 :]:
                if (
                    x.start < y.heals_at
                    and y.start < x.heals_at
                    and x.nodes & y.nodes
                ):
                    raise ConfigError(
                        "overlapping partitions share node(s): "
                        f"{sorted(repr(n) for n in x.nodes & y.nodes)}"
                    )
        resolved.sort(key=lambda p: (p.start, p.heals_at, repr(p.sorted_nodes())))
        self._partitions = resolved
        return resolved

    def partitions_chronological(self) -> List[ResolvedPartition]:
        """Resolved partitions, earliest first.

        Raises :class:`ConfigError` when the plan has partitions that were
        never resolved against a node universe.
        """
        if self._partitions is None:
            raise ConfigError(
                "plan has partitions but resolve_partitions() was never called"
            )
        return list(self._partitions)

    def unreachable(self, node: NodeId, time: float = 0.0) -> bool:
        """Whether ``node`` is behind an active partition cut at ``time``."""
        return any(
            p.active(time) and node in p.nodes
            for p in self.partitions_chronological()
        )

    def same_side(self, a: NodeId, b: NodeId, time: float = 0.0) -> bool:
        """Whether ``a`` and ``b`` can reach each other at ``time``."""
        return all(
            (a in p.nodes) == (b in p.nodes)
            for p in self.partitions_chronological()
            if p.active(time)
        )

    # -- integrity faults ----------------------------------------------------------

    def bit_rots_chronological(self) -> List[BitRot]:
        """All planned replica corruptions, earliest first (stable order)."""
        return sorted(
            self.plan.bit_rots, key=lambda r: (r.time, repr(r.node), r.block)
        )

    def stale_blocks(self) -> List[int]:
        """Block ids whose metadata entry the plan marks stale, sorted."""
        return sorted(s.block for s in self.plan.stale_metadata)

    def driver_restarts(self) -> List[DriverRestart]:
        """All planned driver restarts, earliest wave first."""
        return sorted(self.plan.driver_restarts, key=lambda r: r.wave)

    def service_crashes_chronological(self) -> List[ServiceCrash]:
        """All planned service crashes, earliest first."""
        return sorted(self.plan.service_crashes, key=lambda c: c.time)

    def leader_crashes_chronological(self) -> List[LeaderCrash]:
        """All planned metadata-leader crashes, earliest first."""
        return sorted(self.plan.leader_crashes, key=lambda c: c.time)

    def journal_crashes_chronological(self) -> List[JournalReplicaCrash]:
        """All planned journal-replica crashes, earliest first."""
        return sorted(
            self.plan.journal_crashes, key=lambda c: (c.time, c.replica)
        )

    def meta_partitions_chronological(self) -> List[MetadataPartition]:
        """All planned metadata-plane partitions, earliest first."""
        return sorted(
            self.plan.meta_partitions, key=lambda p: (p.start, p.replicas)
        )
