"""Declarative, seed-driven fault plans.

A :class:`FaultPlan` is a frozen description of everything that will go
wrong during a run: node crashes at fixed simulated times, per-attempt
transient task failures drawn from a seeded hash, slow-node degradations,
and metadata-shard outages.  Because the plan is pure data and every
random decision derives from ``(seed, task, attempt, node)`` hashes, two
runs with the same plan are bit-for-bit identical — the property the
chaos acceptance tests rely on.

Construct plans explicitly, or sample one with :meth:`FaultPlan.random`
for soak-style chaos experiments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Hashable, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigError

__all__ = [
    "NodeCrash",
    "SlowNode",
    "FlakyLink",
    "NetworkPartition",
    "TransientFaults",
    "MetaOutage",
    "BitRot",
    "StaleMetadata",
    "DriverRestart",
    "ServiceCrash",
    "LeaderCrash",
    "JournalReplicaCrash",
    "MetadataPartition",
    "FaultPlan",
]

NodeId = Hashable


def _window_end(end: Optional[float]) -> float:
    return math.inf if end is None else end


def _assert_disjoint_windows(
    windows: Sequence[Tuple[float, Optional[float]]], what: str
) -> None:
    """Fault windows on the same target must not overlap.

    Overlapping degradations would silently compose (which factor wins?),
    so the plan refuses them up front instead of guessing.
    """
    ordered = sorted(windows, key=lambda w: (w[0], _window_end(w[1])))
    for (a_start, a_end), (b_start, b_end) in zip(ordered, ordered[1:]):
        if b_start < _window_end(a_end):
            raise ConfigError(
                f"overlapping fault windows on {what}: "
                f"[{a_start}, {'inf' if a_end is None else a_end}) and "
                f"[{b_start}, {'inf' if b_end is None else b_end})"
            )


@dataclass(frozen=True)
class NodeCrash:
    """One node dies permanently at simulated time ``time``.

    Everything the node produced (selection outputs, running tasks) is
    lost; HDFS re-replication restores its block replicas elsewhere.
    """

    node: NodeId
    time: float = 0.0

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigError(f"crash time must be non-negative: {self.time}")


@dataclass(frozen=True)
class SlowNode:
    """During ``[start, end)``, tasks on ``node`` take ``factor``× longer.

    Models thermal throttling / noisy neighbours — the degradation that
    speculative execution exists to mask.  ``end=None`` means the
    slowdown never recovers (the pre-gray-failure behaviour).
    """

    node: NodeId
    factor: float
    start: float = 0.0
    end: Optional[float] = None

    def __post_init__(self) -> None:
        if self.factor < 1.0:
            raise ConfigError(f"slowdown factor must be >= 1, got {self.factor}")
        if self.start < 0:
            raise ConfigError("slowdown start must be non-negative")
        if self.end is not None and self.end <= self.start:
            raise ConfigError(
                f"zero-duration or inverted slowdown window on node "
                f"{self.node!r}: [{self.start}, {self.end})"
            )

    @property
    def window(self) -> Tuple[float, Optional[float]]:
        return (self.start, self.end)


@dataclass(frozen=True)
class FlakyLink:
    """The network edge between ``a`` and ``b`` degrades during ``[start, end)``.

    Every remote read crossing the edge pays ``latency_s`` extra, and with
    probability ``loss`` the transfer is dropped and retransmitted once
    (doubling its service time) — a deterministic coin drawn from the plan
    seed, never from global randomness.  Models a flapping NIC or a
    congested top-of-rack uplink: the classic gray failure that is
    invisible to liveness checks because both endpoints stay up.
    """

    a: NodeId
    b: NodeId
    loss: float = 0.0
    latency_s: float = 0.0
    start: float = 0.0
    end: Optional[float] = None

    def __post_init__(self) -> None:
        if repr(self.a) == repr(self.b):
            raise ConfigError(f"flaky link needs two distinct endpoints, got {self.a!r}")
        if not 0.0 <= self.loss < 1.0:
            raise ConfigError(f"link loss must be in [0, 1), got {self.loss}")
        if self.latency_s < 0:
            raise ConfigError("link latency must be non-negative")
        if self.loss == 0.0 and self.latency_s == 0.0:
            raise ConfigError("a flaky link must degrade something: loss or latency")
        if self.start < 0:
            raise ConfigError("link fault start must be non-negative")
        if self.end is not None and self.end <= self.start:
            raise ConfigError(
                f"zero-duration or inverted link-fault window on edge "
                f"{self.edge}: [{self.start}, {self.end})"
            )

    @property
    def edge(self) -> Tuple[NodeId, NodeId]:
        """Canonical undirected edge key (order-independent)."""
        return tuple(sorted((self.a, self.b), key=repr))  # type: ignore[return-value]

    @property
    def window(self) -> Tuple[float, Optional[float]]:
        return (self.start, self.end)


@dataclass(frozen=True)
class NetworkPartition:
    """A node set (or a whole rack) is unreachable during ``[start, heals_at)``.

    Scope is either an explicit ``nodes`` tuple or a ``rack`` id resolved
    against the cluster topology at injection time — exactly one of the
    two.  The cut set is the *minority* side: nodes inside it cannot be
    reached by the driver or by any node outside it, but keep running and
    rejoin intact at ``heals_at``.  Unlike a crash, no replica is lost and
    no re-replication happens — the data is merely unreachable for a
    while, which is what makes partitions gray rather than fail-stop.
    """

    nodes: Tuple[NodeId, ...] = ()
    rack: Optional[int] = None
    start: float = 0.0
    heals_at: float = 0.0

    def __post_init__(self) -> None:
        if bool(self.nodes) == (self.rack is not None):
            raise ConfigError(
                "a partition is scoped by exactly one of nodes=... or rack=..."
            )
        if len({repr(n) for n in self.nodes}) != len(self.nodes):
            raise ConfigError("duplicate nodes in partition scope")
        if self.rack is not None and self.rack < 0:
            raise ConfigError(f"rack id must be non-negative, got {self.rack}")
        if self.start < 0:
            raise ConfigError("partition start must be non-negative")
        if self.heals_at <= self.start:
            raise ConfigError(
                f"zero-duration or inverted partition window: "
                f"[{self.start}, {self.heals_at}) — heals_at must exceed start"
            )

    @property
    def window(self) -> Tuple[float, Optional[float]]:
        return (self.start, self.heals_at)


@dataclass(frozen=True)
class TransientFaults:
    """Per-attempt failure coin: each task attempt fails with ``probability``.

    ``waste_fraction`` is how far into its duration an attempt gets before
    dying (the wasted work charged to the run).  Decisions are drawn from
    the plan seed, never from global randomness.
    """

    probability: float
    waste_fraction: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability < 1.0:
            raise ConfigError(
                f"failure probability must be in [0, 1), got {self.probability}"
            )
        if not 0.0 <= self.waste_fraction <= 1.0:
            raise ConfigError("waste_fraction must be in [0, 1]")


@dataclass(frozen=True)
class MetaOutage:
    """One :class:`~repro.core.metastore.MetaNode` is unreachable for the run."""

    node_id: str

    def __post_init__(self) -> None:
        if not self.node_id:
            raise ConfigError("meta-node id must be non-empty")


@dataclass(frozen=True)
class BitRot:
    """One replica of ``block`` on ``node`` silently rots at ``time``.

    Only that node's copy diverges; the logical block and its other
    replicas stay intact, exactly like an undetected disk bit flip under
    HDFS replication.  ``time`` orders rot events; the chaos runner
    injects them before the job's first read (rot is latent by nature —
    it happened whenever the disk decayed, and is only *observable* at
    read or scrub time).
    """

    node: NodeId
    block: int
    time: float = 0.0

    def __post_init__(self) -> None:
        if self.block < 0:
            raise ConfigError(f"block id must be non-negative, got {self.block}")
        if self.time < 0:
            raise ConfigError(f"rot time must be non-negative: {self.time}")


@dataclass(frozen=True)
class StaleMetadata:
    """The ElasticMap entry for ``block`` no longer matches the block.

    Models a metadata update lost or applied out of order: the entry
    describes an older version of the block, so its fingerprint disagrees
    with the stored content.  Detected by
    :meth:`repro.core.datanet.DataNet.validate_integrity`.
    """

    block: int

    def __post_init__(self) -> None:
        if self.block < 0:
            raise ConfigError(f"block id must be non-negative, got {self.block}")


@dataclass(frozen=True)
class DriverRestart:
    """The job driver dies mid-wave ``wave`` and restarts from checkpoint.

    Work in flight during that wave is lost (``waste_fraction`` of each
    task's duration) and the restarted driver resumes from the last
    durable wave checkpoint after ``restart_delay_s``.  Output must be
    byte-identical to an uninterrupted run; only time is lost.
    """

    wave: int
    waste_fraction: float = 0.5
    restart_delay_s: float = 1.0

    def __post_init__(self) -> None:
        if self.wave < 0:
            raise ConfigError(f"wave must be non-negative, got {self.wave}")
        if not 0.0 <= self.waste_fraction <= 1.0:
            raise ConfigError("waste_fraction must be in [0, 1]")
        if self.restart_delay_s < 0:
            raise ConfigError("restart_delay_s must be non-negative")


@dataclass(frozen=True)
class ServiceCrash:
    """The long-lived analysis service dies at ``time`` and restarts.

    Unlike :class:`DriverRestart` (one job's driver, wave-granular), this
    kills the whole multi-tenant daemon: in-memory metadata is lost and
    must be rebuilt from the write-ahead journal, in-flight jobs are
    re-queued, and submissions during the ``restart_delay_s`` outage are
    shed with a typed rejection.  If an ingest batch is being journaled
    when the crash lands, only records committed before ``time`` are
    durable — recovery replays the journal and re-indexes the rest, and
    the final metadata must be byte-identical to an uninterrupted run.
    """

    time: float
    restart_delay_s: float = 1.0

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigError(f"crash time must be non-negative, got {self.time}")
        if self.restart_delay_s < 0:
            raise ConfigError("restart_delay_s must be non-negative")


@dataclass(frozen=True)
class LeaderCrash:
    """The metadata-plane *leader* dies at ``time``; a follower takes over.

    Unlike :class:`ServiceCrash` (the whole daemon restarts and sheds
    submissions with a typed rejection), only the leader role dies here:
    the replicated journal quorum survives, the φ-accrual detector takes
    ``detect_delay`` to declare the leader dead, a Raft-lite election
    fences a new epoch, and every job in flight or submitted during the
    outage is *parked and replayed* — nothing is shed, ``silent_drops``
    stays zero, and the final digests must match the crash-free run.
    """

    time: float
    suspicion_threshold: float = 1.0

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigError(f"crash time must be non-negative, got {self.time}")
        if self.suspicion_threshold <= 0:
            raise ConfigError("suspicion_threshold must be positive")


@dataclass(frozen=True)
class JournalReplicaCrash:
    """One journal replica dies at ``time`` and restarts at ``restores_at``.

    A minority of these must never block commits (quorum absorbs them);
    on restore the replica catches up via anti-entropy frame transfer.
    ``at_byte`` optionally truncates the replica's durable log there,
    modelling a crash mid-write (the torn tail is dropped on re-open).
    ``restores_at=None`` keeps the replica down for the rest of the run.
    """

    replica: str
    time: float
    restores_at: Optional[float] = None
    at_byte: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.replica:
            raise ConfigError("journal replica id must be non-empty")
        if self.time < 0:
            raise ConfigError(f"crash time must be non-negative, got {self.time}")
        if self.restores_at is not None and self.restores_at <= self.time:
            raise ConfigError(
                f"zero-duration or inverted replica outage on {self.replica!r}: "
                f"[{self.time}, {self.restores_at})"
            )
        if self.at_byte is not None and self.at_byte < 0:
            raise ConfigError("at_byte must be non-negative")

    @property
    def window(self) -> Tuple[float, Optional[float]]:
        return (self.time, self.restores_at)


@dataclass(frozen=True)
class MetadataPartition:
    """Journal replicas unreachable from the leader during ``[start, heals_at)``.

    The storage-plane cousin is :class:`NetworkPartition`; this one cuts
    the *metadata* plane.  While a minority is cut, appends still commit
    at quorum; cutting a majority makes appends fail with a typed
    ``QuorumLostError`` and the service parks ingest until the heal, when
    anti-entropy catches the returning replicas up.
    """

    replicas: Tuple[str, ...]
    start: float = 0.0
    heals_at: float = 0.0

    def __post_init__(self) -> None:
        if not self.replicas:
            raise ConfigError("a metadata partition must cut at least one replica")
        if len(set(self.replicas)) != len(self.replicas):
            raise ConfigError("duplicate replicas in metadata partition scope")
        if any(not r for r in self.replicas):
            raise ConfigError("journal replica ids must be non-empty")
        if self.start < 0:
            raise ConfigError("partition start must be non-negative")
        if self.heals_at <= self.start:
            raise ConfigError(
                f"zero-duration or inverted metadata-partition window: "
                f"[{self.start}, {self.heals_at}) — heals_at must exceed start"
            )

    @property
    def window(self) -> Tuple[float, Optional[float]]:
        return (self.start, self.heals_at)


@dataclass(frozen=True)
class FaultPlan:
    """The full failure script for one chaos run.

    Attributes:
        seed: drives every hash-based decision (transient coin flips).
        crashes: permanent node deaths, at most one per node.
        slow_nodes: slow-node degradations; windows on the same node must
            not overlap (disjoint windows are fine).
        flaky_links: per-edge loss/latency degradations; windows on the
            same undirected edge must not overlap.
        partitions: rack- or node-set-scoped network partitions that heal
            at a configured time; windows sharing a node must not overlap.
        transient: per-attempt transient failure model (``None`` disables).
        meta_outages: metadata shards down for the whole run.
        bit_rots: silent replica corruptions, at most one per (node, block).
        stale_metadata: ElasticMap entries diverged from their blocks, at
            most one per block.
        driver_restarts: mid-job driver deaths, at most one per wave.
        service_crashes: whole-service deaths (``repro.serve``), at most
            one per time point.
        leader_crashes: metadata-plane leader deaths (quorum survives,
            failover elects a successor), at most one per time point.
        journal_crashes: journal replica deaths; windows on the same
            replica must not overlap.
        meta_partitions: metadata-plane partitions; windows sharing a
            replica must not overlap.
    """

    seed: int = 0
    crashes: Tuple[NodeCrash, ...] = ()
    slow_nodes: Tuple[SlowNode, ...] = ()
    flaky_links: Tuple[FlakyLink, ...] = ()
    partitions: Tuple[NetworkPartition, ...] = ()
    transient: Optional[TransientFaults] = None
    meta_outages: Tuple[MetaOutage, ...] = ()
    bit_rots: Tuple[BitRot, ...] = ()
    stale_metadata: Tuple[StaleMetadata, ...] = ()
    driver_restarts: Tuple[DriverRestart, ...] = ()
    service_crashes: Tuple[ServiceCrash, ...] = ()
    leader_crashes: Tuple[LeaderCrash, ...] = ()
    journal_crashes: Tuple[JournalReplicaCrash, ...] = ()
    meta_partitions: Tuple[MetadataPartition, ...] = ()

    def __post_init__(self) -> None:
        crash_nodes = [c.node for c in self.crashes]
        if len(set(crash_nodes)) != len(crash_nodes):
            raise ConfigError("a node can only crash once per plan")
        by_node: dict = {}
        for s in self.slow_nodes:
            by_node.setdefault(repr(s.node), []).append(s)
        for key, slows in sorted(by_node.items()):
            _assert_disjoint_windows(
                [s.window for s in slows], f"slow node {key}"
            )
        by_edge: dict = {}
        for l in self.flaky_links:
            by_edge.setdefault(repr(l.edge), []).append(l)
        for key, links in sorted(by_edge.items()):
            _assert_disjoint_windows(
                [l.window for l in links], f"link {key}"
            )
        by_member: dict = {}
        for p in self.partitions:
            if p.nodes:
                for n in p.nodes:
                    by_member.setdefault(f"node {n!r}", []).append(p)
            else:
                by_member.setdefault(f"rack {p.rack}", []).append(p)
        for key, parts in sorted(by_member.items()):
            _assert_disjoint_windows(
                [p.window for p in parts], f"partitioned {key}"
            )
        outs = [o.node_id for o in self.meta_outages]
        if len(set(outs)) != len(outs):
            raise ConfigError("duplicate meta-node outage")
        rots = [(r.node, r.block) for r in self.bit_rots]
        if len(set(rots)) != len(rots):
            raise ConfigError("at most one bit rot per (node, block) replica")
        stale = [s.block for s in self.stale_metadata]
        if len(set(stale)) != len(stale):
            raise ConfigError("at most one stale-metadata entry per block")
        waves = [r.wave for r in self.driver_restarts]
        if len(set(waves)) != len(waves):
            raise ConfigError("at most one driver restart per wave")
        crash_times = [c.time for c in self.service_crashes]
        if len(set(crash_times)) != len(crash_times):
            raise ConfigError("at most one service crash per time point")
        leader_times = [c.time for c in self.leader_crashes]
        if len(set(leader_times)) != len(leader_times):
            raise ConfigError("at most one leader crash per time point")
        by_replica: dict = {}
        for jc in self.journal_crashes:
            by_replica.setdefault(jc.replica, []).append(jc)
        for key, crashes in sorted(by_replica.items()):
            _assert_disjoint_windows(
                [c.window for c in crashes], f"journal replica {key!r}"
            )
        by_jmember: dict = {}
        for mp in self.meta_partitions:
            for r in mp.replicas:
                by_jmember.setdefault(r, []).append(mp)
        for key, parts in sorted(by_jmember.items()):
            _assert_disjoint_windows(
                [p.window for p in parts], f"partitioned journal replica {key!r}"
            )

    # -- queries -----------------------------------------------------------------

    @property
    def crashed_nodes(self) -> Tuple[NodeId, ...]:
        """Nodes the plan kills, in crash-time order."""
        return tuple(c.node for c in sorted(self.crashes, key=lambda c: (c.time, repr(c.node))))

    @property
    def has_gray(self) -> bool:
        """True when the plan injects any gray (non-fail-stop) fault."""
        return bool(self.slow_nodes or self.flaky_links or self.partitions)

    def is_empty(self) -> bool:
        """True when the plan injects nothing at all."""
        return not (
            self.crashes
            or self.slow_nodes
            or self.flaky_links
            or self.partitions
            or self.transient
            or self.meta_outages
            or self.bit_rots
            or self.stale_metadata
            or self.driver_restarts
            or self.service_crashes
            or self.leader_crashes
            or self.journal_crashes
            or self.meta_partitions
        )

    # -- construction ------------------------------------------------------------

    @classmethod
    def random(
        cls,
        seed: int,
        nodes: Sequence[NodeId],
        *,
        crash_count: int = 1,
        crash_horizon_s: float = 10.0,
        flaky_probability: float = 0.05,
        slow_count: int = 0,
        slow_factor: float = 2.0,
        bitrot_count: int = 0,
        num_blocks: Optional[int] = None,
    ) -> "FaultPlan":
        """Sample a plan from a seed — the soak-test entry point.

        Crash victims and times, slow nodes, bit-rot targets and the
        transient probability all come from ``numpy``'s seeded generator,
        so the same seed over the same node list yields the same plan.
        ``bitrot_count`` requires ``num_blocks`` (the sampled (node, block)
        pairs must land on real blocks); the chaos runner resolves a pair
        whose node holds no replica to the block's primary replica.
        """
        universe = list(nodes)
        if crash_count + slow_count > len(universe):
            raise ConfigError(
                f"cannot pick {crash_count} crashes + {slow_count} slow nodes "
                f"from {len(universe)} nodes"
            )
        if crash_horizon_s < 0:
            raise ConfigError("crash_horizon_s must be non-negative")
        rng = np.random.default_rng(seed)
        picks = list(rng.choice(len(universe), size=crash_count + slow_count, replace=False))
        crashes = tuple(
            NodeCrash(universe[int(i)], float(rng.uniform(0.0, crash_horizon_s)))
            for i in picks[:crash_count]
        )
        slow = tuple(
            SlowNode(universe[int(i)], slow_factor) for i in picks[crash_count:]
        )
        transient = (
            TransientFaults(flaky_probability) if flaky_probability > 0 else None
        )
        bit_rots: Tuple[BitRot, ...] = ()
        if bitrot_count > 0:
            if num_blocks is None or num_blocks <= 0:
                raise ConfigError(
                    "bitrot_count requires a positive num_blocks to sample from"
                )
            cells = len(universe) * num_blocks
            if bitrot_count > cells:
                raise ConfigError(
                    f"cannot pick {bitrot_count} bit rots from {cells} replicas"
                )
            flat = rng.choice(cells, size=bitrot_count, replace=False)
            bit_rots = tuple(
                BitRot(universe[int(i) // num_blocks], int(i) % num_blocks)
                for i in sorted(int(i) for i in flat)
            )
        return cls(
            seed=seed,
            crashes=crashes,
            slow_nodes=slow,
            transient=transient,
            bit_rots=bit_rots,
        )
