"""Task-attempt lifecycle: retry budgets, backoff, blacklists, accounting.

Replaces the run-once task model: a task is now a sequence of *attempts*.
Each attempt either succeeds, dies to a transient fault (retried on the
same node after exponential backoff), or is lost to a node crash (retried
elsewhere after the heartbeat timeout detects the death).  A node that
keeps killing attempts gets blacklisted, mirroring Hadoop's per-job
TaskTracker blacklist.

:class:`AttemptLog` is the shared ledger — the attempts histogram and
wasted-work totals surfaced by :mod:`repro.metrics.recovery` come from it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Set, Tuple

from ..errors import ConfigError, TaskAttemptError
from ..obs import NULL_OBS, Observability
from .injector import FaultInjector

__all__ = ["RetryPolicy", "AttemptRecord", "AttemptLog", "NodeBlacklist", "run_attempts"]

NodeId = Hashable


@dataclass(frozen=True)
class RetryPolicy:
    """Knobs of the attempt lifecycle.

    Attributes:
        max_attempts: total tries per task before the job fails.
        backoff_base_s: delay before the second attempt.
        backoff_factor: multiplier per subsequent retry (exponential).
        heartbeat_timeout_s: how long a crash goes undetected — lost tasks
            are only rescheduled this long after the node died.
        blacklist_after: transient failures on one node before it stops
            receiving new work.
        jitter: ``"none"`` keeps the deterministic exponential schedule;
            ``"full"`` draws each delay uniformly from ``[0, exponential)``
            (AWS full jitter) using a seeded hash of the task key, so
            tenants that fail together do not retry in lockstep yet two
            runs of the same plan still back off identically.
        max_elapsed_s: optional cap on *cumulative* backoff per task — a
            delay never extends a task's total waiting past this budget.
    """

    max_attempts: int = 4
    backoff_base_s: float = 0.5
    backoff_factor: float = 2.0
    heartbeat_timeout_s: float = 2.0
    blacklist_after: int = 3
    jitter: str = "none"
    max_elapsed_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts <= 0:
            raise ConfigError("max_attempts must be positive")
        if self.backoff_base_s < 0 or self.heartbeat_timeout_s < 0:
            raise ConfigError("backoff and heartbeat timeout must be non-negative")
        if self.backoff_factor < 1.0:
            raise ConfigError("backoff_factor must be >= 1")
        if self.blacklist_after <= 0:
            raise ConfigError("blacklist_after must be positive")
        if self.jitter not in ("none", "full"):
            raise ConfigError(f"jitter must be 'none' or 'full', got {self.jitter!r}")
        if self.max_elapsed_s is not None and self.max_elapsed_s <= 0:
            raise ConfigError("max_elapsed_s must be positive when set")

    def backoff(
        self,
        failed_attempts: int,
        *,
        task_key: str = "",
        seed: int = 0,
        waited_s: float = 0.0,
    ) -> float:
        """Delay after ``failed_attempts`` consecutive failures (>= 1).

        ``task_key``/``seed`` feed the jitter hash and ``waited_s`` is the
        backoff already served for this task (for the ``max_elapsed_s``
        budget); all three are ignored by the default policy, so existing
        callers see byte-identical delays.
        """
        if failed_attempts <= 0:
            raise ConfigError("backoff needs at least one failed attempt")
        delay = self.backoff_base_s * self.backoff_factor ** (failed_attempts - 1)
        if self.jitter == "full":
            digest = hashlib.blake2b(
                f"backoff/{seed}/{task_key}/{failed_attempts}".encode("utf-8"),
                digest_size=8,
            ).digest()
            delay *= int.from_bytes(digest, "little") / float(1 << 64)
        if self.max_elapsed_s is not None:
            delay = min(delay, max(0.0, self.max_elapsed_s - waited_s))
        return delay


@dataclass(frozen=True)
class AttemptRecord:
    """One attempt's outcome: ``ok``, ``fault`` (transient), ``crash`` or
    ``partition`` (work discarded behind a network cut)."""

    task_key: str
    node: NodeId
    attempt: int
    outcome: str
    wasted_s: float = 0.0


class AttemptLog:
    """Append-only ledger of every attempt across a run."""

    def __init__(self) -> None:
        self.records: List[AttemptRecord] = []

    def record(
        self,
        task_key: str,
        node: NodeId,
        attempt: int,
        outcome: str,
        wasted_s: float = 0.0,
    ) -> None:
        if outcome not in ("ok", "fault", "crash", "partition"):
            raise ConfigError(f"unknown attempt outcome {outcome!r}")
        self.records.append(AttemptRecord(task_key, node, attempt, outcome, wasted_s))

    # -- aggregate views -----------------------------------------------------------

    def attempts_of(self, task_key: str) -> int:
        """Total attempts charged to one task so far."""
        return sum(1 for r in self.records if r.task_key == task_key)

    def histogram(self) -> Dict[int, int]:
        """``attempts needed -> task count`` over completed tasks.

        A failure-free run is ``{1: num_tasks}``; anything at 2+ is
        recovery work.
        """
        per_task: Dict[str, int] = {}
        completed: Set[str] = set()
        for r in self.records:
            per_task[r.task_key] = per_task.get(r.task_key, 0) + 1
            if r.outcome == "ok":
                completed.add(r.task_key)
        out: Dict[int, int] = {}
        for task_key in completed:
            n = per_task[task_key]
            out[n] = out.get(n, 0) + 1
        return dict(sorted(out.items()))

    @property
    def wasted_seconds(self) -> float:
        """Simulated seconds burned by attempts that did not complete."""
        return sum(r.wasted_s for r in self.records)

    @property
    def num_failures(self) -> int:
        """Attempts that ended in a transient fault or crash."""
        return sum(1 for r in self.records if r.outcome != "ok")


class NodeBlacklist:
    """Per-run node blacklist: too many failures and a node is benched."""

    def __init__(self, threshold: int) -> None:
        if threshold <= 0:
            raise ConfigError("blacklist threshold must be positive")
        self.threshold = threshold
        self._failures: Dict[NodeId, int] = {}
        self._blacklisted: Set[NodeId] = set()

    def record_failure(self, node: NodeId) -> bool:
        """Charge one failure to ``node``; True when this newly benches it."""
        count = self._failures.get(node, 0) + 1
        self._failures[node] = count
        if count >= self.threshold and node not in self._blacklisted:
            self._blacklisted.add(node)
            return True
        return False

    def is_blacklisted(self, node: NodeId) -> bool:
        return node in self._blacklisted

    def failures_on(self, node: NodeId) -> int:
        return self._failures.get(node, 0)

    @property
    def nodes(self) -> List[NodeId]:
        """Currently blacklisted nodes, sorted."""
        return sorted(self._blacklisted, key=repr)


def run_attempts(
    base_duration: float,
    node: NodeId,
    task_key: str,
    injector: FaultInjector,
    policy: RetryPolicy,
    log: AttemptLog,
    blacklist: NodeBlacklist,
    *,
    start_time: float = 0.0,
    first_attempt: int = 1,
    obs: Observability = NULL_OBS,
) -> Tuple[float, int]:
    """Drive one task through the attempt lifecycle on a fixed node.

    Returns ``(elapsed_seconds, attempts_used)`` where ``elapsed_seconds``
    includes wasted partial attempts and backoff waits, ending at the
    successful completion.

    With a live ``obs`` bundle, emits one ``task``-category parent span
    plus one ``attempt``-category child per try; failed attempts end at
    the fault, so the backoff delay shows as a gap before the next child.

    Raises:
        TaskAttemptError: when the retry budget is exhausted.
    """
    traced = obs.tracer.enabled
    parent = None
    if traced:
        parent = obs.tracer.record(
            task_key,
            category="task",
            sim_start=start_time,
            sim_end=start_time,
            track=f"node {node}",
        )
    elapsed = 0.0
    waited = 0.0
    attempt = first_attempt
    failures_here = 0
    while attempt <= policy.max_attempts:
        duration = base_duration * injector.slowdown(node, start_time + elapsed)
        if injector.attempt_fails(task_key, attempt, node):
            wasted = duration * injector.waste_fraction
            log.record(task_key, node, attempt, "fault", wasted)
            blacklist.record_failure(node)
            failures_here += 1
            delay = policy.backoff(
                failures_here,
                task_key=task_key,
                seed=injector.plan.seed,
                waited_s=waited,
            )
            if traced:
                obs.tracer.record(
                    f"{task_key}#a{attempt}",
                    category="attempt",
                    sim_start=start_time + elapsed,
                    sim_end=start_time + elapsed + wasted,
                    parent=parent.span_id,
                    track=f"node {node}",
                    outcome="fault",
                    backoff_s=delay,
                )
            if obs.metrics.enabled:
                obs.metrics.counter(
                    "fault_attempts_total",
                    help="task attempts by outcome",
                    labelnames=("outcome",),
                ).inc(outcome="fault")
                obs.metrics.counter(
                    "retry_backoff_seconds_total",
                    help="simulated seconds spent waiting out backoff",
                ).inc(delay)
            elapsed += wasted + delay
            waited += delay
            attempt += 1
            continue
        if traced:
            obs.tracer.record(
                f"{task_key}#a{attempt}",
                category="attempt",
                sim_start=start_time + elapsed,
                sim_end=start_time + elapsed + duration,
                parent=parent.span_id,
                track=f"node {node}",
                outcome="ok",
            )
        elapsed += duration
        log.record(task_key, node, attempt, "ok")
        if traced:
            parent.sim_end = start_time + elapsed
            parent.attrs["attempts"] = attempt - first_attempt + 1
        if obs.metrics.enabled:
            obs.metrics.counter(
                "fault_attempts_total",
                help="task attempts by outcome",
                labelnames=("outcome",),
            ).inc(outcome="ok")
        return elapsed, attempt - first_attempt + 1
    if traced:
        parent.sim_end = start_time + elapsed
        parent.attrs["outcome"] = "exhausted"
    raise TaskAttemptError(
        f"task {task_key!r} failed {policy.max_attempts} attempts "
        f"(last node {node!r})",
        task_id=task_key,
        node=node,
        attempts=policy.max_attempts,
    )
