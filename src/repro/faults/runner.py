"""Mid-job fault recovery: run a whole analysis job under a fault plan.

:class:`ChaosRunner` executes the paper's two-phase workflow while the
:class:`~repro.faults.injector.FaultInjector` fires: selection tasks run
through the retry lifecycle, planned node crashes kill everything their
node produced, HDFS re-replication restores replica counts, and the lost
work is rescheduled onto live replicas by rebuilding the DataNet
bipartite graph without the dead/blacklisted nodes.  When a distributed
metadata shard is down, affected blocks degrade to locality-only
scheduling instead of failing the job (:mod:`repro.faults.degrade`).

Gray failures get the same treatment as fail-stop ones, one layer up:

* a heartbeat probe feeds the φ-accrual :class:`HealthDetector`, whose
  scores become per-node capacities for the distribution-aware scheduler
  (slow nodes get proportionally less work instead of being benched);
* remote reads go through the :class:`~repro.hdfs.hedged.HedgedReader`,
  racing a backup replica once the adaptive latency trigger fires;
* network partitions run as chronological events interleaved with
  crashes: work behind the cut is discarded and re-executed on the
  majority side (detected a heartbeat later), blocks with *no* reachable
  replica are deferred until the cut heals, and the minority nodes rejoin
  intact at heal time — no re-replication, because no replica was lost.

Guarantees (covered by the chaos + gray test suites):

* **Determinism** — the same plan over the same seeded cluster yields an
  identical :class:`~repro.mapreduce.engine.JobResult`, byte for byte.
* **Output safety** — the analysis output equals the failure-free run's
  output: recovery reschedules work, it never drops or double-counts a
  block.

Timing model: per-node sequential execution (the engine's default
``map_slots=1``), a crash loses every selection output the node held,
detection lags by the heartbeat timeout, and recovered tasks join the
back of their new node's queue.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

from ..core.datanet import DataNet
from ..core.elasticmap import BlockElasticMap
from ..core.metastore import DistributedMetaStore
from ..core.scheduler import Assignment, DistributionAwareScheduler
from ..errors import ConfigError, FaultError
from ..hdfs.cluster import DatasetView, HDFSCluster
from ..hdfs.failure import FailureManager
from ..hdfs.records import Record
from ..hdfs.scrubber import ReadVerifier, Scrubber
from ..mapreduce.checkpoint import WaveCheckpoint
from ..mapreduce.costmodel import ClusterCostModel
from ..mapreduce.engine import JobResult, MapReduceEngine, PhaseResult, SelectionResult
from ..mapreduce.job import MapReduceJob
from ..metrics.integrity import IntegritySummary
from ..metrics.recovery import RecoverySummary
from ..obs import NULL_OBS, Observability
from .degrade import degraded_schedule
from .health import HealthDetector
from .injector import FaultInjector
from .plan import FaultPlan
from .retry import AttemptLog, NodeBlacklist, RetryPolicy, run_attempts

__all__ = ["ChaosRunner", "ChaosReport"]

NodeId = Hashable

#: capacity floor handed to the scheduler for deeply suspected nodes
MIN_HEALTH_CAPACITY = 0.05


@dataclass
class ChaosReport:
    """Everything a chaos run produced, fault-free reference included."""

    job: JobResult
    baseline: JobResult
    plan: FaultPlan
    attempts_histogram: Dict[int, int]
    wasted_seconds: float
    re_replicated_bytes: int
    dead_nodes: List[NodeId]
    blacklisted_nodes: List[NodeId]
    degraded_blocks: List[int]
    rescheduled_blocks: List[int]
    integrity: IntegritySummary
    partition_events: int = 0
    deferred_blocks: List[int] = field(default_factory=list)
    hedged_reads: int = 0
    hedges_won: int = 0
    hedge_wasted_seconds: float = 0.0
    health: Dict[NodeId, float] = field(default_factory=dict)
    reconstructions: int = 0
    reconstructed_bytes: int = 0
    decode_bytes: int = 0
    degraded_reads: int = 0
    quarantined_blocks: int = 0

    @property
    def makespan(self) -> float:
        return self.job.makespan

    @property
    def recovery_overhead(self) -> float:
        """Extra makespan paid for surviving the plan, as a fraction."""
        base = self.baseline.makespan
        return (self.job.makespan - base) / base if base > 0 else 0.0

    @property
    def output_matches_baseline(self) -> bool:
        """Recovery must never change the analysis answer."""
        return self.job.output == self.baseline.output

    def summary(self) -> RecoverySummary:
        """The observability record for :mod:`repro.metrics`."""
        return RecoverySummary(
            attempts_histogram=dict(self.attempts_histogram),
            wasted_seconds=self.wasted_seconds,
            re_replicated_bytes=self.re_replicated_bytes,
            baseline_makespan=self.baseline.makespan,
            makespan=self.job.makespan,
            dead_nodes=len(self.dead_nodes),
            blacklisted_nodes=len(self.blacklisted_nodes),
            degraded_blocks=len(self.degraded_blocks),
            rescheduled_blocks=len(self.rescheduled_blocks),
            scrub_bytes=self.integrity.scrub_bytes,
            repaired_replicas=self.integrity.corruptions_repaired,
            rebuilt_blocks=self.integrity.rebuilt_blocks,
            driver_restarts=self.integrity.driver_restarts,
            resume_wasted_seconds=self.integrity.resume_wasted_seconds,
            partition_events=self.partition_events,
            deferred_blocks=len(self.deferred_blocks),
            hedged_reads=self.hedged_reads,
            hedges_won=self.hedges_won,
            hedge_wasted_seconds=self.hedge_wasted_seconds,
            reconstructions=self.reconstructions,
            reconstructed_bytes=self.reconstructed_bytes,
            decode_bytes=self.decode_bytes,
            degraded_reads=self.degraded_reads,
            quarantined_blocks=self.quarantined_blocks,
        )

    def format(self) -> str:
        parts = [self.summary().format()]
        if self.integrity.corruptions_injected or self.integrity.stale_entries:
            parts.append(self.integrity.format())
        return "\n\n".join(parts)


class ChaosRunner:
    """Fault-tolerant job executor bound to one cluster and one plan.

    Args:
        cluster: the HDFS substrate.  The runner *mutates* it on crashes
            (re-replication moves replicas), so use a fresh cluster per
            run — which is also what determinism tests do.
        plan: the fault script.
        cost: hardware cost parameters (engine defaults when omitted).
        retry: attempt lifecycle knobs (defaults per :class:`RetryPolicy`).
        metastore: optional distributed metadata fleet.  When given, the
            schedule is built through it with per-block degradation; plan
            meta-outages are applied to it before scheduling.
        alpha: ElasticMap sizing for the metadata build.
        detect: run the φ-accrual heartbeat probe before scheduling and
            weight node capacities by its health scores (gray plans only).
        hedge: route remote reads through the hedged read path (gray
            plans only).
    """

    def __init__(
        self,
        cluster: HDFSCluster,
        plan: FaultPlan,
        *,
        cost: Optional[ClusterCostModel] = None,
        retry: Optional[RetryPolicy] = None,
        metastore: Optional[DistributedMetaStore] = None,
        alpha: float = 0.3,
        detect: bool = True,
        hedge: bool = True,
        obs: Observability = NULL_OBS,
    ) -> None:
        for crash in plan.crashes:
            if crash.node not in cluster.datanodes:
                raise ConfigError(f"plan crashes unknown node {crash.node!r}")
        for rot in plan.bit_rots:
            if rot.node not in cluster.datanodes:
                raise ConfigError(f"plan rots replica on unknown node {rot.node!r}")
        for link in plan.flaky_links:
            for endpoint in (link.a, link.b):
                if endpoint not in cluster.datanodes:
                    raise ConfigError(
                        f"plan degrades link at unknown node {endpoint!r}"
                    )
        if plan.driver_restarts and plan.crashes:
            raise ConfigError(
                "driver restarts cannot be combined with node crashes: "
                "checkpointed waves and crash rescheduling assume different "
                "execution orders"
            )
        if plan.driver_restarts and (plan.partitions or plan.flaky_links):
            raise ConfigError(
                "driver restarts cannot be combined with partitions or flaky "
                "links: the checkpointed wave path has no network model"
            )
        if plan.driver_restarts and cluster.coding is not None:
            raise ConfigError(
                "driver restarts cannot be combined with erasure coding: "
                "the checkpointed wave path does not thread the coded reader, "
                "so its fragment counters would silently go missing"
            )
        self.cluster = cluster
        self.plan = plan
        self.injector = FaultInjector(plan)
        if plan.partitions:
            # resolve rack scopes against the topology up front so a bad
            # plan fails at construction, not mid-job
            self.injector.resolve_partitions(
                sorted(cluster.datanodes), rack_of=cluster.rack_of
            )
        self.retry = retry or RetryPolicy()
        self.detect = detect
        self.hedge = hedge
        self.obs = obs
        self.engine = MapReduceEngine(cluster, cost, obs=obs)
        self.metastore = metastore
        self.alpha = alpha
        self.failures = FailureManager(cluster)

    # -- partition helpers --------------------------------------------------------

    def _cut_at(self, time: float) -> Set[NodeId]:
        """Union of partition cut sets active at ``time``."""
        if not self.plan.partitions:
            return set()
        return {
            n
            for p in self.injector.partitions_chronological()
            if p.active(time)
            for n in p.nodes
        }

    # -- the full pipeline --------------------------------------------------------

    def run(self, dataset: DatasetView, sub_id: str, job: MapReduceJob) -> ChaosReport:
        """Execute ``job`` over ``sub_id`` while the plan fires.

        The failure-free baseline is computed first, on the untouched
        cluster, so overhead and output-equality are measured against the
        exact run the faults perturb.
        """
        with self.obs.tracer.span(
            "chaos/run", category="run", dataset=dataset.name, sub=sub_id
        ):
            return self._run_inner(dataset, sub_id, job)

    def _run_inner(
        self, dataset: DatasetView, sub_id: str, job: MapReduceJob
    ) -> ChaosReport:
        datanet = DataNet.build(dataset, alpha=self.alpha, obs=self.obs)
        with self.obs.tracer.span("baseline", category="phase"):
            baseline = self.engine.run_job(
                dataset, sub_id, job, datanet.schedule(sub_id)
            )

        # Integrity faults strike after the baseline is captured: stale
        # metadata is diverged and then caught by standing validation
        # (before anything downstream trusts the array), and bit rot is
        # planted latent in the replicas the selection phase will read.
        stale = self._tamper_stale_entries(datanet, dataset)
        validation = datanet.validate_integrity(dataset)
        injected = self._inject_bit_rots(dataset)
        verifier = ReadVerifier(self.cluster, obs=self.obs)

        # Gray-failure instrumentation: the heartbeat probe runs before
        # scheduling (the detector can only steer decisions it precedes).
        gray = self.plan.has_gray
        detector: Optional[HealthDetector] = None
        health: Optional[Dict[NodeId, float]] = None
        if gray and self.detect:
            detector = HealthDetector(
                expected_interval_s=max(self.retry.heartbeat_timeout_s / 2.0, 1e-6)
            )
            all_nodes = sorted(self.cluster.datanodes)
            detector.observe_heartbeats(all_nodes, self.injector, count=8)
            health = detector.scores(all_nodes)
            detector.export(
                self.obs, all_nodes, now=8 * detector.expected_interval_s
            )
        coded_mode = dataset.coding is not None
        coded = None
        hedged = None
        if coded_mode:
            # coded datasets have no whole-block replicas: one reader
            # subsumes verification (fragment checksums), hedging (k + 1
            # fragment races) and degraded decodes, for every read path
            from ..hdfs.coded import CodedReader  # deferred: import cycle

            coded = CodedReader(
                self.cluster,
                self.injector,
                detector=detector,
                failures=self.failures,
                obs=self.obs,
            )
        elif gray and self.hedge and not self.plan.driver_restarts:
            from ..hdfs.hedged import HedgedReader  # deferred: import cycle

            hedged = HedgedReader(
                self.cluster,
                self.injector,
                detector=detector,
                verify=verifier,
                obs=self.obs,
            )

        degraded: List[int] = []
        deferred0: List[int] = []
        cut0 = self._cut_at(0.0)
        if self.metastore is not None:
            if not self.metastore.block_ids:
                self.metastore.load_array(datanet.elasticmap)
            for outage in self.plan.meta_outages:
                self.metastore.fail_node(outage.node_id)
            assignment, _healthy, degraded = degraded_schedule(
                self.metastore, dataset, sub_id, live_nodes=self.failures.live_nodes
            )
        elif gray and self.detect and (health is not None or cut0):
            assignment, deferred0 = datanet.gray_schedule(
                sub_id,
                health=health,
                unreachable=sorted(cut0, key=repr),
                min_capacity=MIN_HEALTH_CAPACITY,
            )
        else:
            assignment = datanet.schedule(sub_id)

        log = AttemptLog()
        blacklist = NodeBlacklist(self.retry.blacklist_after)
        resume_wasted = 0.0
        restarts_survived = 0
        partition_events = 0
        deferred_blocks: List[int] = []
        with self.obs.tracer.span(f"selection/{sub_id}", category="phase") as sel_span:
            if self.plan.driver_restarts:
                selection, resume_wasted, restarts_survived = (
                    self._selection_with_restarts(
                        dataset, sub_id, assignment, job.profile, log, blacklist,
                        verifier,
                    )
                )
                crash_waste, rescheduled = 0.0, []
            else:
                (
                    selection,
                    crash_waste,
                    rescheduled,
                    partition_events,
                    deferred_blocks,
                ) = self._selection_with_recovery(
                    dataset, sub_id, assignment, job.profile, datanet, log, blacklist,
                    verifier,
                    hedged=hedged,
                    coded=coded,
                    health=health,
                    deferred0=deferred0,
                )
            sel_span.sim(0.0, selection.makespan)
        # Background scrub: repair rot the read path never touched (replicas
        # of unselected blocks, or copies a task skipped over).  Off the job
        # clock, like HDFS's block scanner.  Repair sources prefer the
        # healthiest verified holders when the detector ran.
        scrub = Scrubber(
            self.cluster, failures=self.failures, health=health, obs=self.obs
        ).scrub(dataset.name)
        if coded is not None:
            from ..hdfs.coded import fragment_health

            census = fragment_health(
                self.cluster, dataset.name, failures=self.failures
            )
            with self.obs.tracer.span(
                f"fragment-health/{dataset.name}", category="scrub"
            ) as fh_span:
                fh_span.set(**census)
            if self.obs.metrics.enabled:
                g = self.obs.metrics.gauge(
                    "coded_fragment_health",
                    help="post-run fragment census of the coded dataset",
                    labelnames=("state",),
                )
                for state, count in census.items():
                    g.set(count, state=state)
        analysis = self.engine.run_analysis(
            job, selection.local_data, start_time=selection.makespan
        )
        analysis.selection = selection
        coded_detected = coded.detected if coded is not None else 0
        coded_repaired = coded.repaired if coded is not None else 0
        integrity = IntegritySummary(
            corruptions_injected=injected,
            corruptions_detected=(
                verifier.detected + scrub.corrupt_found + coded_detected
            ),
            corruptions_repaired=verifier.repaired + scrub.repaired + coded_repaired,
            scrubbed_replicas=scrub.replicas_scanned,
            scrub_bytes=scrub.bytes_scanned,
            stale_entries=len(stale),
            rebuilt_blocks=len(validation.rebuilt),
            driver_restarts=restarts_survived,
            resume_wasted_seconds=resume_wasted,
        )
        reconstructions = (
            len(self.failures.reconstructions)
            + scrub.reconstructed
            + (len(coded.events) if coded is not None else 0)
        )
        reconstructed_bytes = self.failures.bytes_reconstructed() + (
            (scrub.repaired_bytes + coded.repaired_bytes)
            if coded is not None
            else 0
        )
        decode_bytes = (
            self.failures.decode_bytes_read()
            + scrub.decode_bytes
            + (coded.decoded_bytes if coded is not None else 0)
        )
        report = ChaosReport(
            job=analysis,
            baseline=baseline,
            plan=self.plan,
            attempts_histogram=log.histogram(),
            wasted_seconds=log.wasted_seconds + crash_waste,
            re_replicated_bytes=self.failures.bytes_re_replicated(),
            dead_nodes=self.failures.dead_nodes,
            blacklisted_nodes=blacklist.nodes,
            degraded_blocks=degraded,
            rescheduled_blocks=sorted(set(rescheduled)),
            integrity=integrity,
            partition_events=partition_events,
            deferred_blocks=deferred_blocks,
            hedged_reads=(
                coded.hedges_issued
                if coded is not None
                else hedged.hedges_issued if hedged is not None else 0
            ),
            hedges_won=(
                coded.hedges_won
                if coded is not None
                else hedged.hedges_won if hedged is not None else 0
            ),
            hedge_wasted_seconds=(
                coded.wasted_seconds
                if coded is not None
                else hedged.wasted_seconds if hedged is not None else 0.0
            ),
            health=dict(health) if health is not None else {},
            reconstructions=reconstructions,
            reconstructed_bytes=reconstructed_bytes,
            decode_bytes=decode_bytes,
            degraded_reads=coded.degraded_reads if coded is not None else 0,
            quarantined_blocks=(
                (len(coded.quarantined) if coded is not None else 0)
                + len(self.failures.quarantined)
            ),
        )
        if self.obs.metrics.enabled:
            m = self.obs.metrics
            m.counter("node_crashes_total", help="planned node deaths applied").inc(
                len(report.dead_nodes)
            )
            m.counter(
                "rescheduled_blocks_total",
                help="selection tasks re-routed after crashes",
            ).inc(len(report.rescheduled_blocks))
            m.counter(
                "re_replicated_bytes_total",
                help="bytes HDFS copied to restore replication",
            ).inc(report.re_replicated_bytes)
            m.counter(
                "wasted_seconds_total",
                help="simulated seconds burned by failed or lost attempts",
            ).inc(report.wasted_seconds)
            m.counter(
                "partition_events_total", help="network partitions applied"
            ).inc(report.partition_events)
            m.counter(
                "deferred_blocks_total",
                help="blocks that waited for a partition cut to heal",
            ).inc(len(report.deferred_blocks))
            if report.reconstructions or report.decode_bytes:
                m.counter(
                    "fragment_reconstructions_total",
                    help="coded fragments rebuilt from parity",
                ).inc(report.reconstructions)
                m.counter(
                    "reconstructed_bytes_total",
                    help="fragment bytes written by parity rebuilds",
                ).inc(report.reconstructed_bytes)
                m.counter(
                    "decode_bytes_total",
                    help="stripe bytes fed through the GF(256) decoder",
                ).inc(report.decode_bytes)
        return report

    # -- integrity fault application ----------------------------------------------

    def _tamper_stale_entries(
        self, datanet: DataNet, dataset: DatasetView
    ) -> List[int]:
        """Apply the plan's ``StaleMetadata`` faults to the live array.

        Models metadata written against an older version of the block:
        the recorded sub-dataset sizes are off and the stored fingerprint
        no longer matches the block content, which is exactly what
        validation quarantines on.
        """
        stale = self.injector.stale_blocks()
        if not stale:
            return []
        known = set(datanet.elasticmap.block_ids)
        unknown = [b for b in stale if b not in known]
        if unknown:
            raise ConfigError(f"plan stales unknown blocks {unknown[:5]}")
        for block_id in stale:
            old = datanet.elasticmap.remove_block(block_id)
            halved = {sid: max(1, size // 2) for sid, size in old.hash_map.items()}
            datanet.elasticmap.add_block(
                BlockElasticMap(
                    block_id,
                    halved,
                    old.bloom,
                    delta=old.delta,
                    memory_model=old.memory_model,
                    fingerprint=dataset.block_fingerprint(block_id) ^ 1,
                )
            )
        return stale

    def _inject_bit_rots(self, dataset: DatasetView) -> int:
        """Corrupt the planned replicas; returns how many were rotted.

        Rot is latent — planted now, noticed only when a verified read or
        the scrub touches the replica.  A plan may name a node that holds
        no replica of the block (placement is seeded and callers cannot
        know it); such rots fall back to the block's first replica, so a
        plan always corrupts *something* deterministically.
        """
        placement = dataset.placement()
        applied: set = set()
        for rot in self.injector.bit_rots_chronological():
            if rot.block not in placement:
                raise ConfigError(
                    f"plan rots unknown block {rot.block} of {dataset.name!r}"
                )
            replicas = placement[rot.block]
            node = rot.node if rot.node in replicas else replicas[0]
            if (node, rot.block) in applied:
                continue  # two fallbacks collapsed onto the same replica
            self.cluster.corrupt_replica(dataset.name, node, rot.block)
            applied.add((node, rot.block))
        return len(applied)

    # -- checkpointed selection ---------------------------------------------------

    def _selection_with_restarts(
        self,
        dataset: DatasetView,
        sub_id: str,
        assignment: Assignment,
        profile,
        log: AttemptLog,
        blacklist: NodeBlacklist,
        verifier: ReadVerifier,
    ) -> Tuple[SelectionResult, float, int]:
        """Checkpointed selection surviving every planned driver restart.

        Returns ``(selection, resume_wasted_seconds, restarts_survived)``.
        Each restart round-trips the checkpoint through its durable byte
        form: resume must work from what survives a driver death, not from
        in-memory state.
        """
        checkpoint = None
        resume_wasted = 0.0
        survived = 0
        selection = None
        for restart in self.injector.driver_restarts():
            selection, checkpoint, wasted = self.engine.run_selection_checkpointed(
                dataset,
                sub_id,
                assignment,
                profile,
                checkpoint=checkpoint,
                interrupt=restart,
                injector=self.injector,
                retry=self.retry,
                attempt_log=log,
                blacklist=blacklist,
                verify=verifier,
            )
            if selection is not None:
                break  # the planned restart wave lay past the end of the job
            survived += 1
            resume_wasted += wasted
            checkpoint = WaveCheckpoint.from_bytes(checkpoint.to_bytes())
        if selection is None:
            selection, _checkpoint, _ = self.engine.run_selection_checkpointed(
                dataset,
                sub_id,
                assignment,
                profile,
                checkpoint=checkpoint,
                injector=self.injector,
                retry=self.retry,
                attempt_log=log,
                blacklist=blacklist,
                verify=verifier,
            )
        return selection, resume_wasted, survived

    # -- fault-tolerant selection -------------------------------------------------

    def _selection_with_recovery(
        self,
        dataset: DatasetView,
        sub_id: str,
        assignment: Assignment,
        profile,
        datanet: DataNet,
        log: AttemptLog,
        blacklist: NodeBlacklist,
        verifier: Optional[ReadVerifier] = None,
        *,
        hedged=None,
        coded=None,
        health: Optional[Dict[NodeId, float]] = None,
        deferred0: Optional[List[int]] = None,
    ) -> Tuple[SelectionResult, float, List[int], int, List[int]]:
        """Drive selection to completion through crashes, cuts and retries.

        Crashes and partition start/heal events form one chronological
        list; between consecutive events every node drains its queue up to
        the boundary.  Returns ``(selection, crash_wasted_seconds,
        rescheduled_blocks, partition_events, deferred_blocks)``.
        """
        injector, policy = self.injector, self.retry
        partitions = (
            injector.partitions_chronological() if self.plan.partitions else []
        )
        # block → holders a read must reach: k for coded blocks, 1 otherwise
        needed = dataset.fragments_needed()
        clock: Dict[NodeId, float] = {n: 0.0 for n in dataset.nodes}
        pending: Dict[NodeId, List[int]] = {n: [] for n in dataset.nodes}
        # node -> bid -> (records, attempts so far); insertion order = completion order
        outputs: Dict[NodeId, Dict[int, List[Record]]] = {n: {} for n in dataset.nodes}
        spans: Dict[NodeId, List[Tuple[float, float, int]]] = {n: [] for n in dataset.nodes}
        attempts_used: Dict[int, int] = {}
        blocks_read = 0
        bytes_read = 0
        crash_waste = 0.0
        rescheduled: List[int] = []
        deferred: List[int] = list(deferred0 or [])
        deferred_seen: Set[int] = set(deferred)
        active_cut: Set[NodeId] = set()
        partition_events = 0
        # per-node future cut times, for in-flight rollback at a cut
        cut_starts: Dict[NodeId, List[float]] = {
            n: sorted(p.start for p in partitions if n in p.nodes) for n in clock
        }

        for node, bids in assignment.blocks_by_node.items():
            pending[node] = list(bids)

        tracer = self.obs.tracer

        # one chronological event list; at equal times heals apply first
        # (nodes rejoin before anything else), then crashes, then cuts
        events: List[Tuple[float, int, int, str, object]] = []
        for i, p in enumerate(partitions):
            events.append((p.heals_at, 0, i, "pheal", p))
            events.append((p.start, 2, i, "pstart", p))
        for j, crash in enumerate(injector.crashes_chronological()):
            events.append((crash.time, 1, j, "crash", crash))
        events.sort(key=lambda e: e[:3])

        def rollback(node: NodeId, bid: int, first_attempt: int, start: float,
                     doom: float, outcome: str, checkpoint: int, trace_mark) -> None:
            """Undo an attempt that straddles the node's crash/cut time."""
            del log.records[checkpoint:]
            tracer.discard_from(trace_mark)
            log.record(
                f"sel/{dataset.name}/{bid}", node, first_attempt, outcome,
                doom - start,
            )
            if tracer.enabled:
                tracer.record(
                    f"sel/{dataset.name}/{bid}#a{first_attempt}",
                    category="attempt",
                    sim_start=start,
                    sim_end=doom,
                    track=f"node {node}",
                    outcome=outcome,
                )
            attempts_used[bid] = first_attempt
            clock[node] = doom

        def drain(node: NodeId, stop: Optional[float]) -> None:
            """Run a node's queue until empty, a boundary, or its doom."""
            nonlocal blocks_read, bytes_read
            if node in active_cut:
                return
            crash_at = injector.crash_time(node)
            placement = dataset.placement()
            queue = pending[node]
            while queue:
                if stop is not None and clock[node] >= stop:
                    break
                if crash_at is not None and clock[node] >= crash_at:
                    break  # the rest dies with the node
                bid = queue.pop(0)
                if active_cut:
                    reachable = [
                        r
                        for r in placement[bid]
                        if r not in active_cut and self.failures.is_alive(r)
                    ]
                    if len(reachable) < needed.get(bid, 1):
                        # too few holders on this side of the cut (every
                        # replica, or — coded — more than m fragments):
                        # park the block until the partition heals
                        deferred.append(bid)
                        deferred_seen.add(bid)
                        continue
                else:
                    reachable = list(placement[bid])
                base, matched, nbytes = self.engine.selection_task_cost(
                    dataset, sub_id, placement, node, bid, profile,
                    verify=verifier if hedged is None and coded is None else None,
                    hedge=hedged,
                    coded=coded,
                    when=clock[node],
                    replicas=reachable,
                )
                first_attempt = attempts_used.get(bid, 0) + 1
                checkpoint = len(log.records)
                trace_mark = tracer.mark()
                elapsed, used = run_attempts(
                    base,
                    node,
                    f"sel/{dataset.name}/{bid}",
                    injector,
                    policy,
                    log,
                    blacklist,
                    start_time=clock[node],
                    first_attempt=first_attempt,
                    obs=self.obs,
                )
                start = clock[node]
                end = start + elapsed
                cut_at = next((t for t in cut_starts[node] if t > start), None)
                doom: Optional[float] = None
                outcome = "crash"
                if crash_at is not None and end > crash_at:
                    doom = crash_at
                if cut_at is not None and end > cut_at and (
                    doom is None or cut_at < doom
                ):
                    doom, outcome = cut_at, "partition"
                if doom is not None:
                    # the attempt churn straddles the crash/cut: roll the
                    # ledger back and charge a single loss instead.
                    rollback(
                        node, bid, first_attempt, start, doom, outcome,
                        checkpoint, trace_mark,
                    )
                    queue.insert(0, bid)
                    break
                attempts_used[bid] = first_attempt + used - 1
                clock[node] = end
                spans[node].append((start, end, bid))
                outputs[node][bid] = matched
                blocks_read += 1
                bytes_read += nbytes

        def discard_node_work(node: NodeId, at: float, outcome: str) -> List[int]:
            """Crash-style loss: everything the node produced or owed."""
            nonlocal crash_waste
            lost = sorted(set(outputs[node]) | set(pending[node]))
            busy = sum(
                max(0.0, min(end, at) - min(start, at))
                for start, end, _bid in spans[node]
            )
            crash_waste += busy
            for bid in sorted(outputs[node]):
                attempts_used[bid] = attempts_used.get(bid, 0) + 1
                log.record(
                    f"sel/{dataset.name}/{bid}", node, attempts_used[bid],
                    outcome, 0.0,
                )
                if tracer.enabled:
                    tracer.record(
                        f"sel/{dataset.name}/{bid}#a{attempts_used[bid]}",
                        category="attempt",
                        sim_start=at,
                        sim_end=at,
                        track=f"node {node}",
                        outcome=outcome,
                    )
            outputs[node] = {}
            pending[node] = []
            spans[node] = []
            return lost

        def dispatch(lost: List[int], detection: float) -> None:
            """Requeue lost blocks on reachable holders; defer stranded ones."""
            placement = dataset.placement()
            dead = set(self.failures.dead_nodes)
            ready = [
                b
                for b in lost
                if sum(
                    1
                    for r in placement[b]
                    if r not in dead and r not in active_cut
                )
                >= needed.get(b, 1)
            ]
            stranded = set(lost) - set(ready)
            for b in sorted(stranded):
                deferred.append(b)
                deferred_seen.add(b)
            if not ready:
                return
            recovery = self._reschedule(
                ready, dataset, sub_id, datanet, blacklist,
                unreachable=sorted(active_cut, key=repr),
                health=health,
            )
            for node, bids in recovery.blocks_by_node.items():
                if not bids:
                    continue
                pending[node].extend(bids)
                clock[node] = max(clock[node], detection)
            rescheduled.extend(ready)

        ei = 0
        round_no = 0
        while True:
            boundary = events[ei][0] if ei < len(events) else None
            with tracer.span(f"recovery-round-{round_no}", category="wave") as rnd:
                round_start = min(clock.values(), default=0.0)
                for node in sorted(clock, key=repr):
                    drain(node, boundary)
                rnd.sim(round_start, max(clock.values(), default=round_start))
            round_no += 1
            if ei >= len(events):
                break
            etime, _rank, _idx, kind, payload = events[ei]
            ei += 1
            if kind == "crash":
                victim = payload.node
                # HDFS notices the death and restores replication
                self.failures.fail_node(victim)
                active_cut.discard(victim)  # dead trumps cut
                lost = discard_node_work(victim, etime, "crash")
                if lost:
                    dispatch(lost, etime + policy.heartbeat_timeout_s)
            elif kind == "pstart":
                partition_events += 1
                joining = [
                    n
                    for n in payload.sorted_nodes()
                    if n in clock and self.failures.is_alive(n)
                ]
                active_cut.update(joining)
                lost_all: List[int] = []
                for member in joining:
                    lost_all.extend(
                        discard_node_work(member, etime, "partition")
                    )
                if lost_all:
                    dispatch(
                        sorted(set(lost_all)),
                        etime + policy.heartbeat_timeout_s,
                    )
            else:  # pheal — the cut side rejoins, intact but idle since the cut
                for member in payload.sorted_nodes():
                    if member not in clock:
                        continue
                    active_cut.discard(member)
                    clock[member] = max(clock[member], etime)
                if deferred:
                    batch = sorted(set(deferred))
                    deferred.clear()
                    dispatch(batch, etime)

        if deferred:  # pragma: no cover - every partition heals by construction
            raise FaultError(
                f"blocks never became reachable: {sorted(set(deferred))[:5]}"
            )

        local_data: Dict[NodeId, List[Record]] = {}
        bytes_per_node: Dict[NodeId, int] = {}
        node_times: Dict[NodeId, float] = {}
        assigned_nodes = set(assignment.blocks_by_node)
        for node in sorted(clock, key=repr):
            if not self.failures.is_alive(node):
                continue
            if node not in assigned_nodes and not outputs[node]:
                continue
            records: List[Record] = []
            for bid in outputs[node]:
                records.extend(outputs[node][bid])
            local_data[node] = records
            bytes_per_node[node] = sum(r.nbytes for r in records)
            node_times[node] = clock[node]
        selection = SelectionResult(
            local_data=local_data,
            timing=PhaseResult(node_times),
            bytes_per_node=bytes_per_node,
            blocks_read=blocks_read,
            bytes_read=bytes_read,
        )
        return (
            selection,
            crash_waste,
            rescheduled,
            partition_events,
            sorted(deferred_seen),
        )

    def _reschedule(
        self,
        blocks: List[int],
        dataset: DatasetView,
        sub_id: str,
        datanet: DataNet,
        blacklist: NodeBlacklist,
        *,
        unreachable: Sequence[NodeId] = (),
        health: Optional[Dict[NodeId, float]] = None,
    ) -> Assignment:
        """Balance the lost blocks over live, reachable, non-benched nodes.

        The DataNet placement is refreshed from the NameNode first, so the
        rebuilt bipartite graph reflects post-re-replication replica
        locations and never references a dead node.  Nodes behind an
        active partition cut are excluded outright; health scores (when a
        detector ran) weight the remaining capacities.
        """
        datanet.refresh_placement(dataset.placement())
        cut = set(unreachable)
        exclude = set(self.failures.dead_nodes) | set(blacklist.nodes) | cut
        if exclude >= set(dataset.nodes):
            raise FaultError("no live nodes remain to recover onto")
        try:
            graph = datanet.bipartite_graph(
                sub_id, only_blocks=blocks, exclude=sorted(exclude, key=repr)
            )
        except ConfigError:
            # a block's only live replicas sit on blacklisted nodes:
            # relax the blacklist rather than fail the job (the cut and
            # the dead stay excluded — they are unreachable, not benched)
            graph = datanet.bipartite_graph(
                sub_id,
                only_blocks=blocks,
                exclude=sorted(set(self.failures.dead_nodes) | cut, key=repr),
            )
        capacities = None
        if health:
            capacities = {
                n: max(MIN_HEALTH_CAPACITY, float(health.get(n, 1.0)))
                for n in graph.nodes
            }
        return DistributionAwareScheduler(capacities).schedule(graph)
