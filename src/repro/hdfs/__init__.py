"""In-process HDFS substrate.

Models the pieces of the Hadoop file system that DataNet's behaviour
depends on: datasets split into fixed-size blocks, blocks replicated
3-way across cluster nodes by a placement policy, and a NameNode holding
the block → node mapping.  Record content lives in memory; the "cluster"
is a faithful placement/metadata model, not a network server.

Modules:

- :mod:`repro.hdfs.records` — the log-record data model and serialization.
- :mod:`repro.hdfs.block` — fixed-capacity blocks and the block packer.
- :mod:`repro.hdfs.placement` — replica placement policies (random,
  round-robin, rack-aware, fragment-spreading).
- :mod:`repro.hdfs.coded` — erasure-coded stripes, coded/degraded reads
  and quarantine records.
- :mod:`repro.hdfs.namenode` — dataset/block metadata.
- :mod:`repro.hdfs.datanode` — per-node replica stores.
- :mod:`repro.hdfs.cluster` — the façade: write datasets, get
  :class:`~repro.hdfs.cluster.DatasetView` objects that DataNet can index.
"""

from .records import Record
from .block import Block, pack_records
from .placement import (
    PlacementPolicy,
    RandomPlacement,
    RoundRobinPlacement,
    RackAwarePlacement,
    FragmentPlacement,
)
from .namenode import NameNode, BlockMeta
from .datanode import DataNode
from .coded import (
    CodedReader,
    ErasureCodedBlock,
    QuarantineRecord,
    ReconstructionEvent,
    fragment_health,
)
from .cluster import HDFSCluster, DatasetView
from .failure import FailureManager, ReplicationEvent
from .scrubber import Scrubber, ScrubReport, RepairEvent, ReadVerifier
from .hedged import HedgedReader
from .balancer import BlockBalancer, BalancerReport

__all__ = [
    "Record",
    "Block",
    "pack_records",
    "PlacementPolicy",
    "RandomPlacement",
    "RoundRobinPlacement",
    "RackAwarePlacement",
    "FragmentPlacement",
    "CodedReader",
    "ErasureCodedBlock",
    "QuarantineRecord",
    "ReconstructionEvent",
    "fragment_health",
    "NameNode",
    "BlockMeta",
    "DataNode",
    "HDFSCluster",
    "DatasetView",
    "FailureManager",
    "ReplicationEvent",
    "Scrubber",
    "ScrubReport",
    "RepairEvent",
    "ReadVerifier",
    "HedgedReader",
    "BlockBalancer",
    "BalancerReport",
]
