"""HDFS block balancer: even out *storage* across DataNodes.

Real HDFS ships a balancer daemon that moves block replicas from
over-full to under-full nodes (appends, failures and skewed placement all
drift storage over time).  Note the contrast that motivates the paper:
the balancer equalizes **bytes stored per node**, which says nothing
about how any particular *sub-dataset* is spread — a storage-balanced
cluster can still be computation-imbalanced for a clustered sub-dataset.
The balancer ablation demonstrates exactly that.

:class:`BlockBalancer` mirrors the real tool's contract: a utilization
threshold, replica moves that never violate placement invariants (no two
replicas of one block on a node), and a report of the bytes moved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigError
from .cluster import HDFSCluster

__all__ = ["BlockBalancer", "BalancerReport"]


@dataclass
class BalancerReport:
    """What one balancing pass did."""

    moves: List[Tuple[str, int, int, int]]  # (dataset, block, src, dst)
    bytes_moved: int
    utilization_before: Dict[int, int]
    utilization_after: Dict[int, int]

    @property
    def num_moves(self) -> int:
        return len(self.moves)

    def spread_before(self) -> float:
        vals = list(self.utilization_before.values())
        return max(vals) - min(vals) if vals else 0.0

    def spread_after(self) -> float:
        vals = list(self.utilization_after.values())
        return max(vals) - min(vals) if vals else 0.0


class BlockBalancer:
    """Moves replicas until every node is within ``threshold`` of the mean.

    Args:
        cluster: the cluster to balance (mutated in place, catalog and
            stores kept consistent).
        threshold: allowed deviation from mean node utilization, as a
            fraction of the mean (the real balancer's ``-threshold``).
    """

    def __init__(self, cluster: HDFSCluster, *, threshold: float = 0.1) -> None:
        if not (0.0 < threshold < 1.0):
            raise ConfigError("threshold must be in (0, 1)")
        self.cluster = cluster
        self.threshold = threshold

    # -- measurement -------------------------------------------------------------

    def utilization(self) -> Dict[int, int]:
        """Bytes stored per node."""
        return {
            node_id: node.used_bytes()
            for node_id, node in self.cluster.datanodes.items()
        }

    # -- balancing -------------------------------------------------------------------

    def _movable_replica(
        self, src: int, dst: int
    ) -> Optional[Tuple[str, int, int]]:
        """A replica on ``src`` that may legally move to ``dst``.

        Legal = ``dst`` holds no replica of that block.  Prefers the
        largest replica (fewest moves to converge).
        """
        namenode = self.cluster.namenode
        best: Optional[Tuple[str, int, int]] = None
        for dataset, block_id in namenode.blocks_on_node(src):
            if dst in namenode.block_locations(dataset, block_id):
                continue
            size = namenode.block_meta(dataset, block_id).size_bytes
            if best is None or size > best[2]:
                best = (dataset, block_id, size)
        return best

    def _move(self, dataset: str, block_id: int, src: int, dst: int) -> None:
        # route through the cluster's single mutation path so placement
        # listeners (DataNet cache refresh) fire for balancer moves too
        self.cluster.move_replica(dataset, block_id, src, dst)

    def balance(self, *, max_moves: int = 10_000) -> BalancerReport:
        """Run one balancing pass; returns the report.

        Converges when all nodes are within the threshold band or no legal
        move remains; ``max_moves`` bounds the pass.
        """
        if max_moves <= 0:
            raise ConfigError("max_moves must be positive")
        before = self.utilization()
        moves: List[Tuple[str, int, int, int]] = []
        bytes_moved = 0
        for _ in range(max_moves):
            usage = self.utilization()
            mean = sum(usage.values()) / len(usage)
            if mean == 0:
                break
            band = self.threshold * mean
            over = [n for n, u in usage.items() if u > mean + band]
            # any node below the mean can receive (the real balancer pairs
            # over-utilized sources with every below-average target, not
            # only the badly under-utilized ones)
            under = [n for n, u in usage.items() if u < mean]
            if not over or not under:
                break
            src = max(over, key=lambda n: usage[n])
            dst = min(under, key=lambda n: usage[n])
            candidate = self._movable_replica(src, dst)
            if candidate is None:
                break
            dataset, block_id, size = candidate
            # don't overshoot: moving must not push dst past the mean band
            if usage[dst] + size > mean + band:
                smaller = None
                for ds, bid in self.cluster.namenode.blocks_on_node(src):
                    if dst in self.cluster.namenode.block_locations(ds, bid):
                        continue
                    sz = self.cluster.namenode.block_meta(ds, bid).size_bytes
                    if usage[dst] + sz <= mean + band and (
                        smaller is None or sz > smaller[2]
                    ):
                        smaller = (ds, bid, sz)
                if smaller is None:
                    break
                dataset, block_id, size = smaller
            self._move(dataset, block_id, src, dst)
            moves.append((dataset, block_id, src, dst))
            bytes_moved += size
        return BalancerReport(
            moves=moves,
            bytes_moved=bytes_moved,
            utilization_before=before,
            utilization_after=self.utilization(),
        )
