"""Fixed-capacity HDFS blocks and the chronological block packer.

HDFS splits a dataset into block files of a configured size (the paper
uses 64 MB) in arrival order.  Because records arrive chronologically and
related records cluster in time, each block ends up holding a time slice —
the mechanism behind the paper's content clustering (Figure 1a).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Tuple

from ..errors import ConfigError, StorageError
from ..units import MiB
from .records import Record

__all__ = ["Block", "pack_records"]


class Block:
    """One block file: an append-only run of records with a byte capacity.

    Args:
        block_id: dataset-local index of this block.
        capacity_bytes: maximum serialized bytes the block may hold.
    """

    __slots__ = ("block_id", "capacity_bytes", "_records", "_used")

    def __init__(self, block_id: int, capacity_bytes: int = 64 * MiB) -> None:
        if block_id < 0:
            raise ConfigError(f"block_id must be non-negative, got {block_id}")
        if capacity_bytes <= 0:
            raise ConfigError(f"capacity must be positive, got {capacity_bytes}")
        self.block_id = block_id
        self.capacity_bytes = capacity_bytes
        self._records: List[Record] = []
        self._used = 0

    # -- writing --------------------------------------------------------------

    def try_append(self, record: Record) -> bool:
        """Append if the record fits; return whether it was stored.

        A record larger than an *empty* block's capacity is an error — it
        could never be stored anywhere.
        """
        size = record.nbytes
        if size > self.capacity_bytes:
            raise StorageError(
                f"record of {size} B exceeds block capacity {self.capacity_bytes} B"
            )
        if self._used + size > self.capacity_bytes:
            return False
        self._records.append(record)
        self._used += size
        return True

    # -- reading ---------------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        """Serialized bytes currently stored."""
        return self._used

    @property
    def num_records(self) -> int:
        return len(self._records)

    def records(self) -> Iterator[Record]:
        """Iterate the stored records in append order."""
        return iter(self._records)

    def scan(self) -> Iterator[Tuple[str, int]]:
        """Yield ``(sub_dataset_id, nbytes)`` per record — the ElasticMap
        builder's input shape."""
        for r in self._records:
            yield r.sub_id, r.nbytes

    def subdataset_sizes(self) -> Dict[str, int]:
        """Ground-truth ``|b ∩ s|`` per sub-dataset in this block."""
        out: Dict[str, int] = {}
        for r in self._records:
            out[r.sub_id] = out.get(r.sub_id, 0) + r.nbytes
        return out

    def filter(self, sub_id: str) -> List[Record]:
        """All records of one sub-dataset (the selection map task's work)."""
        return [r for r in self._records if r.sub_id == sub_id]

    def __len__(self) -> int:
        return len(self._records)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Block(id={self.block_id}, records={len(self._records)}, "
            f"used={self._used}/{self.capacity_bytes})"
        )


def pack_records(
    records: Iterable[Record], block_size: int, *, start_id: int = 0
) -> List[Block]:
    """Pack a record stream into consecutive fixed-size blocks.

    Records are stored strictly in stream order (HDFS appends; it never
    reorders), so a chronological stream yields chronological blocks.
    A record that does not fit in the current block starts the next one.
    ``start_id`` numbers the first block (dataset appends continue an
    existing id sequence).
    """
    if block_size <= 0:
        raise ConfigError(f"block_size must be positive, got {block_size}")
    if start_id < 0:
        raise ConfigError(f"start_id must be non-negative, got {start_id}")
    blocks: List[Block] = []
    current = Block(start_id, block_size)
    blocks.append(current)
    for record in records:
        if not current.try_append(record):
            current = Block(start_id + len(blocks), block_size)
            blocks.append(current)
            if not current.try_append(record):  # pragma: no cover - guarded above
                raise StorageError("record does not fit in a fresh block")
    if blocks and blocks[-1].num_records == 0 and len(blocks) > 1:
        blocks.pop()
    return blocks
