"""Fixed-capacity HDFS blocks and the chronological block packer.

HDFS splits a dataset into block files of a configured size (the paper
uses 64 MB) in arrival order.  Because records arrive chronologically and
related records cluster in time, each block ends up holding a time slice —
the mechanism behind the paper's content clustering (Figure 1a).
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..errors import ConfigError, StorageError
from ..units import MiB
from .records import Record

__all__ = ["Block", "pack_records", "CHECKSUM_BYTES"]

#: Width of a block content checksum, in bytes.  8 bytes keeps the
#: fingerprint embeddable in a fixed-size serialized field while making an
#: accidental collision between a block and its corrupted twin negligible.
CHECKSUM_BYTES = 8


class Block:
    """One block file: an append-only run of records with a byte capacity.

    Args:
        block_id: dataset-local index of this block.
        capacity_bytes: maximum serialized bytes the block may hold.
    """

    __slots__ = ("block_id", "capacity_bytes", "_records", "_used", "_checksum")

    def __init__(self, block_id: int, capacity_bytes: int = 64 * MiB) -> None:
        if block_id < 0:
            raise ConfigError(f"block_id must be non-negative, got {block_id}")
        if capacity_bytes <= 0:
            raise ConfigError(f"capacity must be positive, got {capacity_bytes}")
        self.block_id = block_id
        self.capacity_bytes = capacity_bytes
        self._records: List[Record] = []
        self._used = 0
        self._checksum: Optional[bytes] = None

    # -- writing --------------------------------------------------------------

    def try_append(self, record: Record) -> bool:
        """Append if the record fits; return whether it was stored.

        A record larger than an *empty* block's capacity is an error — it
        could never be stored anywhere, so retrying with a fresh block is
        pointless.  A record that merely overflows a *partially full* block
        is a normal "start the next block" signal and returns ``False``.
        """
        size = record.nbytes
        if self._used + size > self.capacity_bytes:
            if self._used == 0:
                raise StorageError(
                    f"record of {size} B exceeds block capacity "
                    f"{self.capacity_bytes} B"
                )
            return False
        self._records.append(record)
        self._used += size
        self._checksum = None
        return True

    # -- integrity ------------------------------------------------------------

    def checksum(self) -> bytes:
        """Content checksum over the serialized records, in append order.

        Computed lazily and cached; any append invalidates the cache.  The
        same record content always hashes to the same digest, which is what
        lets a replica be verified against the catalog and lets a rebuilt
        ElasticMap entry be re-fingerprinted bit-for-bit.
        """
        if self._checksum is None:
            h = hashlib.blake2b(digest_size=CHECKSUM_BYTES)
            for r in self._records:
                h.update(r.serialize().encode("utf-8"))
                h.update(b"\n")
            self._checksum = h.digest()
        return self._checksum

    @property
    def fingerprint(self) -> int:
        """The checksum as an unsigned integer (fits metadata envelopes)."""
        return int.from_bytes(self.checksum(), "little")

    # -- reading ---------------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        """Serialized bytes currently stored."""
        return self._used

    @property
    def num_records(self) -> int:
        return len(self._records)

    def records(self) -> Iterator[Record]:
        """Iterate the stored records in append order."""
        return iter(self._records)

    def scan(self) -> Iterator[Tuple[str, int]]:
        """Yield ``(sub_dataset_id, nbytes)`` per record — the ElasticMap
        builder's input shape."""
        for r in self._records:
            yield r.sub_id, r.nbytes

    def subdataset_sizes(self) -> Dict[str, int]:
        """Ground-truth ``|b ∩ s|`` per sub-dataset in this block."""
        out: Dict[str, int] = {}
        for r in self._records:
            out[r.sub_id] = out.get(r.sub_id, 0) + r.nbytes
        return out

    def filter(self, sub_id: str) -> List[Record]:
        """All records of one sub-dataset (the selection map task's work)."""
        return [r for r in self._records if r.sub_id == sub_id]

    def __len__(self) -> int:
        return len(self._records)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Block(id={self.block_id}, records={len(self._records)}, "
            f"used={self._used}/{self.capacity_bytes})"
        )


def pack_records(
    records: Iterable[Record], block_size: int, *, start_id: int = 0
) -> List[Block]:
    """Pack a record stream into consecutive fixed-size blocks.

    Records are stored strictly in stream order (HDFS appends; it never
    reorders), so a chronological stream yields chronological blocks.
    A record that does not fit in the current block starts the next one.
    ``start_id`` numbers the first block (dataset appends continue an
    existing id sequence).
    """
    if block_size <= 0:
        raise ConfigError(f"block_size must be positive, got {block_size}")
    if start_id < 0:
        raise ConfigError(f"start_id must be non-negative, got {start_id}")
    blocks: List[Block] = []
    current = Block(start_id, block_size)
    blocks.append(current)
    for record in records:
        if not current.try_append(record):
            current = Block(start_id + len(blocks), block_size)
            blocks.append(current)
            if not current.try_append(record):  # pragma: no cover - guarded above
                raise StorageError("record does not fit in a fresh block")
    if blocks and blocks[-1].num_records == 0 and len(blocks) > 1:
        blocks.pop()
    return blocks
