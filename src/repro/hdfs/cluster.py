"""The HDFS cluster façade.

:class:`HDFSCluster` wires DataNodes, a NameNode and a placement policy
together.  ``write_dataset`` performs the full ingest path — chronological
block packing, replica placement, catalog registration — and returns a
:class:`DatasetView`, the object the rest of the library (DataNet, the
MapReduce engine, experiments) works against.

``DatasetView`` implements the :class:`repro.core.datanet.ScannableDataset`
protocol, so ``DataNet.build(view)`` runs the single-scan metadata
construction directly over stored blocks.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from ..coding import CodingSpec, validate_coding
from ..errors import BlockNotFoundError, ConfigError, StaleLeaderError
from ..units import MiB
from .block import Block, pack_records
from .coded import ErasureCodedBlock
from .datanode import DataNode
from .namenode import NameNode
from .placement import FragmentPlacement, PlacementPolicy, RandomPlacement
from .records import Record

__all__ = ["HDFSCluster", "DatasetView"]


class HDFSCluster:
    """An in-process model of an HDFS deployment.

    Args:
        num_nodes: number of DataNodes (the paper's experiments use 32
            worker nodes out of a 128-node testbed).
        block_size: block capacity in bytes (64 MB in the paper; scale it
            down together with the workload for fast experiments).
        replication: replicas per block (HDFS default 3).
        placement: replica placement policy; random by default.
        num_racks: racks the nodes are striped over.
        rng: random generator used by default placement (deterministic
            experiments pass a seeded generator).
        coding: optional (k, m) erasure-coding spec.  When given, every
            dataset written to this cluster is striped into k data + m
            parity fragments spread over racks by
            :class:`~repro.hdfs.placement.FragmentPlacement` instead of
            being replicated; validated against the cluster size at
            construction time (k + m distinct nodes are required).
    """

    def __init__(
        self,
        num_nodes: int = 32,
        *,
        block_size: int = 64 * MiB,
        replication: int = 3,
        placement: Optional[PlacementPolicy] = None,
        num_racks: int = 4,
        rng: Optional[np.random.Generator] = None,
        coding: Optional[CodingSpec] = None,
    ) -> None:
        if num_nodes <= 0:
            raise ConfigError(f"num_nodes must be positive, got {num_nodes}")
        if block_size <= 0:
            raise ConfigError(f"block_size must be positive, got {block_size}")
        if num_racks <= 0:
            raise ConfigError(f"num_racks must be positive, got {num_racks}")
        self.block_size = block_size
        self.num_racks = min(num_racks, num_nodes)
        self.namenode = NameNode()
        self.datanodes: Dict[int, DataNode] = {
            i: DataNode(i, rack=i % self.num_racks) for i in range(num_nodes)
        }
        self.placement_policy = placement or RandomPlacement(
            replication, rng=rng if rng is not None else np.random.default_rng()
        )
        self.coding = validate_coding(coding, num_nodes) if coding else None
        self._fragment_placement = (
            FragmentPlacement(self.coding.n, num_racks=self.num_racks)
            if self.coding
            else None
        )
        self._blocks: Dict[Tuple[str, int], Block] = {}
        self._coded: Dict[Tuple[str, int], ErasureCodedBlock] = {}
        self._coding_of: Dict[str, CodingSpec] = {}
        # placement-change listeners: fn(dataset_name, placement).  Every
        # replica/fragment move — balancer or rebalancer — funnels through
        # move_replica/move_fragment, which notify these, so version-keyed
        # metadata caches (DataNet bipartite graphs) never go stale.
        self._placement_listeners: List[
            Callable[[str, Dict[int, Tuple[int, ...]]], None]
        ] = []
        # Fencing token of the metadata plane: mutations stamped with an
        # epoch below the installed fence are rejected (split-brain guard).
        self._fence_epoch = 0

    # -- topology ---------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self.datanodes)

    @property
    def nodes(self) -> List[int]:
        """All DataNode ids, sorted."""
        return sorted(self.datanodes)

    def rack_of(self, node: int) -> int:
        """Rack index of a node."""
        try:
            return self.datanodes[node].rack
        except KeyError:
            raise ConfigError(f"unknown node {node}") from None

    # -- fencing -----------------------------------------------------------------

    @property
    def fence_epoch(self) -> int:
        """The currently installed metadata-plane fencing token."""
        return self._fence_epoch

    def install_fence(self, epoch: int) -> None:
        """Install a new fencing epoch; must be monotonically non-decreasing.

        The elected metadata leader installs its epoch here after winning
        its term, so every subsequent cluster mutation stamped with an
        older epoch — a deposed leader that does not yet know it lost —
        is rejected by :meth:`check_fence`.

        Raises:
            StaleLeaderError: the epoch regresses below the installed fence.
        """
        if epoch < self._fence_epoch:
            raise StaleLeaderError(
                f"fencing token may not regress: {epoch} < {self._fence_epoch}",
                epoch=epoch,
                fence=self._fence_epoch,
            )
        self._fence_epoch = epoch

    def check_fence(self, epoch: Optional[int], what: str) -> None:
        """Reject a mutation stamped with a stale epoch.

        ``None`` means the caller is not participating in the replicated
        metadata plane (legacy single-leader paths) and passes unchecked.

        Raises:
            StaleLeaderError: ``epoch`` is below the installed fence.
        """
        if epoch is not None and epoch < self._fence_epoch:
            raise StaleLeaderError(
                f"{what} stamped with stale epoch {epoch}; "
                f"fence is {self._fence_epoch}",
                epoch=epoch,
                fence=self._fence_epoch,
            )

    # -- placement churn -----------------------------------------------------------

    def add_placement_listener(
        self, fn: Callable[[str, Dict[int, Tuple[int, ...]]], None]
    ) -> None:
        """Register ``fn(dataset_name, placement)`` to run after every move."""
        self._placement_listeners.append(fn)

    def watch_placement(self, dataset: str, metadata: object) -> None:
        """Keep a metadata object's replica map in sync with this cluster.

        ``metadata`` is anything exposing ``refresh_placement(placement)``
        (a :class:`~repro.core.datanet.DataNet`).  After every replica or
        fragment move touching ``dataset``, the current NameNode placement
        is pushed through that hook, so version-keyed bipartite-graph
        caches are patched instead of silently serving stale edges.
        """
        refresh = getattr(metadata, "refresh_placement")

        def _listener(name: str, placement: Dict[int, Tuple[int, ...]]) -> None:
            if name == dataset:
                refresh(placement)

        self.add_placement_listener(_listener)

    def notify_placement(self, dataset: str) -> None:
        """Push the dataset's current placement to every listener."""
        if not self._placement_listeners:
            return
        placement = self.namenode.placement(dataset)
        for fn in self._placement_listeners:
            fn(dataset, placement)

    def move_replica(
        self,
        dataset: str,
        block_id: int,
        src: int,
        dst: int,
        *,
        epoch: Optional[int] = None,
    ) -> int:
        """Move one replica ``src`` → ``dst``; returns the bytes moved.

        The single mutation path for replica migration (balancer and
        rebalancer both route through here): store at the destination,
        drop at the source, substitute the catalog entry in place, then
        notify placement listeners so attached metadata refreshes.
        ``epoch`` stamps the mutation with the caller's fencing token;
        a stale token is rejected before anything is touched.

        Raises:
            ConfigError: unknown nodes, ``src`` holding no replica in the
                catalog, or ``dst`` already holding one.
            StaleLeaderError: ``epoch`` is below the installed fence.
        """
        self.check_fence(epoch, f"move_replica({dataset!r}, {block_id})")
        for node in (src, dst):
            if node not in self.datanodes:
                raise ConfigError(f"unknown node {node}")
        holders = self.namenode.block_locations(dataset, block_id)
        if src not in holders:
            raise ConfigError(
                f"node {src} holds no replica of block {block_id} of {dataset!r}"
            )
        if dst in holders:
            raise ConfigError(
                f"node {dst} already holds block {block_id} of {dataset!r}"
            )
        block = self.get_block(dataset, block_id)
        self.datanodes[dst].store_replica(dataset, block)
        self.datanodes[src].drop_replica(dataset, block_id)
        self.namenode.update_replicas(
            dataset, block_id, [dst if n == src else n for n in holders]
        )
        self.notify_placement(dataset)
        return block.used_bytes

    def move_fragment(
        self,
        dataset: str,
        block_id: int,
        src: int,
        dst: int,
        *,
        epoch: Optional[int] = None,
    ) -> int:
        """Move one coded fragment ``src`` → ``dst``; returns bytes moved.

        The fragment keeps its stripe index — ``dst`` takes over exactly
        the positional slot ``src`` held — so the coding geometry the
        NameNode enforces (one holder per fragment index) is preserved.
        ``epoch`` stamps the mutation with the caller's fencing token, as
        in :meth:`move_replica`.
        """
        self.check_fence(epoch, f"move_fragment({dataset!r}, {block_id})")
        for node in (src, dst):
            if node not in self.datanodes:
                raise ConfigError(f"unknown node {node}")
        coded = self.coded_block(dataset, block_id)
        holders = list(self.namenode.block_locations(dataset, block_id))
        if src not in holders:
            raise ConfigError(
                f"node {src} holds no fragment of block {block_id} of {dataset!r}"
            )
        if dst in holders:
            raise ConfigError(
                f"node {dst} already holds a fragment of block {block_id} "
                f"of {dataset!r}"
            )
        index = self.datanodes[src].fragment_index(dataset, block_id)
        self.datanodes[dst].store_fragment(dataset, coded, index)
        self.datanodes[src].drop_fragment(dataset, block_id)
        holders[index] = dst
        self.namenode.update_replicas(dataset, block_id, holders)
        self.notify_placement(dataset)
        return coded.fragment_nbytes

    # -- ingest ------------------------------------------------------------------

    def write_dataset(self, name: str, records: Iterable[Record]) -> "DatasetView":
        """Store a record stream as a replicated, block-structured dataset.

        Records are packed in stream order; each block's replicas are
        placed by the configured policy and registered with the NameNode.
        """
        if self.namenode.has_dataset(name):
            raise ConfigError(f"dataset {name!r} already exists")
        blocks = pack_records(records, self.block_size)
        self._store_blocks(name, blocks)
        return DatasetView(self, name)

    def _store_blocks(self, name: str, blocks: List[Block]) -> None:
        """Place and register blocks: replicated or erasure-coded ingest."""
        if self.coding is not None:
            spec = self.coding
            self._coding_of[name] = spec
            for block in blocks:
                coded = ErasureCodedBlock(block, spec)
                holders = self._fragment_placement.place(block.block_id, self.nodes)
                self.namenode.register_block(
                    name,
                    block.block_id,
                    block.used_bytes,
                    holders,
                    coding=(spec.k, spec.m),
                )
                self._blocks[(name, block.block_id)] = block
                self._coded[(name, block.block_id)] = coded
                for index, node in enumerate(holders):
                    self.datanodes[node].store_fragment(name, coded, index)
            return
        for block in blocks:
            replicas = self.placement_policy.place(block.block_id, self.nodes)
            self.namenode.register_block(
                name, block.block_id, block.used_bytes, replicas
            )
            self._blocks[(name, block.block_id)] = block
            for node in replicas:
                self.datanodes[node].store_replica(name, block)

    def append_records(self, name: str, records: Iterable[Record]) -> "DatasetView":
        """Append a record stream to an existing dataset as new blocks.

        Models continuous log collection (the paper's Flume pipeline):
        fresh records arrive in new blocks whose ids continue the
        dataset's sequence; existing blocks are immutable.
        """
        if not self.namenode.has_dataset(name):
            raise BlockNotFoundError(f"unknown dataset {name!r}")
        existing = self.namenode.blocks_of(name)
        start_id = (max(existing) + 1) if existing else 0
        blocks = [
            b
            for b in pack_records(records, self.block_size, start_id=start_id)
            if b.num_records  # an empty append registers nothing
        ]
        self._store_blocks(name, blocks)
        return DatasetView(self, name)

    # -- access -------------------------------------------------------------------

    def dataset(self, name: str) -> "DatasetView":
        """View over an existing dataset."""
        if not self.namenode.has_dataset(name):
            raise BlockNotFoundError(f"unknown dataset {name!r}")
        return DatasetView(self, name)

    def get_block(self, dataset: str, block_id: int) -> Block:
        """The logical block content (independent of any replica)."""
        try:
            return self._blocks[(dataset, block_id)]
        except KeyError:
            raise BlockNotFoundError(
                f"block {block_id} of dataset {dataset!r} not found"
            ) from None

    def coded_block(self, dataset: str, block_id: int) -> ErasureCodedBlock:
        """The erasure-coded stripe of one block of a coded dataset."""
        try:
            return self._coded[(dataset, block_id)]
        except KeyError:
            raise BlockNotFoundError(
                f"block {block_id} of dataset {dataset!r} is not erasure-coded"
            ) from None

    def coding_of(self, dataset: str) -> Optional[CodingSpec]:
        """The (k, m) spec a dataset was written with, or ``None``."""
        return self._coding_of.get(dataset)

    # -- integrity ----------------------------------------------------------------

    def corrupt_replica(self, dataset: str, node: int, block_id: int) -> None:
        """Rot one node's copy of a block (fault injection entry point).

        For a coded dataset the node's *fragment* rots — the same overlay
        model, scoped to 1/k-th of the stripe.
        """
        if not self.namenode.has_dataset(dataset):
            raise BlockNotFoundError(f"unknown dataset {dataset!r}")
        if node not in self.datanodes:
            raise ConfigError(f"unknown node {node}")
        if dataset in self._coding_of:
            self.datanodes[node].corrupt_fragment(dataset, block_id)
        else:
            self.datanodes[node].corrupt_replica(dataset, block_id)


class DatasetView:
    """All per-dataset operations, bound to one cluster + dataset name.

    Implements the ``ScannableDataset`` protocol consumed by
    :meth:`repro.core.datanet.DataNet.build`, plus ground-truth helpers the
    tests and experiments use to validate the metadata layer.
    """

    def __init__(self, cluster: HDFSCluster, name: str) -> None:
        self.cluster = cluster
        self.name = name

    # -- ScannableDataset protocol ---------------------------------------------

    def scan_blocks(self) -> Iterator[Tuple[int, Iterator[Tuple[str, int]]]]:
        """Per-block ``(block_id, [(sub_id, nbytes), ...])`` streams."""
        for bid in self.block_ids:
            yield bid, self.block(bid).scan()

    def placement(self) -> Dict[int, Tuple[int, ...]]:
        """Block id → replica nodes (fragment holders, stripe order, when coded)."""
        return self.cluster.namenode.placement(self.name)

    # -- erasure coding ----------------------------------------------------------

    @property
    def coding(self) -> Optional["CodingSpec"]:
        """The (k, m) spec this dataset was written with, or ``None``."""
        return self.cluster.coding_of(self.name)

    def coded_block(self, block_id: int) -> ErasureCodedBlock:
        """The stripe of one block (coded datasets only)."""
        return self.cluster.coded_block(self.name, block_id)

    def fragments_needed(self) -> Dict[int, int]:
        """Block id → fragments a read needs (``k``); empty when replicated.

        This is what makes fragments — not whole copies — the schedulable
        unit: the bipartite graph strands a block only when fewer than k
        holders are reachable, instead of requiring one full replica.
        """
        spec = self.coding
        if spec is None:
            return {}
        return {bid: spec.k for bid in self.block_ids}

    @property
    def physical_bytes(self) -> int:
        """Stored bytes across all copies/fragments (the storage bill)."""
        if self.coding is not None:
            return sum(
                self.coded_block(bid).total_fragment_bytes for bid in self.block_ids
            )
        total = 0
        for bid, holders in self.placement().items():
            total += self.block(bid).used_bytes * len(holders)
        return total

    @property
    def nodes(self) -> List[int]:
        """All cluster nodes (a dataset can be scheduled onto any of them)."""
        return self.cluster.nodes

    # -- block access -----------------------------------------------------------

    @property
    def block_ids(self) -> List[int]:
        """Block ids in chronological (write) order."""
        return self.cluster.namenode.blocks_of(self.name)

    @property
    def num_blocks(self) -> int:
        return len(self.block_ids)

    def block(self, block_id: int) -> Block:
        """Logical content of one block."""
        return self.cluster.get_block(self.name, block_id)

    def blocks(self) -> Iterator[Block]:
        """Iterate all blocks in order."""
        for bid in self.block_ids:
            yield self.block(bid)

    @property
    def total_bytes(self) -> int:
        """Logical dataset size (pre-replication)."""
        return self.cluster.namenode.dataset_bytes(self.name)

    def block_fingerprint(self, block_id: int) -> int:
        """Content fingerprint of one block (what metadata entries carry)."""
        return self.block(block_id).fingerprint

    # -- ground truth helpers ------------------------------------------------------

    def subdataset_ids(self) -> List[str]:
        """Every distinct sub-dataset id present, sorted."""
        ids = set()
        for block in self.blocks():
            ids.update(block.subdataset_sizes())
        return sorted(ids)

    def subdataset_bytes_per_block(self, sub_id: str) -> Dict[int, int]:
        """Exact ``|b ∩ s|`` for one sub-dataset over all blocks (0s omitted)."""
        out: Dict[int, int] = {}
        for block in self.blocks():
            size = block.subdataset_sizes().get(sub_id, 0)
            if size:
                out[block.block_id] = size
        return out

    def subdataset_total_bytes(self, sub_id: str) -> int:
        """Exact total bytes of one sub-dataset."""
        return sum(self.subdataset_bytes_per_block(sub_id).values())

    def subdataset_sizes(self) -> Dict[str, int]:
        """Exact total bytes of *every* sub-dataset."""
        out: Dict[str, int] = {}
        for block in self.blocks():
            for sid, size in block.subdataset_sizes().items():
                out[sid] = out.get(sid, 0) + size
        return out

    def records_of(self, sub_id: str) -> List[Record]:
        """All records of one sub-dataset, block order."""
        out: List[Record] = []
        for block in self.blocks():
            out.extend(block.filter(sub_id))
        return out
