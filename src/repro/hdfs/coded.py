"""Erasure-coded blocks: fragment storage, coded reads, quarantine records.

A replicated block buys fault tolerance with whole copies; an
:class:`ErasureCodedBlock` stripes the block's serialized payload into
``k`` data + ``m`` parity fragments (see :mod:`repro.coding`) stored on
``k + m`` distinct nodes.  Any ``k`` fragments reconstruct the payload
byte-for-byte, so the stripe survives ``m`` lost or rotten fragments at
``(k+m)/k``× bytes instead of replication's ``r``×.

:class:`CodedReader` is the read-path counterpart of
:class:`~repro.hdfs.scrubber.ReadVerifier` *and*
:class:`~repro.hdfs.hedged.HedgedReader` for coded datasets: it fetches
the ``k`` cheapest verified fragments in parallel, decodes through parity
when a data shard is unavailable (a *degraded read*), repairs a rotten
local fragment in place, hedges stragglers by issuing ``k + 1`` fragment
reads and letting the first ``k`` win (settled through a
:class:`~repro.faults.dedup.FirstWinLedger`), and fails cleanly with a
:class:`QuarantineRecord` when more than ``m`` fragments are gone.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass
from typing import (
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..coding import CodingSpec, RSCodec
from ..errors import CodingError, IntegrityError, UnrecoverableBlockError
from ..obs import NULL_OBS, Observability
from .block import Block, CHECKSUM_BYTES

__all__ = [
    "ErasureCodedBlock",
    "CodedReader",
    "ReconstructionEvent",
    "QuarantineRecord",
    "block_payload",
    "fragment_health",
]


def block_payload(block: Block) -> bytes:
    """The serialized byte stream a block's stripe encodes.

    Uses the same record framing as :meth:`Block.checksum`, so a decoded
    payload can be verified against the block's catalog fingerprint.
    """
    return b"".join(
        r.serialize().encode("utf-8") + b"\n" for r in block.records()
    )


@dataclass(frozen=True)
class ReconstructionEvent:
    """One parity-based repair: a fragment rebuilt by decoding k peers.

    Unlike a :class:`~repro.hdfs.scrubber.RepairEvent` (one source, whole
    block copied), a reconstruction reads ``k`` fragments — ``decode_bytes``
    of traffic — to rewrite a single ``nbytes`` fragment.
    """

    dataset: str
    block_id: int
    index: int
    sources: Tuple[int, ...]
    destination: int
    nbytes: int
    decode_bytes: int


@dataclass(frozen=True)
class QuarantineRecord:
    """Audit record for a coded block that lost more than ``m`` fragments.

    Attributes:
        dataset: dataset the block belongs to.
        block_id: the unrecoverable block.
        needed: fragments required to decode (``k``).
        available: fragment indices still readable.
        missing: fragment indices lost, unreachable or corrupt.
        reason: human-readable cause (what took the fragments out).
    """

    dataset: str
    block_id: int
    needed: int
    available: Tuple[int, ...]
    missing: Tuple[int, ...]
    reason: str

    def describe(self) -> str:
        return (
            f"block {self.block_id} of {self.dataset!r} quarantined: "
            f"{len(self.available)} of {self.needed} needed fragments "
            f"readable (missing {list(self.missing)}): {self.reason}"
        )


class ErasureCodedBlock:
    """One logical block striped into k data + m parity fragments.

    Fragment *content* is shared the way replicated block content is: the
    stripe is encoded once and every holder references it, with per-node
    corruption modeled as an overlay on the DataNode (see
    :meth:`~repro.hdfs.datanode.DataNode.corrupt_fragment`).
    """

    __slots__ = ("block", "spec", "codec", "_payload_len", "_fragments", "_checksums")

    def __init__(self, block: Block, spec: CodingSpec) -> None:
        self.block = block
        self.spec = spec
        self.codec = RSCodec.for_spec(spec)
        payload = block_payload(block)
        self._payload_len = len(payload)
        self._fragments: List[bytes] = self.codec.encode(payload)
        self._checksums: List[bytes] = [
            hashlib.blake2b(frag, digest_size=CHECKSUM_BYTES).digest()
            for frag in self._fragments
        ]

    # -- geometry -----------------------------------------------------------------

    @property
    def block_id(self) -> int:
        return self.block.block_id

    @property
    def payload_len(self) -> int:
        """Original serialized payload length (pre-striping)."""
        return self._payload_len

    @property
    def fragment_nbytes(self) -> int:
        """Stored bytes per fragment (every fragment is the same size)."""
        return len(self._fragments[0]) if self._fragments else 0

    @property
    def total_fragment_bytes(self) -> int:
        """Physical bytes of the whole stripe ((k+m) fragments)."""
        return self.fragment_nbytes * self.spec.n

    @property
    def decode_read_bytes(self) -> int:
        """Bytes a decode must read: any k fragments."""
        return self.fragment_nbytes * self.spec.k

    # -- fragment access ----------------------------------------------------------

    def fragment(self, index: int) -> bytes:
        if not 0 <= index < self.spec.n:
            raise CodingError(
                f"fragment index {index} out of range for n={self.spec.n}"
            )
        return self._fragments[index]

    def fragment_checksum(self, index: int) -> bytes:
        if not 0 <= index < self.spec.n:
            raise CodingError(
                f"fragment index {index} out of range for n={self.spec.n}"
            )
        return self._checksums[index]

    # -- decoding -----------------------------------------------------------------

    def reconstruct_payload(self, indices: Sequence[int]) -> bytes:
        """Decode the payload from the given fragment indices (≥ k of them).

        Raises:
            CodingError: with fewer than k indices.
            IntegrityError: if the decoded payload fails the block checksum
                (cannot happen unless fragment content was tampered with
                outside the corruption-overlay model).
        """
        use = sorted(set(indices))[: self.spec.k]
        payload = self.codec.reconstruct(
            {i: self._fragments[i] for i in use if 0 <= i < self.spec.n},
            self._payload_len,
            indices=use,
        )
        expected = self.block.checksum()
        # the block checksum hashes record-by-record; recompute identically
        actual = hashlib.blake2b(digest_size=CHECKSUM_BYTES)
        offset = 0
        for record in self.block.records():
            line = record.serialize().encode("utf-8") + b"\n"
            actual.update(payload[offset : offset + len(line)])
            offset += len(line)
        if actual.digest() != expected:
            raise IntegrityError(
                f"decoded payload of block {self.block_id} fails its checksum"
            )
        return payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ErasureCodedBlock(id={self.block_id}, k={self.spec.k}, "
            f"m={self.spec.m}, fragment={self.fragment_nbytes}B)"
        )


def fragment_health(
    cluster, dataset: str, *, failures=None
) -> Dict[str, int]:
    """Fragment-level health census of one coded dataset.

    Returns counters suitable for a fragment-health span: total fragments,
    verified-healthy ones, rotten ones, holders currently dead, blocks at
    the decode floor (exactly k readable) and blocks past it (< k).
    """
    namenode = cluster.namenode
    total = healthy = corrupt = dead = at_floor = lost = 0
    for bid in namenode.blocks_of(dataset):
        meta = namenode.block_meta(dataset, bid)
        if meta.coding is None:
            continue
        k = meta.coding[0]
        readable = 0
        for holder in meta.replicas:
            total += 1
            if failures is not None and not failures.is_alive(holder):
                dead += 1
                continue
            if cluster.datanodes[holder].verify_fragment(dataset, bid):
                healthy += 1
                readable += 1
            else:
                corrupt += 1
        if readable < k:
            lost += 1
        elif readable == k:
            at_floor += 1
    return {
        "fragments": total,
        "healthy": healthy,
        "corrupt": corrupt,
        "dead_holders": dead,
        "blocks_at_decode_floor": at_floor,
        "blocks_unrecoverable": lost,
    }


class CodedReader:
    """Checksum-verified, straggler-hedged reads over coded stripes.

    Same call shape as :class:`~repro.hdfs.scrubber.ReadVerifier` /
    :class:`~repro.hdfs.hedged.HedgedReader` so the engine can thread it
    through :meth:`~repro.mapreduce.engine.MapReduceEngine.selection_task_cost`
    unchanged; fragment choice, degraded decodes, in-place repair and
    hedging all live here.

    Fragment reads are *parallel*: the read completes when the slowest of
    the k chosen fragments arrives, which is where coded reads beat
    whole-replica fetches under gray failures — and why hedging one extra
    fragment (k + 1 issued, first k win) clips the tail.

    Args:
        cluster: the cluster being read (must hold coded datasets).
        injector: optional seeded fault oracle (slowdowns, link penalties,
            partition cuts).  ``None`` models a healthy network.
        detector: optional health detector; fragment ranking prefers
            healthy holders.
        failures: optional failure manager; fragments on dead nodes are
            unavailable.
        percentile/window/min_samples: hedge trigger tuning, as in
            :class:`~repro.hdfs.hedged.HedgedReader`.
    """

    def __init__(
        self,
        cluster,
        injector=None,
        *,
        detector=None,
        failures=None,
        percentile: float = 0.9,
        window: int = 64,
        min_samples: int = 8,
        obs: Observability = NULL_OBS,
    ) -> None:
        self.cluster = cluster
        self.injector = injector
        self.detector = detector
        self.failures = failures
        self.percentile = percentile
        self.min_samples = min_samples
        self.obs = obs
        # deferred import: repro.faults pulls in the scheduling stack,
        # which imports the cluster module that imports this one
        from ..faults.dedup import FirstWinLedger

        self.ledger = FirstWinLedger()
        self.reads = 0
        self.degraded_reads = 0
        self.decoded_bytes = 0
        self.detected = 0
        self.repaired = 0
        self.repaired_bytes = 0
        self.hedges_issued = 0
        self.hedges_won = 0
        self.wasted_seconds = 0.0
        self.events: List[ReconstructionEvent] = []
        self.quarantined: List[QuarantineRecord] = []
        self._samples: Deque[float] = deque(maxlen=window)

    # -- internals -----------------------------------------------------------------

    def _health(self, node) -> float:
        if self.detector is None:
            return 1.0
        return self.detector.health_score(node)

    def _alive(self, node) -> bool:
        return self.failures is None or self.failures.is_alive(node)

    def _reachable(self, reader, holder, when: float) -> bool:
        if self.injector is None or not self.injector.plan.partitions:
            return True
        return self.injector.same_side(reader, holder, when)

    def threshold(self) -> Optional[float]:
        """Current hedge trigger in seconds, or ``None`` while unarmed."""
        if len(self._samples) < self.min_samples:
            return None
        ordered = sorted(self._samples)
        idx = int(self.percentile * (len(ordered) - 1))
        return ordered[idx]

    def _count(self, name: str, help: str, amount: float = 1.0) -> None:
        if self.obs.metrics.enabled:
            self.obs.metrics.counter(name, help=help).inc(amount)

    def _fragment_service(
        self,
        reader,
        holder,
        frag_bytes: int,
        read_local: Callable[[int], float],
        read_remote: Callable[[int], float],
        when: float,
        key: str,
    ) -> float:
        """Observed seconds to fetch one fragment from ``holder``."""
        if holder == reader:
            return read_local(frag_bytes)
        base = read_remote(frag_bytes)
        if self.injector is None:
            return base
        service = base * self.injector.slowdown(holder, when)
        service += self.injector.link_penalty(
            reader, holder, time=when, key=key, base_cost=base
        )
        return service

    def _quarantine(
        self,
        dataset: str,
        block_id: int,
        needed: int,
        available: Sequence[int],
        missing: Sequence[int],
        reason: str,
    ) -> UnrecoverableBlockError:
        record = QuarantineRecord(
            dataset=dataset,
            block_id=block_id,
            needed=needed,
            available=tuple(sorted(available)),
            missing=tuple(sorted(missing)),
            reason=reason,
        )
        self.quarantined.append(record)
        self._count(
            "coded_blocks_quarantined_total",
            "coded blocks that lost more than m fragments",
        )
        return UnrecoverableBlockError(record.describe(), record=record)

    # -- read path -----------------------------------------------------------------

    def read_cost(
        self,
        dataset: str,
        block_id: int,
        node,
        replicas: Tuple[int, ...],
        nbytes: int,
        read_local: Callable[[int], float],
        read_remote: Callable[[int], float],
        write_local: Callable[[int], float],
        *,
        when: float = 0.0,
        decode: Optional[Callable[[int], float]] = None,
    ) -> float:
        """Seconds to assemble ``block_id``'s payload at ``node``.

        ``replicas`` is accepted for signature compatibility but the
        fragment→holder mapping always comes from the NameNode catalog:
        fragment *indices* are positional, so a filtered holder list would
        silently re-index the stripe.

        Raises:
            UnrecoverableBlockError: fewer than k fragments are readable
                (a quarantine record is appended first).
        """
        del replicas  # index order must come from the catalog
        ecb = self.cluster.coded_block(dataset, block_id)
        spec = ecb.spec
        k, n = spec.k, spec.n
        frag = ecb.fragment_nbytes
        holders = self.cluster.namenode.block_locations(dataset, block_id)
        datanodes = self.cluster.datanodes

        self.reads += 1
        read_key = f"{dataset}/{block_id}/c{self.reads}"

        local_corrupt_index: Optional[int] = None
        available: List[int] = []
        missing: List[int] = []
        for i, holder in enumerate(holders):
            if not self._alive(holder) or not self._reachable(node, holder, when):
                missing.append(i)
                continue
            if not datanodes[holder].verify_fragment(dataset, block_id):
                self.detected += 1
                self._count(
                    "coded_fragments_detected_total",
                    "rotten fragments caught by coded reads",
                )
                if holder == node:
                    local_corrupt_index = i
                missing.append(i)
                continue
            available.append(i)
        if len(available) < k:
            raise self._quarantine(
                dataset,
                block_id,
                k,
                available,
                missing,
                f"coded read from node {node} at t={when}",
            )

        # rank by health then repr (the hedged reader's ordering), with the
        # reader's own fragment always cheapest
        ranked = sorted(
            available,
            key=lambda i: (
                0 if holders[i] == node else 1,
                -self._health(holders[i]),
                repr(holders[i]),
                i,
            ),
        )
        chosen = ranked[:k]
        services = {
            i: self._fragment_service(
                node, holders[i], frag, read_local, read_remote, when,
                f"{read_key}/f{i}",
            )
            for i in chosen
        }
        completion = max(services.values())

        trigger = self.threshold()
        spare = ranked[k] if len(ranked) > k else None
        if trigger is not None and completion > trigger and spare is not None:
            # issue k+1 fragment reads up front; the first k to arrive win
            self.hedges_issued += 1
            self._count(
                "coded_hedged_reads_total",
                "extra fragment reads issued by coded hedging",
            )
            services[spare] = self._fragment_service(
                node, holders[spare], frag, read_local, read_remote, when,
                f"{read_key}/f{spare}#hedge",
            )
            arrivals = sorted(services, key=lambda i: (services[i], i))
            winners, loser = arrivals[:k], arrivals[k]
            completion = services[winners[-1]]
            if spare in winners:
                self.hedges_won += 1
                self._count(
                    "coded_hedge_wins_total",
                    "coded hedges where the spare fragment made the first k",
                )
            # the (k+1)-th read is cancelled when the stripe completes
            self.wasted_seconds += completion
            self._count(
                "coded_hedge_wasted_seconds_total",
                "loser-side seconds burned by coded fragment races",
                completion,
            )
            self.ledger.offer(
                read_key, f"decode:{sorted(winners)}", completion, nbytes
            )
            self.ledger.offer(
                read_key, f"frag:{loser}", services[loser], frag
            )
            chosen = winners
        else:
            self.ledger.offer(
                read_key, f"decode:{sorted(chosen)}", completion, nbytes
            )

        total = completion
        if sorted(chosen) != list(range(k)):
            # a data shard is unavailable: decode through parity
            self.degraded_reads += 1
            self.decoded_bytes += ecb.decode_read_bytes
            self._count(
                "coded_degraded_reads_total",
                "reads that decoded through parity fragments",
            )
            self._count(
                "coded_decode_bytes_total",
                "stripe bytes fed through the GF(256) decoder",
                ecb.decode_read_bytes,
            )
            if decode is not None:
                total += decode(ecb.decode_read_bytes)
            # exercise the real decoder so a coded read can never silently
            # serve bytes parity cannot actually produce
            ecb.reconstruct_payload(sorted(chosen))

        if local_corrupt_index is not None:
            # this read already fetched k verified fragments; persist the
            # repaired local fragment at one local-write cost
            datanodes[node].repair_fragment(dataset, block_id)
            self.repaired += 1
            self.repaired_bytes += frag
            self._count(
                "coded_fragments_repaired_total",
                "rotten fragments rebuilt in place by coded reads",
            )
            self.events.append(
                ReconstructionEvent(
                    dataset=dataset,
                    block_id=block_id,
                    index=local_corrupt_index,
                    sources=tuple(holders[i] for i in sorted(chosen)),
                    destination=node,
                    nbytes=frag,
                    decode_bytes=ecb.decode_read_bytes,
                )
            )
            total += write_local(frag)

        if any(holders[i] != node for i in chosen):
            self._samples.append(completion)
        return total
