"""DataNode: per-node replica storage.

Each cluster node stores the block replicas placed on it.  Block *content*
is shared (one :class:`~repro.hdfs.block.Block` object per logical block);
the DataNode records possession, mirroring how replication multiplies disk
usage but not logical data.

Because content is shared, bit rot is modeled as a per-replica *corruption
overlay*: a corrupt replica keeps pointing at the logical block (so sizes
and placement stay coherent) but reports a divergent checksum and refuses
verified reads until repaired.  That is exactly the observable behaviour of
a rotten HDFS replica — the bytes are there, the checksum file disagrees.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from ..errors import ConfigError, IntegrityError, StorageError
from .block import Block, CHECKSUM_BYTES

if TYPE_CHECKING:  # pragma: no cover - type-only import (avoids a cycle)
    from .coded import ErasureCodedBlock

__all__ = ["DataNode"]


class DataNode:
    """One storage node in the cluster.

    Args:
        node_id: cluster-wide node index.
        rack: rack index (used by rack-aware placement and, in the engine,
            to price off-rack transfers higher than in-rack ones).
    """

    def __init__(self, node_id: int, *, rack: int = 0) -> None:
        if node_id < 0:
            raise ConfigError(f"node_id must be non-negative, got {node_id}")
        self.node_id = node_id
        self.rack = rack
        self._replicas: Dict[Tuple[str, int], Block] = {}
        self._corrupt: Set[Tuple[str, int]] = set()
        # coded datasets: (dataset, block_id) -> (fragment index, stripe)
        self._fragments: Dict[Tuple[str, int], Tuple[int, "ErasureCodedBlock"]] = {}
        self._corrupt_fragments: Set[Tuple[str, int]] = set()

    # -- replica management -----------------------------------------------------

    def store_replica(self, dataset: str, block: Block) -> None:
        """Accept a replica of ``block`` for ``dataset``."""
        key = (dataset, block.block_id)
        if key in self._replicas:
            raise StorageError(
                f"node {self.node_id} already holds block {block.block_id} "
                f"of {dataset!r}"
            )
        self._replicas[key] = block

    def has_replica(self, dataset: str, block_id: int) -> bool:
        return (dataset, block_id) in self._replicas

    def drop_replica(self, dataset: str, block_id: int) -> None:
        """Remove a replica from this node (balancer/decommission path).

        Raises:
            StorageError: if the node does not hold the replica.
        """
        if self._replicas.pop((dataset, block_id), None) is None:
            raise StorageError(
                f"node {self.node_id} holds no replica of block {block_id} "
                f"of {dataset!r} to drop"
            )
        self._corrupt.discard((dataset, block_id))

    def get_replica(self, dataset: str, block_id: int, *, verify: bool = False) -> Block:
        """Fetch a locally stored replica.

        Args:
            verify: re-checksum the replica before serving it, as the HDFS
                read path does.  A corrupt replica then raises
                :class:`~repro.errors.IntegrityError` instead of silently
                serving divergent bytes.

        Raises:
            StorageError: if this node holds no such replica (a remote read
                must go through the cluster, which models the transfer).
            IntegrityError: if ``verify`` is set and the replica is corrupt.
        """
        try:
            block = self._replicas[(dataset, block_id)]
        except KeyError:
            raise StorageError(
                f"node {self.node_id} holds no replica of block {block_id} "
                f"of {dataset!r}"
            ) from None
        if verify and (dataset, block_id) in self._corrupt:
            raise IntegrityError(
                f"checksum mismatch reading block {block_id} of {dataset!r} "
                f"on node {self.node_id}"
            )
        return block

    # -- fragment management (erasure-coded datasets) ----------------------------

    def store_fragment(
        self, dataset: str, coded: "ErasureCodedBlock", index: int
    ) -> None:
        """Accept fragment ``index`` of a coded block's stripe.

        One node holds at most one fragment per stripe (placement spreads
        the k+m fragments over distinct nodes), so fragments are keyed by
        block like replicas are.
        """
        if not 0 <= index < coded.spec.n:
            raise ConfigError(
                f"fragment index {index} out of range for k+m={coded.spec.n}"
            )
        key = (dataset, coded.block_id)
        if key in self._fragments:
            raise StorageError(
                f"node {self.node_id} already holds a fragment of block "
                f"{coded.block_id} of {dataset!r}"
            )
        self._fragments[key] = (index, coded)

    def has_fragment(self, dataset: str, block_id: int) -> bool:
        return (dataset, block_id) in self._fragments

    def fragment_index(self, dataset: str, block_id: int) -> int:
        """Which stripe position this node's fragment occupies.

        Raises:
            StorageError: if the node holds no fragment of the block.
        """
        try:
            return self._fragments[(dataset, block_id)][0]
        except KeyError:
            raise StorageError(
                f"node {self.node_id} holds no fragment of block {block_id} "
                f"of {dataset!r}"
            ) from None

    def drop_fragment(self, dataset: str, block_id: int) -> None:
        """Remove a fragment from this node.

        Raises:
            StorageError: if the node does not hold the fragment.
        """
        if self._fragments.pop((dataset, block_id), None) is None:
            raise StorageError(
                f"node {self.node_id} holds no fragment of block {block_id} "
                f"of {dataset!r} to drop"
            )
        self._corrupt_fragments.discard((dataset, block_id))

    def corrupt_fragment(self, dataset: str, block_id: int) -> None:
        """Rot this node's fragment of a stripe (bit-rot overlay).

        Raises:
            StorageError: if the node holds no such fragment.
        """
        if (dataset, block_id) not in self._fragments:
            raise StorageError(
                f"node {self.node_id} holds no fragment of block {block_id} "
                f"of {dataset!r} to corrupt"
            )
        self._corrupt_fragments.add((dataset, block_id))

    def is_fragment_corrupt(self, dataset: str, block_id: int) -> bool:
        return (dataset, block_id) in self._corrupt_fragments

    def fragment_checksum(self, dataset: str, block_id: int) -> bytes:
        """Checksum of the fragment bytes this node would serve.

        A rotten fragment reports a deterministic divergent digest, the
        same bit-rot model as :meth:`replica_checksum`.
        """
        key = (dataset, block_id)
        try:
            index, coded = self._fragments[key]
        except KeyError:
            raise StorageError(
                f"node {self.node_id} holds no fragment of block {block_id} "
                f"of {dataset!r}"
            ) from None
        digest = coded.fragment_checksum(index)
        if key in self._corrupt_fragments:
            return hashlib.blake2b(
                digest + b"!bitrot", digest_size=CHECKSUM_BYTES
            ).digest()
        return digest

    def verify_fragment(self, dataset: str, block_id: int) -> bool:
        """Compare the served fragment checksum against the stripe's truth."""
        served = self.fragment_checksum(dataset, block_id)  # raises if absent
        index, coded = self._fragments[(dataset, block_id)]
        return served == coded.fragment_checksum(index)

    def repair_fragment(self, dataset: str, block_id: int) -> None:
        """Overwrite a rotten fragment with its reconstructed content.

        The caller performed the parity decode (scrubber, coded read or
        failure manager); content is shared, so persisting the rebuilt
        fragment clears the corruption overlay.

        Raises:
            StorageError: if the node holds no such fragment.
        """
        if (dataset, block_id) not in self._fragments:
            raise StorageError(
                f"node {self.node_id} holds no fragment of block {block_id} "
                f"of {dataset!r} to repair"
            )
        self._corrupt_fragments.discard((dataset, block_id))

    def corrupt_fragments(self, dataset: str) -> List[int]:
        """Ids of this node's rotten fragments belonging to ``dataset``, sorted."""
        return sorted(bid for ds, bid in self._corrupt_fragments if ds == dataset)

    def stored_fragments(self, dataset: str) -> List[int]:
        """Block ids whose fragments this node holds for ``dataset``, sorted."""
        return sorted(bid for ds, bid in self._fragments if ds == dataset)

    @property
    def num_fragments(self) -> int:
        return len(self._fragments)

    # -- integrity ----------------------------------------------------------------

    def corrupt_replica(self, dataset: str, block_id: int) -> None:
        """Flip this node's copy of a block to a corrupt state (bit rot).

        Only this replica diverges; other nodes' copies of the same logical
        block stay intact.  Idempotent once corrupt.

        Raises:
            StorageError: if the node holds no such replica.
        """
        if (dataset, block_id) not in self._replicas:
            raise StorageError(
                f"node {self.node_id} holds no replica of block {block_id} "
                f"of {dataset!r} to corrupt"
            )
        self._corrupt.add((dataset, block_id))

    def is_replica_corrupt(self, dataset: str, block_id: int) -> bool:
        """Whether this node's copy of the block has rotted."""
        return (dataset, block_id) in self._corrupt

    def replica_checksum(self, dataset: str, block_id: int) -> bytes:
        """Checksum of the bytes this node would actually serve.

        A healthy replica reports the logical block's checksum; a rotten one
        reports a deterministic *different* digest (derived from the true
        one), modeling flipped bits without mutating the shared block.
        """
        block = self.get_replica(dataset, block_id)
        digest = block.checksum()
        if (dataset, block_id) in self._corrupt:
            return hashlib.blake2b(
                digest + b"!bitrot", digest_size=CHECKSUM_BYTES
            ).digest()
        return digest

    def verify_replica(self, dataset: str, block_id: int) -> bool:
        """Compare the replica's served checksum against the block's truth."""
        return (
            self.replica_checksum(dataset, block_id)
            == self.get_replica(dataset, block_id).checksum()
        )

    def repair_replica(self, dataset: str, block_id: int) -> None:
        """Overwrite a rotten replica from a verified-good copy.

        The caller is responsible for having located a good source (see
        :class:`~repro.hdfs.scrubber.Scrubber`); content is shared, so the
        repair amounts to clearing the corruption overlay.

        Raises:
            StorageError: if the node holds no such replica.
        """
        if (dataset, block_id) not in self._replicas:
            raise StorageError(
                f"node {self.node_id} holds no replica of block {block_id} "
                f"of {dataset!r} to repair"
            )
        self._corrupt.discard((dataset, block_id))

    def corrupt_replicas(self, dataset: str) -> List[int]:
        """Ids of this node's rotten replicas belonging to ``dataset``, sorted."""
        return sorted(bid for ds, bid in self._corrupt if ds == dataset)

    # -- introspection -------------------------------------------------------------

    @property
    def num_replicas(self) -> int:
        return len(self._replicas)

    def stored_blocks(self, dataset: str) -> List[int]:
        """Ids of this node's replicas belonging to ``dataset``, sorted."""
        return sorted(bid for ds, bid in self._replicas if ds == dataset)

    def used_bytes(self) -> int:
        """Physical bytes consumed by replicas and fragments on this node."""
        return sum(b.used_bytes for b in self._replicas.values()) + sum(
            coded.fragment_nbytes for _idx, coded in self._fragments.values()
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DataNode(id={self.node_id}, rack={self.rack}, replicas={len(self._replicas)})"
