"""DataNode: per-node replica storage.

Each cluster node stores the block replicas placed on it.  Block *content*
is shared (one :class:`~repro.hdfs.block.Block` object per logical block);
the DataNode records possession, mirroring how replication multiplies disk
usage but not logical data.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..errors import ConfigError, StorageError
from .block import Block

__all__ = ["DataNode"]


class DataNode:
    """One storage node in the cluster.

    Args:
        node_id: cluster-wide node index.
        rack: rack index (used by rack-aware placement and, in the engine,
            to price off-rack transfers higher than in-rack ones).
    """

    def __init__(self, node_id: int, *, rack: int = 0) -> None:
        if node_id < 0:
            raise ConfigError(f"node_id must be non-negative, got {node_id}")
        self.node_id = node_id
        self.rack = rack
        self._replicas: Dict[Tuple[str, int], Block] = {}

    # -- replica management -----------------------------------------------------

    def store_replica(self, dataset: str, block: Block) -> None:
        """Accept a replica of ``block`` for ``dataset``."""
        key = (dataset, block.block_id)
        if key in self._replicas:
            raise StorageError(
                f"node {self.node_id} already holds block {block.block_id} "
                f"of {dataset!r}"
            )
        self._replicas[key] = block

    def has_replica(self, dataset: str, block_id: int) -> bool:
        return (dataset, block_id) in self._replicas

    def drop_replica(self, dataset: str, block_id: int) -> None:
        """Remove a replica from this node (balancer/decommission path).

        Raises:
            StorageError: if the node does not hold the replica.
        """
        if self._replicas.pop((dataset, block_id), None) is None:
            raise StorageError(
                f"node {self.node_id} holds no replica of block {block_id} "
                f"of {dataset!r} to drop"
            )

    def get_replica(self, dataset: str, block_id: int) -> Block:
        """Fetch a locally stored replica.

        Raises:
            StorageError: if this node holds no such replica (a remote read
                must go through the cluster, which models the transfer).
        """
        try:
            return self._replicas[(dataset, block_id)]
        except KeyError:
            raise StorageError(
                f"node {self.node_id} holds no replica of block {block_id} "
                f"of {dataset!r}"
            ) from None

    # -- introspection -------------------------------------------------------------

    @property
    def num_replicas(self) -> int:
        return len(self._replicas)

    def stored_blocks(self, dataset: str) -> List[int]:
        """Ids of this node's replicas belonging to ``dataset``, sorted."""
        return sorted(bid for ds, bid in self._replicas if ds == dataset)

    def used_bytes(self) -> int:
        """Physical bytes consumed by replicas on this node."""
        return sum(b.used_bytes for b in self._replicas.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DataNode(id={self.node_id}, rack={self.rack}, replicas={len(self._replicas)})"
