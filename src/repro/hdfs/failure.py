"""DataNode failure and re-replication.

HDFS tolerates node loss by re-replicating the dead node's blocks from
surviving replicas.  This module adds that lifecycle to the substrate so
scheduling can be exercised under churn: DataNet must keep balancing when
replica sets shrink or move, and the bipartite graph must never point at a
dead node.

:class:`FailureManager` wraps a cluster; ``fail_node`` marks a node dead
and (optionally, as HDFS does after a timeout) restores the replication
factor by copying each under-replicated block to a live node chosen by the
cluster's placement policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set

from ..errors import ConfigError, IntegrityError, ReplicationError, StorageError
from .cluster import HDFSCluster

__all__ = ["FailureManager", "ReplicationEvent"]


@dataclass(frozen=True)
class ReplicationEvent:
    """One re-replication: a block copied to restore its replica count."""

    dataset: str
    block_id: int
    source: int
    destination: int
    nbytes: int


class FailureManager:
    """Tracks node liveness and restores replication after failures.

    Args:
        cluster: the cluster to manage.  The manager mutates the cluster's
            NameNode catalog and DataNode stores in place (replica sets
            change), mirroring a real NameNode's behaviour.
    """

    def __init__(self, cluster: HDFSCluster) -> None:
        self.cluster = cluster
        self._dead: Set[int] = set()
        self.events: List[ReplicationEvent] = []

    # -- liveness ------------------------------------------------------------------

    @property
    def dead_nodes(self) -> List[int]:
        return sorted(self._dead)

    @property
    def live_nodes(self) -> List[int]:
        return [n for n in self.cluster.nodes if n not in self._dead]

    def is_alive(self, node: int) -> bool:
        return node not in self._dead

    # -- failure -------------------------------------------------------------------

    def fail_node(self, node: int, *, re_replicate: bool = True) -> List[ReplicationEvent]:
        """Mark ``node`` dead; optionally restore every affected block.

        Returns the re-replication events performed.

        Raises:
            ConfigError: unknown or already-dead node.
            ReplicationError: when a block would lose its last replica and
                no live node can accept a copy.
        """
        if node not in self.cluster.datanodes:
            raise ConfigError(f"unknown node {node}")
        if node in self._dead:
            raise ConfigError(f"node {node} is already dead")
        self._dead.add(node)
        if not re_replicate:
            return []
        return self._restore_replication(node)

    def _restore_replication(self, dead_node: int) -> List[ReplicationEvent]:
        namenode = self.cluster.namenode
        performed: List[ReplicationEvent] = []
        for dataset, block_id in namenode.blocks_on_node(dead_node):
            meta = namenode.block_meta(dataset, block_id)
            survivors = [n for n in meta.replicas if self.is_alive(n)]
            if not survivors:
                raise ReplicationError(
                    f"block {block_id} of {dataset!r} lost its last replica"
                )
            candidates = [
                n
                for n in self.live_nodes
                if n not in survivors
            ]
            if not candidates:
                # cluster smaller than the replication factor now; accept
                # the reduced replica set rather than fail.
                self._replace_meta(dataset, block_id, survivors)
                continue
            destination = self._pick_destination(block_id, candidates)
            source = self._pick_source(dataset, block_id, survivors)
            block = self.cluster.get_block(dataset, block_id)
            self.cluster.datanodes[destination].store_replica(dataset, block)
            new_replicas = survivors + [destination]
            self._replace_meta(dataset, block_id, new_replicas)
            event = ReplicationEvent(
                dataset=dataset,
                block_id=block_id,
                source=source,
                destination=destination,
                nbytes=block.used_bytes,
            )
            performed.append(event)
            self.events.append(event)
        return performed

    def _pick_destination(self, block_id: int, candidates: List[int]) -> int:
        """Delegate to the placement policy restricted to live candidates."""
        placed = self.cluster.placement_policy.place(block_id, candidates)
        return placed[0]

    def _pick_source(self, dataset: str, block_id: int, survivors: List[int]) -> int:
        """The least-loaded *verified-good* surviving replica serves the copy.

        Spreading re-replication traffic is secondary to never propagating
        bit rot: a survivor whose replica fails its checksum is skipped, and
        if every survivor is rotten the copy is refused outright rather than
        multiplying corrupt data.

        Raises:
            IntegrityError: when no survivor passes verification.
        """
        good = [
            n
            for n in survivors
            if self.cluster.datanodes[n].verify_replica(dataset, block_id)
        ]
        if not good:
            raise IntegrityError(
                f"block {block_id} of {dataset!r}: every surviving replica "
                f"fails its checksum; refusing to re-replicate corrupt data"
            )
        return min(
            good,
            key=lambda n: (self.cluster.datanodes[n].used_bytes(), n),
        )

    def _replace_meta(self, dataset: str, block_id: int, replicas: List[int]) -> None:
        """Swap a block's replica set in the NameNode catalog."""
        self.cluster.namenode.update_replicas(dataset, block_id, replicas)

    # -- verification -----------------------------------------------------------------

    def verify_replication(self, dataset: str) -> Dict[int, int]:
        """Replica count per block, counting only live nodes.

        Raises:
            StorageError: if any catalog replica is missing from its
                DataNode's store (catalog/storage divergence).
        """
        out: Dict[int, int] = {}
        namenode = self.cluster.namenode
        for block_id in namenode.blocks_of(dataset):
            replicas = namenode.block_locations(dataset, block_id)
            live = [n for n in replicas if self.is_alive(n)]
            for node in live:
                if not self.cluster.datanodes[node].has_replica(dataset, block_id):
                    raise StorageError(
                        f"catalog lists node {node} for block {block_id} "
                        f"of {dataset!r} but the node lacks the replica"
                    )
            out[block_id] = len(live)
        return out

    def bytes_re_replicated(self) -> int:
        """Total bytes copied across all failures handled so far."""
        return sum(e.nbytes for e in self.events)
