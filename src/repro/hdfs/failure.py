"""DataNode failure and re-replication.

HDFS tolerates node loss by re-replicating the dead node's blocks from
surviving replicas.  This module adds that lifecycle to the substrate so
scheduling can be exercised under churn: DataNet must keep balancing when
replica sets shrink or move, and the bipartite graph must never point at a
dead node.

:class:`FailureManager` wraps a cluster; ``fail_node`` marks a node dead
and (optionally, as HDFS does after a timeout) restores the replication
factor by copying each under-replicated block to a live node chosen by the
cluster's placement policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set

from ..errors import (
    ConfigError,
    IntegrityError,
    ReplicationError,
    StorageError,
    UnrecoverableBlockError,
)
from .cluster import HDFSCluster
from .coded import QuarantineRecord, ReconstructionEvent

__all__ = ["FailureManager", "ReplicationEvent"]


@dataclass(frozen=True)
class ReplicationEvent:
    """One re-replication: a block copied to restore its replica count."""

    dataset: str
    block_id: int
    source: int
    destination: int
    nbytes: int


class FailureManager:
    """Tracks node liveness and restores replication after failures.

    Args:
        cluster: the cluster to manage.  The manager mutates the cluster's
            NameNode catalog and DataNode stores in place (replica sets
            change), mirroring a real NameNode's behaviour.
    """

    def __init__(self, cluster: HDFSCluster) -> None:
        self.cluster = cluster
        self._dead: Set[int] = set()
        self.events: List[ReplicationEvent] = []
        self.reconstructions: List[ReconstructionEvent] = []
        self.quarantined: List[QuarantineRecord] = []

    # -- liveness ------------------------------------------------------------------

    @property
    def dead_nodes(self) -> List[int]:
        return sorted(self._dead)

    @property
    def live_nodes(self) -> List[int]:
        return [n for n in self.cluster.nodes if n not in self._dead]

    def is_alive(self, node: int) -> bool:
        return node not in self._dead

    # -- failure -------------------------------------------------------------------

    def fail_node(self, node: int, *, re_replicate: bool = True) -> List[ReplicationEvent]:
        """Mark ``node`` dead; optionally restore every affected block.

        Returns the re-replication events performed.

        Raises:
            ConfigError: unknown or already-dead node.
            ReplicationError: when a block would lose its last replica and
                no live node can accept a copy.
        """
        if node not in self.cluster.datanodes:
            raise ConfigError(f"unknown node {node}")
        if node in self._dead:
            raise ConfigError(f"node {node} is already dead")
        self._dead.add(node)
        if not re_replicate:
            return []
        return self._restore_replication(node)

    def _restore_replication(self, dead_node: int) -> List[ReplicationEvent]:
        namenode = self.cluster.namenode
        performed: List[ReplicationEvent] = []
        for dataset, block_id in namenode.blocks_on_node(dead_node):
            meta = namenode.block_meta(dataset, block_id)
            if meta.coding is not None:
                self._reconstruct_fragment(dead_node, dataset, block_id, meta)
                continue
            survivors = [n for n in meta.replicas if self.is_alive(n)]
            if not survivors:
                raise ReplicationError(
                    f"block {block_id} of {dataset!r} lost its last replica"
                )
            candidates = [
                n
                for n in self.live_nodes
                if n not in survivors
            ]
            if not candidates:
                # cluster smaller than the replication factor now; accept
                # the reduced replica set rather than fail.
                self._replace_meta(dataset, block_id, survivors)
                continue
            destination = self._pick_destination(block_id, candidates)
            source = self._pick_source(dataset, block_id, survivors)
            block = self.cluster.get_block(dataset, block_id)
            self.cluster.datanodes[destination].store_replica(dataset, block)
            new_replicas = survivors + [destination]
            self._replace_meta(dataset, block_id, new_replicas)
            event = ReplicationEvent(
                dataset=dataset,
                block_id=block_id,
                source=source,
                destination=destination,
                nbytes=block.used_bytes,
            )
            performed.append(event)
            self.events.append(event)
        return performed

    def _pick_destination(self, block_id: int, candidates: List[int]) -> int:
        """Delegate to the placement policy restricted to live candidates."""
        placed = self.cluster.placement_policy.place(block_id, candidates)
        return placed[0]

    def _pick_source(self, dataset: str, block_id: int, survivors: List[int]) -> int:
        """The least-loaded *verified-good* surviving replica serves the copy.

        Spreading re-replication traffic is secondary to never propagating
        bit rot: a survivor whose replica fails its checksum is skipped, and
        if every survivor is rotten the copy is refused outright rather than
        multiplying corrupt data.

        Raises:
            IntegrityError: when no survivor passes verification.
        """
        good = [
            n
            for n in survivors
            if self.cluster.datanodes[n].verify_replica(dataset, block_id)
        ]
        if not good:
            raise IntegrityError(
                f"block {block_id} of {dataset!r}: every surviving replica "
                f"fails its checksum; refusing to re-replicate corrupt data"
            )
        return min(
            good,
            key=lambda n: (self.cluster.datanodes[n].used_bytes(), n),
        )

    def _replace_meta(self, dataset: str, block_id: int, replicas: List[int]) -> None:
        """Swap a block's replica set in the NameNode catalog."""
        self.cluster.namenode.update_replicas(dataset, block_id, replicas)

    # -- coded reconstruction -----------------------------------------------------

    def _reconstruct_fragment(
        self, dead_node: int, dataset: str, block_id: int, meta
    ) -> None:
        """Rebuild the dead node's fragment on a live node from parity.

        Unlike re-replication there is no surviving copy of the lost
        fragment to clone — k peer fragments are read (``decode_bytes``),
        the lost shard is recomputed through the code, and only
        ``fragment_nbytes`` are written at the destination, which takes the
        dead node's *position* in the catalog so the stripe's
        index → holder mapping stays intact.

        Raises:
            UnrecoverableBlockError: fewer than k verified live fragments
                remain; the block is quarantined (``self.quarantined``)
                before raising.
        """
        coded = self.cluster.coded_block(dataset, block_id)
        k = meta.coding[0]
        index = meta.replicas.index(dead_node)
        good = [
            (i, holder)
            for i, holder in enumerate(meta.replicas)
            if self.is_alive(holder)
            and self.cluster.datanodes[holder].verify_fragment(dataset, block_id)
        ]
        if len(good) < k:
            record = QuarantineRecord(
                dataset=dataset,
                block_id=block_id,
                needed=k,
                available=tuple(i for i, _n in good),
                missing=tuple(
                    i for i in range(meta.coding[0] + meta.coding[1])
                    if i not in {j for j, _n in good}
                ),
                reason=f"node {dead_node} died with fragment {index}",
            )
            self.quarantined.append(record)
            raise UnrecoverableBlockError(
                f"block {block_id} of {dataset!r}: {record.describe()}",
                record=record,
            )
        holders = {n for _i, n in good}
        candidates = [
            n for n in self.live_nodes if n not in holders and n != dead_node
        ]
        if not candidates:
            # cluster smaller than k+m now; the stripe stays decodable from
            # its survivors, and the dead holder keeps its catalog slot so
            # the positional index → fragment map survives until a node
            # frees up.  Reads filter dead holders themselves.
            return
        destination = min(
            candidates,
            key=lambda n: (self.cluster.datanodes[n].used_bytes(), n),
        )
        sources = sorted(
            good,
            key=lambda pair: (
                self.cluster.datanodes[pair[1]].used_bytes(),
                pair[1],
            ),
        )[:k]
        # prove the rebuild is real: decode the stripe from the chosen
        # k-subset before publishing the new holder
        coded.reconstruct_payload([i for i, _n in sources])
        self.cluster.datanodes[destination].store_fragment(dataset, coded, index)
        new_replicas = list(meta.replicas)
        new_replicas[index] = destination
        self._replace_meta(dataset, block_id, new_replicas)
        self.reconstructions.append(
            ReconstructionEvent(
                dataset=dataset,
                block_id=block_id,
                index=index,
                sources=tuple(n for _i, n in sources),
                destination=destination,
                nbytes=coded.fragment_nbytes,
                decode_bytes=coded.decode_read_bytes,
            )
        )

    # -- verification -----------------------------------------------------------------

    def verify_replication(self, dataset: str) -> Dict[int, int]:
        """Replica count per block, counting only live nodes.

        Raises:
            StorageError: if any catalog replica is missing from its
                DataNode's store (catalog/storage divergence).
        """
        out: Dict[int, int] = {}
        namenode = self.cluster.namenode
        for block_id in namenode.blocks_of(dataset):
            meta = namenode.block_meta(dataset, block_id)
            live = [n for n in meta.replicas if self.is_alive(n)]
            for node in live:
                if meta.coding is not None:
                    if not self.cluster.datanodes[node].has_fragment(
                        dataset, block_id
                    ):
                        raise StorageError(
                            f"catalog lists node {node} for fragment of block "
                            f"{block_id} of {dataset!r} but the node lacks it"
                        )
                elif not self.cluster.datanodes[node].has_replica(
                    dataset, block_id
                ):
                    raise StorageError(
                        f"catalog lists node {node} for block {block_id} "
                        f"of {dataset!r} but the node lacks the replica"
                    )
            out[block_id] = len(live)
        return out

    def bytes_re_replicated(self) -> int:
        """Total bytes copied across all failures handled so far."""
        return sum(e.nbytes for e in self.events)

    def bytes_reconstructed(self) -> int:
        """Total fragment bytes rebuilt from parity so far."""
        return sum(e.nbytes for e in self.reconstructions)

    def decode_bytes_read(self) -> int:
        """Total peer-fragment bytes read to feed reconstructions."""
        return sum(e.decode_bytes for e in self.reconstructions)
