"""Hedged replica reads — the "tail at scale" defence for gray storage.

A remote read normally goes to one replica and waits.  When that replica
sits on a slow node or behind a flaky link, the read's latency lands in
the tail and drags the whole selection task with it.  :class:`HedgedReader`
keeps a sliding window of observed remote-read latencies; when a read's
primary service time crosses an adaptive percentile of that window, it
issues a *backup* read against another replica and takes whichever
response arrives first.  Duplicate completions are settled through a
:class:`~repro.faults.dedup.FirstWinLedger`, so the block's bytes are
counted exactly once no matter how the race resolves.

Replica choice prefers the healthiest holder under the φ-accrual
detector's score when one is available, and only considers replicas on
the reader's side of any active partition.  All tie-breaks sort by
``repr`` and the loss coin hashes the plan seed, so the same plan yields
the same hedges — byte-for-byte.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional, Tuple

from ..errors import ConfigError, FaultError
from ..faults.dedup import FirstWinLedger
from ..obs import NULL_OBS, Observability
from .cluster import HDFSCluster

__all__ = ["HedgedReader"]


class HedgedReader:
    """Adaptive-percentile hedged reads over a cluster's replicas.

    Drop-in for :class:`~repro.hdfs.scrubber.ReadVerifier` on the engine's
    read path (same ``read_cost`` shape plus a ``when`` clock).  Reads that
    touch a corrupt replica are delegated to the wrapped verifier so
    integrity accounting stays in one place.

    Args:
        cluster: the cluster being read.
        injector: seeded fault oracle (slowdowns, link penalties, cuts).
        detector: optional health detector; steers replica choice toward
            healthy holders.
        verify: optional read-path verifier to delegate corrupt reads to.
        percentile: hedge trigger quantile over the latency window.
        window: sliding sample window size.
        min_samples: observations required before hedging arms.
    """

    def __init__(
        self,
        cluster: HDFSCluster,
        injector,
        *,
        detector=None,
        verify=None,
        percentile: float = 0.9,
        window: int = 64,
        min_samples: int = 8,
        obs: Observability = NULL_OBS,
    ) -> None:
        if not 0.0 < percentile < 1.0:
            raise ConfigError(f"hedge percentile must be in (0, 1), got {percentile}")
        if window < 2 or min_samples < 2:
            raise ConfigError("hedge window and min_samples must be at least 2")
        self.cluster = cluster
        self.injector = injector
        self.detector = detector
        self.verify = verify
        self.percentile = percentile
        self.min_samples = min_samples
        self.obs = obs
        self.ledger = FirstWinLedger()
        self.hedges_issued = 0
        self.hedges_won = 0
        self.wasted_seconds = 0.0
        self._samples: Deque[float] = deque(maxlen=window)
        self._reads = 0

    # -- internals -----------------------------------------------------------------

    def _health(self, node: int) -> float:
        if self.detector is None:
            return 1.0
        return self.detector.health_score(node)

    def threshold(self) -> Optional[float]:
        """Current hedge trigger in seconds, or ``None`` while unarmed."""
        if len(self._samples) < self.min_samples:
            return None
        ordered = sorted(self._samples)
        idx = int(self.percentile * (len(ordered) - 1))
        return ordered[idx]

    def _remote_service(
        self,
        reader: int,
        replica: int,
        nbytes: int,
        read_remote: Callable[[int], float],
        when: float,
        key: str,
    ) -> float:
        """Observed seconds for one remote fetch: server rate + link state."""
        base = read_remote(nbytes)
        service = base * self.injector.slowdown(replica, when)
        service += self.injector.link_penalty(
            reader, replica, time=when, key=key, base_cost=base
        )
        return service

    def _count(self, name: str, help: str, amount: float = 1.0) -> None:
        if self.obs.metrics.enabled:
            self.obs.metrics.counter(name, help=help).inc(amount)

    # -- read path -----------------------------------------------------------------

    def read_cost(
        self,
        dataset: str,
        block_id: int,
        node: int,
        replicas: Tuple[int, ...],
        nbytes: int,
        read_local: Callable[[int], float],
        read_remote: Callable[[int], float],
        write_local: Callable[[int], float],
        *,
        when: float = 0.0,
    ) -> float:
        """Seconds to read ``block_id`` from ``node`` at clock ``when``.

        Local reads are served in place (a slow reader is already modelled
        by the task-level slowdown).  Remote reads pick the healthiest
        reachable replica; once the latency window is armed and the
        primary's service time crosses the trigger, a backup read races it
        and the first response wins.
        """
        datanodes = self.cluster.datanodes
        if self.verify is not None and any(
            not datanodes[r].verify_replica(dataset, block_id) for r in replicas
        ):
            # Corruption on any copy: hand the whole read to the verifier so
            # detection/repair accounting stays centralized.
            return self.verify.read_cost(
                dataset, block_id, node, replicas, nbytes,
                read_local, read_remote, write_local,
            )
        if node in replicas:
            return read_local(nbytes)
        candidates = self._reachable(node, replicas, when)
        if not candidates:
            raise FaultError(
                f"block {block_id} of {dataset!r}: no replica reachable from "
                f"node {node} at t={when}"
            )
        ranked = sorted(candidates, key=lambda r: (-self._health(r), repr(r)))
        primary = ranked[0]
        self._reads += 1
        read_key = f"{dataset}/{block_id}/r{self._reads}"
        primary_service = self._remote_service(
            node, primary, nbytes, read_remote, when, read_key
        )
        trigger = self.threshold()
        service = primary_service
        if trigger is not None and primary_service > trigger and len(ranked) > 1:
            service = self._race(
                read_key, node, primary, ranked[1], nbytes,
                read_remote, when, trigger, primary_service,
            )
        else:
            self.ledger.offer(read_key, f"primary:{primary}", primary_service, nbytes)
        self._samples.append(service)
        return service

    def _reachable(
        self, node: int, replicas: Tuple[int, ...], when: float
    ) -> List[int]:
        if not self.injector.plan.partitions:
            return list(replicas)
        return [
            r for r in replicas if self.injector.same_side(node, r, when)
        ]

    def _race(
        self,
        read_key: str,
        node: int,
        primary: int,
        backup: int,
        nbytes: int,
        read_remote: Callable[[int], float],
        when: float,
        trigger: float,
        primary_service: float,
    ) -> float:
        """Issue the backup at the trigger point and settle first-win."""
        self.hedges_issued += 1
        backup_service = self._remote_service(
            node, backup, nbytes, read_remote, when + trigger, read_key + "#hedge"
        )
        backup_arrival = trigger + backup_service
        entries = sorted(
            [
                (primary_service, 0, f"primary:{primary}", 0.0),
                (backup_arrival, 1, f"hedge:{backup}", trigger),
            ]
        )
        for arrival, _rank, source, _started in entries:
            self.ledger.offer(read_key, source, arrival, nbytes)
        win_arrival, _, win_source, _ = entries[0]
        _, _, _, loser_started = entries[1]
        wasted = max(win_arrival - loser_started, 0.0)
        self.wasted_seconds += wasted
        if win_source.startswith("hedge:"):
            self.hedges_won += 1
            self._count("hedged_wins_total", "hedged reads where the backup won")
        self._count("hedged_reads_total", "backup reads issued by the hedger")
        self._count(
            "hedged_wasted_seconds_total",
            "loser-side seconds burned by hedged read races",
            wasted,
        )
        return win_arrival
