"""NameNode: the cluster-wide dataset/block metadata catalog.

Tracks which datasets exist, which blocks compose them, each block's size,
and which DataNodes hold each block's replicas.  This is the information a
real NameNode serves to the JobTracker for locality-driven scheduling —
and, pointedly, it does *not* include sub-dataset distribution, which is
why DataNet's ElasticMap has to exist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import BlockNotFoundError, ConfigError, StorageError

__all__ = ["BlockMeta", "NameNode"]


@dataclass(frozen=True)
class BlockMeta:
    """Catalog entry for one block replica (or fragment-holder) set.

    For a replicated block, ``replicas`` lists interchangeable full-copy
    holders.  For an erasure-coded block (``coding = (k, m)``), the tuple
    is *positional*: ``replicas[i]`` holds fragment ``i`` of the stripe,
    and its length is exactly ``k + m``.
    """

    dataset: str
    block_id: int
    size_bytes: int
    replicas: Tuple[int, ...]
    coding: Optional[Tuple[int, int]] = None

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ConfigError("block size must be non-negative")
        if not self.replicas:
            raise ConfigError("a block needs at least one replica")
        if len(set(self.replicas)) != len(self.replicas):
            raise ConfigError("replicas must be distinct nodes")
        if self.coding is not None:
            k, m = self.coding
            if k < 1 or m < 1:
                raise ConfigError(f"coding needs k >= 1 and m >= 1, got ({k}, {m})")
            if len(self.replicas) != k + m:
                raise ConfigError(
                    f"coded block needs exactly k+m={k + m} fragment holders, "
                    f"got {len(self.replicas)}"
                )

    @property
    def is_coded(self) -> bool:
        return self.coding is not None


class NameNode:
    """In-memory metadata service: dataset → blocks → replica locations."""

    def __init__(self) -> None:
        self._datasets: Dict[str, List[int]] = {}
        self._blocks: Dict[Tuple[str, int], BlockMeta] = {}

    # -- registration -----------------------------------------------------------

    def register_block(
        self,
        dataset: str,
        block_id: int,
        size_bytes: int,
        replicas: Sequence[int],
        *,
        coding: Optional[Tuple[int, int]] = None,
    ) -> BlockMeta:
        """Catalog a new block of ``dataset``; ids must be unique per dataset.

        ``coding=(k, m)`` registers an erasure-coded block whose
        ``replicas`` are fragment holders in stripe-index order.
        """
        key = (dataset, block_id)
        if key in self._blocks:
            raise StorageError(f"block {block_id} of {dataset!r} already registered")
        meta = BlockMeta(dataset, block_id, size_bytes, tuple(replicas), coding)
        self._blocks[key] = meta
        self._datasets.setdefault(dataset, []).append(block_id)
        return meta

    def update_replicas(
        self, dataset: str, block_id: int, replicas: Sequence[int]
    ) -> BlockMeta:
        """Replace a block's replica set (re-replication after failures).

        The coding geometry is immutable; for a coded block the new tuple
        must keep one holder per fragment index.  Returns the new entry.
        """
        old = self.block_meta(dataset, block_id)
        new = BlockMeta(
            dataset, block_id, old.size_bytes, tuple(replicas), old.coding
        )
        self._blocks[(dataset, block_id)] = new
        return new

    # -- lookups -----------------------------------------------------------------

    @property
    def datasets(self) -> List[str]:
        """Names of all registered datasets."""
        return sorted(self._datasets)

    def has_dataset(self, dataset: str) -> bool:
        return dataset in self._datasets

    def blocks_of(self, dataset: str) -> List[int]:
        """Block ids of a dataset in registration (i.e. chronological) order."""
        try:
            return list(self._datasets[dataset])
        except KeyError:
            raise BlockNotFoundError(f"unknown dataset {dataset!r}") from None

    def block_meta(self, dataset: str, block_id: int) -> BlockMeta:
        """Catalog entry for one block."""
        try:
            return self._blocks[(dataset, block_id)]
        except KeyError:
            raise BlockNotFoundError(
                f"block {block_id} of dataset {dataset!r} not registered"
            ) from None

    def block_locations(self, dataset: str, block_id: int) -> Tuple[int, ...]:
        """Nodes holding replicas of one block (what the JobTracker asks for)."""
        return self.block_meta(dataset, block_id).replicas

    def placement(self, dataset: str) -> Dict[int, Tuple[int, ...]]:
        """Full block → replica-node mapping of a dataset."""
        return {
            bid: self.block_locations(dataset, bid) for bid in self.blocks_of(dataset)
        }

    def dataset_bytes(self, dataset: str) -> int:
        """Total logical (pre-replication) bytes of a dataset."""
        return sum(
            self.block_meta(dataset, bid).size_bytes for bid in self.blocks_of(dataset)
        )

    def blocks_on_node(self, node: int) -> List[Tuple[str, int]]:
        """Every ``(dataset, block_id)`` with a replica on ``node``."""
        return sorted(
            key for key, meta in self._blocks.items() if node in meta.replicas
        )
