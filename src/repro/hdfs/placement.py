"""Replica placement policies.

HDFS "randomly distribute[s]" block replicas (paper Section I); real
Hadoop adds a rack-aware twist.  Three policies are provided — the random
default used by the experiments, a deterministic round-robin (useful in
tests), and a rack-aware policy modeling stock HDFS (first replica on the
writer's node/rack, second on a different rack, third beside the second).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Sequence

import numpy as np

from ..errors import ConfigError, ReplicationError

__all__ = [
    "PlacementPolicy",
    "RandomPlacement",
    "RoundRobinPlacement",
    "RackAwarePlacement",
    "FragmentPlacement",
]


class PlacementPolicy(ABC):
    """Chooses which cluster nodes hold a block's replicas."""

    def __init__(self, replication: int = 3) -> None:
        if replication <= 0:
            raise ConfigError(f"replication must be positive, got {replication}")
        self.replication = replication

    def _effective_replication(self, nodes: Sequence[int]) -> int:
        """Replication clamped to the cluster size (HDFS does the same)."""
        if not nodes:
            raise ReplicationError("cannot place replicas on an empty cluster")
        return min(self.replication, len(nodes))

    @abstractmethod
    def place(self, block_id: int, nodes: Sequence[int]) -> List[int]:
        """Return the distinct nodes that will store ``block_id``'s replicas."""


class RandomPlacement(PlacementPolicy):
    """Uniformly random distinct nodes per block — the paper's HDFS model."""

    def __init__(self, replication: int = 3, *, rng: np.random.Generator | None = None) -> None:
        super().__init__(replication)
        self.rng = rng if rng is not None else np.random.default_rng()

    def place(self, block_id: int, nodes: Sequence[int]) -> List[int]:
        r = self._effective_replication(nodes)
        idx = self.rng.choice(len(nodes), size=r, replace=False)
        return [nodes[i] for i in idx]


class RoundRobinPlacement(PlacementPolicy):
    """Deterministic striping: block ``i`` on nodes ``i, i+1, ... (mod N)``.

    Gives every node the same block count — useful as a perfectly
    block-balanced control in tests and ablations.
    """

    def place(self, block_id: int, nodes: Sequence[int]) -> List[int]:
        r = self._effective_replication(nodes)
        n = len(nodes)
        return [nodes[(block_id + k) % n] for k in range(r)]


class FragmentPlacement(PlacementPolicy):
    """Rack-spreading placement for the k+m fragments of a coded stripe.

    Fragments are dealt round-robin across racks — consecutive stripe
    indices land on different racks — so losing an entire rack takes out
    at most ``ceil((k+m)/racks)`` fragments of any one stripe, the coded
    analogue of HDFS's "second replica off-rack" rule.  Both the starting
    rack and the in-rack cursor rotate with the block id, spreading load
    evenly, and the whole mapping is a pure function of
    ``(block_id, nodes)`` — no RNG — so placements replay bit-for-bit.

    The returned list is *positional*: entry ``i`` holds fragment ``i``.
    """

    def __init__(self, fragments: int, *, num_racks: int = 4) -> None:
        super().__init__(fragments)
        if num_racks <= 0:
            raise ConfigError(f"num_racks must be positive, got {num_racks}")
        self.num_racks = num_racks

    def rack_of(self, node: int, num_nodes: int) -> int:
        """Rack index of a node (nodes striped over racks)."""
        return node % min(self.num_racks, max(num_nodes, 1))

    def place(self, block_id: int, nodes: Sequence[int]) -> List[int]:
        r = self._effective_replication(nodes)
        n = len(nodes)
        if r < self.replication:
            raise ReplicationError(
                f"cannot place {self.replication} fragments on {n} nodes; "
                f"fragments of one stripe need distinct nodes"
            )
        racks: Dict[int, List[int]] = {}
        for node in sorted(nodes):
            racks.setdefault(self.rack_of(node, n), []).append(node)
        rack_ids = sorted(racks)
        cursors = {
            rk: (block_id // len(rack_ids)) % len(racks[rk]) for rk in rack_ids
        }
        chosen: List[int] = []
        taken = set()
        rk_pos = block_id % len(rack_ids)
        attempts = 0
        while len(chosen) < r:
            rk = rack_ids[rk_pos % len(rack_ids)]
            rk_pos += 1
            pool = racks[rk]
            picked = None
            for step in range(len(pool)):
                candidate = pool[(cursors[rk] + step) % len(pool)]
                if candidate not in taken:
                    picked = candidate
                    cursors[rk] = (cursors[rk] + step + 1) % len(pool)
                    break
            if picked is not None:
                chosen.append(picked)
                taken.add(picked)
                attempts = 0
            else:
                attempts += 1
                if attempts > len(rack_ids):  # pragma: no cover - r <= n guards this
                    raise ReplicationError(
                        f"exhausted nodes placing {r} fragments on {n} nodes"
                    )
        return chosen


class RackAwarePlacement(PlacementPolicy):
    """Stock HDFS policy on a cluster partitioned into racks.

    Replica 1 lands on a random node; replica 2 on a random node of a
    *different* rack; replica 3 on another node of replica 2's rack;
    further replicas land uniformly at random.  With a single rack this
    degrades to random placement.
    """

    def __init__(
        self,
        replication: int = 3,
        *,
        num_racks: int = 4,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(replication)
        if num_racks <= 0:
            raise ConfigError(f"num_racks must be positive, got {num_racks}")
        self.num_racks = num_racks
        self.rng = rng if rng is not None else np.random.default_rng()

    def rack_of(self, node: int, num_nodes: int) -> int:
        """Rack index of a node (nodes striped over racks)."""
        return node % min(self.num_racks, max(num_nodes, 1))

    def place(self, block_id: int, nodes: Sequence[int]) -> List[int]:
        r = self._effective_replication(nodes)
        n = len(nodes)
        racks: Dict[int, List[int]] = {}
        for node in nodes:
            racks.setdefault(self.rack_of(node, n), []).append(node)

        chosen: List[int] = []
        first = nodes[int(self.rng.integers(n))]
        chosen.append(first)
        if r >= 2:
            other_racks = [
                rk for rk in racks if rk != self.rack_of(first, n) and racks[rk]
            ]
            if other_racks:
                rk = other_racks[int(self.rng.integers(len(other_racks)))]
                pool = [x for x in racks[rk] if x not in chosen]
                chosen.append(pool[int(self.rng.integers(len(pool)))])
            else:  # single rack: fall back to any unused node
                pool = [x for x in nodes if x not in chosen]
                chosen.append(pool[int(self.rng.integers(len(pool)))])
        if r >= 3:
            rk = self.rack_of(chosen[1], n)
            pool = [x for x in racks.get(rk, []) if x not in chosen]
            if not pool:
                pool = [x for x in nodes if x not in chosen]
            chosen.append(pool[int(self.rng.integers(len(pool)))])
        while len(chosen) < r:
            pool = [x for x in nodes if x not in chosen]
            chosen.append(pool[int(self.rng.integers(len(pool)))])
        return chosen
