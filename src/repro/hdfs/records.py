"""Log-record data model.

The paper's datasets are "lists of records, each consisting of several
fields such as source/user id, log time, destination, etc.", and a
sub-dataset is every record sharing a key (movie id, event type, user).
:class:`Record` captures exactly that: a sub-dataset id, a timestamp, and
an opaque payload whose length drives the record's on-disk size.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigError

__all__ = ["Record"]

#: Fixed per-record framing overhead (separators, newline) in bytes.
RECORD_OVERHEAD = 2


@dataclass(frozen=True, slots=True)
class Record:
    """One immutable log record.

    Attributes:
        sub_id: the sub-dataset key this record belongs to (e.g. a movie
            id like ``"movie-00042"`` or an event type like
            ``"IssueEvent"``).
        timestamp: seconds since dataset epoch; datasets are stored in
            chronological order, which is what produces content clustering
            inside blocks.
        payload: the record body (review text, event JSON, ...).  Only its
            length matters to the storage layer.
    """

    sub_id: str
    timestamp: float
    payload: str = ""

    def __post_init__(self) -> None:
        if not self.sub_id:
            raise ConfigError("record sub_id must be non-empty")
        if self.timestamp < 0:
            raise ConfigError(f"negative timestamp: {self.timestamp}")

    @property
    def nbytes(self) -> int:
        """Serialized size in bytes (id + timestamp digits + payload + framing)."""
        return (
            len(self.sub_id.encode("utf-8"))
            + len(f"{self.timestamp:.3f}")
            + len(self.payload.encode("utf-8"))
            + RECORD_OVERHEAD
        )

    def serialize(self) -> str:
        """Tab-separated wire format, one record per line."""
        return f"{self.sub_id}\t{self.timestamp:.3f}\t{self.payload}"

    @classmethod
    def deserialize(cls, line: str) -> "Record":
        """Inverse of :meth:`serialize`.

        Raises:
            ConfigError: for a malformed line.
        """
        parts = line.rstrip("\n").split("\t", 2)
        if len(parts) != 3:
            raise ConfigError(f"malformed record line: {line!r}")
        sid, ts, payload = parts
        try:
            timestamp = float(ts)
        except ValueError:
            raise ConfigError(f"malformed record timestamp: {ts!r}") from None
        return cls(sub_id=sid, timestamp=timestamp, payload=payload)
