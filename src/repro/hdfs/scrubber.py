"""Replica scrubbing and checksum-verified reads.

HDFS pairs replication with two integrity mechanisms: the *read path*
re-checksums every block it serves (clients fail over to another replica on
a mismatch and report the bad copy), and a *background scrubber*
(``DataBlockScanner``) sweeps replicas on a cycle so rot on cold data is
found before the last good copy disappears.  This module models both.

:class:`Scrubber` sweeps a cluster's replicas, compares each copy's served
checksum against the logical block's truth, and repairs divergent copies
from a verified-good replica.  :class:`ReadVerifier` is the read-path
counterpart the MapReduce engine threads through selection tasks: local
reads of a rotten replica are detected and repaired in place (at remote
read + local write cost); remote reads fail over across replicas in catalog
order.  Both refuse to proceed — :class:`~repro.errors.IntegrityError` —
when *no* verified copy of a block remains, upholding the invariant that
corruption never reaches analysis output silently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Mapping, Optional, Tuple, Union

from ..errors import IntegrityError
from ..obs import NULL_OBS, Observability
from .cluster import HDFSCluster
from .coded import ReconstructionEvent
from .failure import FailureManager

__all__ = ["Scrubber", "ScrubReport", "RepairEvent", "ReadVerifier"]


@dataclass(frozen=True)
class RepairEvent:
    """One replica repair: a rotten copy overwritten from a good one."""

    dataset: str
    block_id: int
    source: int
    destination: int
    nbytes: int


@dataclass
class ScrubReport:
    """Outcome of one scrub pass (full sweep or incremental step).

    ``repaired`` counts replica copies *and* fragment rebuilds; the coded
    share is broken out in ``reconstructed``/``decode_bytes`` because its
    repair traffic has a different shape (k fragment reads per rebuild
    instead of one whole-block copy).
    """

    replicas_scanned: int = 0
    bytes_scanned: int = 0
    corrupt_found: int = 0
    repaired: int = 0
    repaired_bytes: int = 0
    reconstructed: int = 0
    decode_bytes: int = 0
    unrepairable: List[Tuple[str, int]] = field(default_factory=list)
    events: List[Union[RepairEvent, ReconstructionEvent]] = field(
        default_factory=list
    )

    @property
    def clean(self) -> bool:
        """Whether the pass found nothing wrong."""
        return self.corrupt_found == 0 and not self.unrepairable

    def merge(self, other: "ScrubReport") -> None:
        """Fold another pass's counters into this one (incremental sweeps)."""
        self.replicas_scanned += other.replicas_scanned
        self.bytes_scanned += other.bytes_scanned
        self.corrupt_found += other.corrupt_found
        self.repaired += other.repaired
        self.repaired_bytes += other.repaired_bytes
        self.reconstructed += other.reconstructed
        self.decode_bytes += other.decode_bytes
        self.unrepairable.extend(other.unrepairable)
        self.events.extend(other.events)


class Scrubber:
    """Background replica scrubber: detect divergent copies, repair them.

    Args:
        cluster: the cluster to sweep.
        failures: optional :class:`FailureManager`; when given, dead nodes'
            replicas are skipped (they are unreachable, and re-replication
            already handled them) and repair events are appended to the
            manager's event log so recovery accounting sees scrub traffic.
        strict: when True (default), a block whose *every* live replica is
            corrupt raises :class:`~repro.errors.IntegrityError`; when
            False it is reported in ``ScrubReport.unrepairable`` instead.
        health: optional node → health score in (0, 1] (the φ-accrual
            detector's view).  Repair sources prefer the *healthiest*
            verified holder, so a rebuild never reads from a known-slow
            node when a healthy peer has the same bytes; load and node id
            only break ties.
    """

    def __init__(
        self,
        cluster: HDFSCluster,
        *,
        failures: Optional[FailureManager] = None,
        strict: bool = True,
        health: Optional[Mapping[int, float]] = None,
        obs: Observability = NULL_OBS,
    ) -> None:
        self.cluster = cluster
        self.failures = failures
        self.strict = strict
        self.health = dict(health) if health is not None else None
        self.obs = obs
        self._cursor = 0

    def _health_of(self, node: int) -> float:
        if self.health is None:
            return 1.0
        return self.health.get(node, 1.0)

    # -- liveness -----------------------------------------------------------------

    def _is_alive(self, node: int) -> bool:
        return self.failures is None or self.failures.is_alive(node)

    # -- sweep enumeration --------------------------------------------------------

    def _replica_list(self, dataset: Optional[str]) -> List[Tuple[str, int, int]]:
        """Deterministic ``(dataset, block_id, node)`` sweep order."""
        namenode = self.cluster.namenode
        datasets = [dataset] if dataset is not None else namenode.datasets
        out: List[Tuple[str, int, int]] = []
        for ds in datasets:
            for bid in namenode.blocks_of(ds):
                for node in namenode.block_locations(ds, bid):
                    if self._is_alive(node):
                        out.append((ds, bid, node))
        return out

    # -- scrubbing ----------------------------------------------------------------

    def scrub(self, dataset: Optional[str] = None) -> ScrubReport:
        """Sweep every live replica (of one dataset, or the whole cluster).

        Each replica's served checksum is compared against the logical
        block's; divergent copies are repaired from the least-loaded
        verified-good live replica.

        Raises:
            IntegrityError: in strict mode, when a block has no verified
                copy left to repair from.
        """
        report = ScrubReport()
        with self.obs.tracer.span(
            f"scrub/{dataset if dataset is not None else 'cluster'}",
            category="scrub",
        ) as span:
            for ds, bid, node in self._replica_list(dataset):
                self._scrub_one(ds, bid, node, report)
            span.set(
                replicas=report.replicas_scanned,
                corrupt=report.corrupt_found,
                repaired=report.repaired,
            )
        self._record_metrics(report)
        return report

    def scrub_step(
        self, dataset: Optional[str] = None, *, max_replicas: int = 1
    ) -> ScrubReport:
        """Scrub the next ``max_replicas`` replicas of a cyclic sweep.

        Models the background scanner's incremental cycle inside a
        discrete-event simulation: each call advances a persistent cursor,
        wrapping around when the sweep completes, so repeated small steps
        eventually cover every replica without a stop-the-world pass.
        """
        replicas = self._replica_list(dataset)
        report = ScrubReport()
        if not replicas:
            return report
        with self.obs.tracer.span(
            f"scrub-step/{dataset if dataset is not None else 'cluster'}",
            category="scrub",
        ) as span:
            for _ in range(max(1, max_replicas)):
                ds, bid, node = replicas[self._cursor % len(replicas)]
                self._cursor = (self._cursor + 1) % len(replicas)
                self._scrub_one(ds, bid, node, report)
            span.set(
                replicas=report.replicas_scanned, corrupt=report.corrupt_found
            )
        self._record_metrics(report)
        return report

    def _record_metrics(self, report: ScrubReport) -> None:
        if not self.obs.metrics.enabled:
            return
        m = self.obs.metrics
        m.counter(
            "scrub_replicas_scanned_total", help="replicas swept by the scrubber"
        ).inc(report.replicas_scanned)
        m.counter(
            "scrub_bytes_scanned_total", help="bytes re-checksummed by the scrubber"
        ).inc(report.bytes_scanned)
        m.counter(
            "scrub_corrupt_found_total", help="divergent replicas detected"
        ).inc(report.corrupt_found)
        m.counter(
            "scrub_repaired_total", help="replicas repaired from a verified copy"
        ).inc(report.repaired)
        m.counter(
            "scrub_repaired_bytes_total", help="bytes rewritten by scrub repairs"
        ).inc(report.repaired_bytes)

    def _scrub_one(
        self, dataset: str, block_id: int, node: int, report: ScrubReport
    ) -> None:
        meta = self.cluster.namenode.block_meta(dataset, block_id)
        if meta.coding is not None:
            self._scrub_one_fragment(dataset, block_id, node, meta, report)
            return
        datanode = self.cluster.datanodes[node]
        block = self.cluster.get_block(dataset, block_id)
        report.replicas_scanned += 1
        report.bytes_scanned += block.used_bytes
        if datanode.verify_replica(dataset, block_id):
            return
        report.corrupt_found += 1
        source = self._good_source(dataset, block_id, exclude=node)
        if source is None:
            if self.strict:
                raise IntegrityError(
                    f"block {block_id} of {dataset!r}: every live replica is "
                    f"corrupt; cannot repair node {node}"
                )
            report.unrepairable.append((dataset, block_id))
            return
        datanode.repair_replica(dataset, block_id)
        report.repaired += 1
        report.repaired_bytes += block.used_bytes
        report.events.append(
            RepairEvent(
                dataset=dataset,
                block_id=block_id,
                source=source,
                destination=node,
                nbytes=block.used_bytes,
            )
        )

    def _scrub_one_fragment(
        self, dataset: str, block_id: int, node: int, meta, report: ScrubReport
    ) -> None:
        """Sweep one fragment; rebuild a rotten one from k verified peers.

        The repair is a parity *reconstruction*, not a copy: k healthy
        fragments are read (``decode_bytes`` of traffic), the missing
        shard is recomputed through the generator matrix, and only the
        rebuilt ``fragment_nbytes`` are rewritten.
        """
        datanode = self.cluster.datanodes[node]
        coded = self.cluster.coded_block(dataset, block_id)
        report.replicas_scanned += 1
        report.bytes_scanned += coded.fragment_nbytes
        if datanode.verify_fragment(dataset, block_id):
            return
        report.corrupt_found += 1
        k = meta.coding[0]
        sources = self._good_fragment_sources(dataset, block_id, meta, exclude=node)
        if len(sources) < k:
            if self.strict:
                raise IntegrityError(
                    f"block {block_id} of {dataset!r}: only {len(sources)} "
                    f"verified fragments remain, {k} needed to rebuild node "
                    f"{node}"
                )
            report.unrepairable.append((dataset, block_id))
            return
        chosen = sources[:k]
        # run the actual decode so the scrubber can never claim a repair
        # parity could not really perform
        coded.reconstruct_payload([i for i, _n in chosen])
        datanode.repair_fragment(dataset, block_id)
        report.repaired += 1
        report.repaired_bytes += coded.fragment_nbytes
        report.reconstructed += 1
        report.decode_bytes += coded.decode_read_bytes
        report.events.append(
            ReconstructionEvent(
                dataset=dataset,
                block_id=block_id,
                index=datanode.fragment_index(dataset, block_id),
                sources=tuple(n for _i, n in chosen),
                destination=node,
                nbytes=coded.fragment_nbytes,
                decode_bytes=coded.decode_read_bytes,
            )
        )

    def _good_fragment_sources(
        self, dataset: str, block_id: int, meta, *, exclude: int
    ) -> List[Tuple[int, int]]:
        """Verified live fragment holders, healthiest first.

        Returns ``(fragment_index, node)`` pairs ranked by descending
        health, then load, then node id — the same policy as
        :meth:`_good_source`, applied per fragment.
        """
        candidates = [
            (index, holder)
            for index, holder in enumerate(meta.replicas)
            if holder != exclude
            and self._is_alive(holder)
            and self.cluster.datanodes[holder].verify_fragment(dataset, block_id)
        ]
        return sorted(
            candidates,
            key=lambda pair: (
                -self._health_of(pair[1]),
                self.cluster.datanodes[pair[1]].used_bytes(),
                pair[1],
            ),
        )

    def _good_source(
        self, dataset: str, block_id: int, *, exclude: int
    ) -> Optional[int]:
        """Healthiest verified live replica holder (load breaks ties)."""
        candidates = [
            n
            for n in self.cluster.namenode.block_locations(dataset, block_id)
            if n != exclude
            and self._is_alive(n)
            and self.cluster.datanodes[n].verify_replica(dataset, block_id)
        ]
        if not candidates:
            return None
        return min(
            candidates,
            key=lambda n: (
                -self._health_of(n),
                self.cluster.datanodes[n].used_bytes(),
                n,
            ),
        )


class ReadVerifier:
    """Read-path checksum verification for selection tasks.

    The engine asks :meth:`read_cost` for the read-time component of a task
    instead of choosing ``read_local``/``read_remote`` itself.  With no
    corruption present the returned cost is identical to the unverified
    path, so threading a verifier through a fault-free run changes nothing.

    Counters accumulate across tasks; the chaos runner folds them into its
    :class:`~repro.metrics.integrity.IntegritySummary`.  Detections can
    exceed injections (a rotten remote replica may be noticed by a read and
    again by the scrubber before it is repaired); repairs are one-to-one.
    """

    def __init__(
        self, cluster: HDFSCluster, *, obs: Observability = NULL_OBS
    ) -> None:
        self.cluster = cluster
        self.obs = obs
        self.detected = 0
        self.repaired = 0
        self.repaired_bytes = 0
        self.events: List[RepairEvent] = []

    def _count(self, name: str, help: str, amount: float = 1.0) -> None:
        if self.obs.metrics.enabled:
            self.obs.metrics.counter(name, help=help).inc(amount)

    def read_cost(
        self,
        dataset: str,
        block_id: int,
        node: int,
        replicas: Tuple[int, ...],
        nbytes: int,
        read_local: Callable[[int], float],
        read_remote: Callable[[int], float],
        write_local: Callable[[int], float],
    ) -> float:
        """Seconds spent reading ``block_id`` from ``node``, verified.

        A local rotten replica is detected, refetched from a verified peer
        and repaired in place (remote read + local write, then served); a
        remote read fails over across the catalog's replica order to the
        first verified copy.

        Raises:
            IntegrityError: when no replica of the block verifies.
        """
        datanodes = self.cluster.datanodes
        if node in replicas:
            if datanodes[node].verify_replica(dataset, block_id):
                return read_local(nbytes)
            self.detected += 1
            self._count(
                "read_verify_detected_total", "rotten replicas caught by reads"
            )
            source = self._good_peer(dataset, block_id, replicas, exclude=node)
            if source is None:
                raise IntegrityError(
                    f"block {block_id} of {dataset!r}: local replica on node "
                    f"{node} is corrupt and no verified peer remains"
                )
            datanodes[node].repair_replica(dataset, block_id)
            self.repaired += 1
            self.repaired_bytes += nbytes
            self._count(
                "read_verify_repaired_total", "replicas repaired in place by reads"
            )
            self._count(
                "read_verify_repaired_bytes_total",
                "bytes rewritten by read-path repairs",
                nbytes,
            )
            self.events.append(
                RepairEvent(
                    dataset=dataset,
                    block_id=block_id,
                    source=source,
                    destination=node,
                    nbytes=nbytes,
                )
            )
            return read_remote(nbytes) + write_local(nbytes)
        for replica in replicas:
            if datanodes[replica].verify_replica(dataset, block_id):
                return read_remote(nbytes)
            self.detected += 1
            self._count(
                "read_verify_detected_total", "rotten replicas caught by reads"
            )
        raise IntegrityError(
            f"block {block_id} of {dataset!r}: no verified replica remains"
        )

    def _good_peer(
        self,
        dataset: str,
        block_id: int,
        replicas: Tuple[int, ...],
        *,
        exclude: int,
    ) -> Optional[int]:
        for replica in replicas:
            if replica == exclude:
                continue
            if self.cluster.datanodes[replica].verify_replica(dataset, block_id):
                return replica
        return None
