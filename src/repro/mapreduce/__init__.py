"""Discrete-event MapReduce engine.

The execution substrate standing in for the paper's Hadoop deployment.
Map/reduce functions *really execute* over stored records (outputs are
checkable), while per-node wall time advances on simulated clocks driven
by an explicit cost model — the standard way to study scheduling effects
without a 128-node testbed.

Modules:

- :mod:`repro.mapreduce.costmodel` — disk/network/CPU cost parameters and
  per-application profiles.
- :mod:`repro.mapreduce.job` — job definition (mapper/combiner/reducer).
- :mod:`repro.mapreduce.scheduler` — the *default Hadoop* block-locality
  scheduler (the paper's "without DataNet" baseline).
- :mod:`repro.mapreduce.shuffle` — the straggler-dominated shuffle model.
- :mod:`repro.mapreduce.engine` — phase execution: selection (filter map
  over blocks) and analysis (map/shuffle/reduce over filtered data).
- :mod:`repro.mapreduce.apps` — the paper's four analysis applications
  plus extras.
"""

from .costmodel import AppProfile, ClusterCostModel, PROFILES
from .job import MapReduceJob
from .scheduler import LocalityScheduler
from .shuffle import ShuffleModel, ShuffleResult
from .speculative import SpeculativeExecutor, SpeculationResult
from .engine import (
    MapReduceEngine,
    PhaseResult,
    JobResult,
    SelectionResult,
)
from .checkpoint import WaveCheckpoint

__all__ = [
    "WaveCheckpoint",
    "AppProfile",
    "ClusterCostModel",
    "PROFILES",
    "MapReduceJob",
    "LocalityScheduler",
    "ShuffleModel",
    "ShuffleResult",
    "MapReduceEngine",
    "PhaseResult",
    "JobResult",
    "SelectionResult",
    "SpeculativeExecutor",
    "SpeculationResult",
]
