"""The paper's analysis applications (Section V-A) as MapReduce jobs.

- :func:`moving_average_job` — trend analysis over time windows; iterate-
  only, the lightest compute of the four.
- :func:`word_count_job` — the canonical MapReduce benchmark.
- :func:`histogram_job` — Aggregate Word Histogram, the framework's
  aggregation plug-in.
- :func:`top_k_search_job` — find the K records most similar to a query
  sequence; compute-heavy (per-record similarity).
- :func:`grep_job` — extra: pattern-match counting.
- :func:`distinct_words_job` — extra: HyperLogLog distinct-token count.
- :func:`sessionization_job` — extra: the intro's click-stream session
  analysis.
- :func:`inverted_index_job` — extra: shuffle-heavy index construction.

Each factory returns a :class:`~repro.mapreduce.job.MapReduceJob` wired to
its cost profile from :data:`repro.mapreduce.costmodel.PROFILES`.
"""

from .moving_average import moving_average_job, parse_rating
from .word_count import word_count_job, tokenize
from .histogram import histogram_job
from .top_k_search import top_k_search_job, jaccard_similarity
from .grep import grep_job
from .distinct_words import distinct_words_job
from .sessionization import sessionization_job
from .inverted_index import inverted_index_job

__all__ = [
    "moving_average_job",
    "parse_rating",
    "word_count_job",
    "tokenize",
    "histogram_job",
    "top_k_search_job",
    "jaccard_similarity",
    "grep_job",
    "distinct_words_job",
    "sessionization_job",
    "inverted_index_job",
]

#: The four applications of the paper's Fig. 5a, in its presentation order.
PAPER_APPS = (
    "moving_average",
    "word_count",
    "histogram",
    "top_k_search",
)
