"""Distinct Words: approximate distinct-token count via HyperLogLog.

The aggregation-shaped counterpart of WordCount: instead of shuffling a
(word → count) table, each mapper folds its words into a HyperLogLog
sketch, the combiner merges sketches per node, and the reducer merges the
per-node sketches — a few KiB over the network regardless of vocabulary
size.  A showcase for sketch-based analyses on top of the engine.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from ...core.hyperloglog import HyperLogLog
from ...errors import ConfigError
from ...hdfs.records import Record
from ..costmodel import AppProfile
from ..job import MapReduceJob
from .word_count import tokenize

__all__ = ["distinct_words_job"]

_KEY = "distinct"

#: Sketch folding costs about as much per byte as tokenising does.
_PROFILE = AppProfile(
    name="distinct_words",
    cpu_cost_per_byte=9e-8,
    cpu_cost_per_record=2e-7,
    shuffle_selectivity=0.001,  # a fixed-size sketch leaves each mapper
    reduce_cost_per_byte=1e-8,
)


def distinct_words_job(*, precision: int = 12, num_reducers: int = 1) -> MapReduceJob:
    """Build the Distinct Words job.

    Output: ``{"distinct": estimated_count}`` (float, HLL estimate;
    relative error ≈ ``1.04 / sqrt(2**precision)``).
    """
    if not (4 <= precision <= 18):
        raise ConfigError(f"precision must be in [4, 18], got {precision}")

    def mapper(record: Record) -> Iterator[Tuple[str, HyperLogLog]]:
        sketch = HyperLogLog(precision)
        sketch.update(tokenize(record.payload))
        yield _KEY, sketch

    def _merge(values: List[HyperLogLog]) -> HyperLogLog:
        merged = HyperLogLog(precision)
        for sketch in values:
            merged = merged.merge(sketch)
        return merged

    def combiner(key: str, values: List[HyperLogLog]) -> Iterator[Tuple[str, HyperLogLog]]:
        yield key, _merge(values)

    def reducer(key: str, values: List[HyperLogLog]) -> Iterator[Tuple[str, float]]:
        yield key, _merge(values).estimate()

    return MapReduceJob(
        name="distinct_words",
        mapper=mapper,
        combiner=combiner,
        reducer=reducer,
        profile=_PROFILE,
        num_reducers=num_reducers,
    )
