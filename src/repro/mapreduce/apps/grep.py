"""Grep: count records whose payload matches a pattern.

Not one of the paper's four evaluated applications, but the classic
scan-only MapReduce example — useful as an even lighter-weight control
point in the ablation benches (its gain should sit at or below
MovingAverage's).
"""

from __future__ import annotations

import re
from typing import Iterator, List, Tuple

from ...errors import ConfigError
from ...hdfs.records import Record
from ..costmodel import PROFILES
from ..job import MapReduceJob

__all__ = ["grep_job"]


def grep_job(pattern: str, *, num_reducers: int = 1) -> MapReduceJob:
    """Build a grep job.  Output: ``{pattern: match_count}``.

    Raises:
        ConfigError: for an invalid regular expression.
    """
    try:
        compiled = re.compile(pattern)
    except re.error as exc:
        raise ConfigError(f"invalid grep pattern {pattern!r}: {exc}") from exc

    def mapper(record: Record) -> Iterator[Tuple[str, int]]:
        if compiled.search(record.payload):
            yield pattern, 1

    def combiner(key: str, values: List[int]) -> Iterator[Tuple[str, int]]:
        yield key, sum(values)

    def reducer(key: str, values: List[int]) -> Iterator[Tuple[str, int]]:
        yield key, sum(values)

    return MapReduceJob(
        name="grep",
        mapper=mapper,
        combiner=combiner,
        reducer=reducer,
        profile=PROFILES["grep"],
        num_reducers=num_reducers,
    )
