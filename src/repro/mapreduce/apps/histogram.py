"""Aggregate Word Histogram: "computing the histogram of the words in the
input sub-dataset ... a fundamental plug-in operation in the MapReduce
framework" (the Hadoop ``AggregateWordHistogram`` example).

Implemented as a value-histogram aggregation over word lengths: mapper
emits one observation per word, the reducer folds them into histogram
statistics (count / min / max / mean per bucket), mirroring Hadoop's
``ValueHistogram`` aggregator output.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from ...hdfs.records import Record
from ..costmodel import PROFILES
from ..job import MapReduceJob
from .word_count import tokenize

__all__ = ["histogram_job"]


def histogram_job(*, num_reducers: int = 4) -> MapReduceJob:
    """Build the Aggregate Word Histogram job.

    Output: ``{word_length: (count, min_len, max_len, mean_len)}`` — the
    per-bucket statistics a ``ValueHistogram`` aggregator reports.
    """

    def mapper(record: Record) -> Iterator[Tuple[int, int]]:
        for word in tokenize(record.payload):
            yield len(word), len(word)

    def combiner(key: int, values: List[int]) -> Iterator[Tuple[int, Tuple]]:
        count = 0
        vmin = None
        vmax = None
        total = 0
        for v in values:
            if isinstance(v, tuple):
                c, mn, mx, s = v
                count += c
                total += s
                vmin = mn if vmin is None else min(vmin, mn)
                vmax = mx if vmax is None else max(vmax, mx)
            else:
                count += 1
                total += v
                vmin = v if vmin is None else min(vmin, v)
                vmax = v if vmax is None else max(vmax, v)
        yield key, (count, vmin, vmax, total)

    def reducer(key: int, values: List) -> Iterator[Tuple[int, Tuple]]:
        count = 0
        vmin = None
        vmax = None
        total = 0
        for v in values:
            if isinstance(v, tuple):
                c, mn, mx, s = v
                count += c
                total += s
                vmin = mn if vmin is None else min(vmin, mn)
                vmax = mx if vmax is None else max(vmax, mx)
            else:
                count += 1
                total += v
                vmin = v if vmin is None else min(vmin, v)
                vmax = v if vmax is None else max(vmax, v)
        mean = total / count if count else 0.0
        yield key, (count, vmin, vmax, mean)

    return MapReduceJob(
        name="histogram",
        mapper=mapper,
        combiner=combiner,
        reducer=reducer,
        profile=PROFILES["histogram"],
        num_reducers=num_reducers,
    )
