"""Inverted Index: word → posting list of record tags.

The other classic MapReduce workload (after WordCount): build a search
index over a sub-dataset's text.  Heavy on shuffle volume — postings are
much bigger than counts — so it is the stress case for the shuffle model
and for aggregation-aware reducer placement.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from ...errors import ConfigError
from ...hdfs.records import Record
from ..costmodel import AppProfile
from ..job import MapReduceJob
from .word_count import tokenize

__all__ = ["inverted_index_job"]

_PROFILE = AppProfile(
    name="inverted_index",
    cpu_cost_per_byte=1.2e-7,
    cpu_cost_per_record=3e-7,
    shuffle_selectivity=0.9,  # postings nearly the size of the input
    reduce_cost_per_byte=4e-8,
)


def inverted_index_job(
    *, max_postings_per_word: int = 50, num_reducers: int = 8
) -> MapReduceJob:
    """Build the inverted-index job.

    Args:
        max_postings_per_word: cap per word (real indexes truncate hot
            words' posting lists; also keeps output sizes sane).
        num_reducers: reduce-task count.

    Output: ``{word: [record_tag, ...]}`` with tags ``"sub_id@timestamp"``
    sorted ascending, at most ``max_postings_per_word`` each.
    """
    if max_postings_per_word <= 0:
        raise ConfigError("max_postings_per_word must be positive")

    def mapper(record: Record) -> Iterator[Tuple[str, str]]:
        tag = f"{record.sub_id}@{record.timestamp:.3f}"
        for word in set(tokenize(record.payload)):
            yield word, tag

    def combiner(key: str, values: List) -> Iterator[Tuple[str, List[str]]]:
        flat: List[str] = []
        for v in values:
            if isinstance(v, list):
                flat.extend(v)
            else:
                flat.append(v)
        yield key, sorted(set(flat))[:max_postings_per_word]

    def reducer(key: str, values: List) -> Iterator[Tuple[str, List[str]]]:
        flat: List[str] = []
        for v in values:
            if isinstance(v, list):
                flat.extend(v)
            else:
                flat.append(v)
        yield key, sorted(set(flat))[:max_postings_per_word]

    return MapReduceJob(
        name="inverted_index",
        mapper=mapper,
        combiner=combiner,
        reducer=reducer,
        profile=_PROFILE,
        num_reducers=num_reducers,
    )
