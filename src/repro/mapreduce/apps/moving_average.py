"""Moving Average: windowed rating averages over a sub-dataset.

Paper: "analyzing data points by creating a series of averages over
intervals of the full dataset ... can smooth out short-term fluctuations
to highlight longer-term cycles."  Mapper buckets each record into a time
window and emits its rating; the reducer averages per window.  Compute is
a single float parse per record — the lightest of the four applications,
which is why it benefits least from DataNet (Fig. 5a: ~20 %).
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from ...errors import ConfigError
from ...hdfs.records import Record
from ..costmodel import PROFILES
from ..job import MapReduceJob

__all__ = ["moving_average_job", "parse_rating"]


def parse_rating(payload: str) -> float:
    """Extract the leading numeric rating from a review payload.

    MovieLens-style payloads are ``"<rating> <review text>"``; payloads
    without a leading float rate as 0.0 (unrated).
    """
    head = payload.split(" ", 1)[0] if payload else ""
    try:
        return float(head)
    except ValueError:
        return 0.0


def moving_average_job(
    window_days: float = 7.0, *, num_reducers: int = 4
) -> MapReduceJob:
    """Build the Moving Average job.

    Args:
        window_days: averaging window width, in dataset time units.
        num_reducers: reduce-task count.

    Output: ``{window_index: (mean_rating, count)}``.
    """
    if window_days <= 0:
        raise ConfigError("window_days must be positive")

    def mapper(record: Record) -> Iterator[Tuple[int, float]]:
        window = int(record.timestamp // window_days)
        yield window, parse_rating(record.payload)

    def combiner(key: int, values: List[float]) -> Iterator[Tuple[int, Tuple[float, int]]]:
        # pre-aggregate to (sum, count) so the shuffle carries two numbers
        flat_sum = 0.0
        count = 0
        for v in values:
            if isinstance(v, tuple):  # already combined
                flat_sum += v[0]
                count += v[1]
            else:
                flat_sum += v
                count += 1
        yield key, (flat_sum, count)

    def reducer(key: int, values: List) -> Iterator[Tuple[int, Tuple[float, int]]]:
        total = 0.0
        count = 0
        for v in values:
            if isinstance(v, tuple):
                total += v[0]
                count += v[1]
            else:
                total += v
                count += 1
        yield key, ((total / count if count else 0.0), count)

    return MapReduceJob(
        name="moving_average",
        mapper=mapper,
        combiner=combiner,
        reducer=reducer,
        profile=PROFILES["moving_average"],
        num_reducers=num_reducers,
    )
