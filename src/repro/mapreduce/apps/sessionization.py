"""Sessionization: split a sub-dataset's records into activity sessions.

The paper's introduction motivates sub-dataset analysis with exactly this
workload: "the analysis on the webpage click streams needs to perform user
sessionization analysis".  A session is a maximal run of records whose
consecutive gaps stay below a timeout.

Map side emits ``(sub_id, timestamp)``; the reducer sorts one key's
timestamps and counts sessions plus their length statistics.  (One key per
sub-dataset makes this reduce-heavy — which is why balanced *map-side*
filtering still matters: the map phase dominates the paper's pipelines.)
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from ...errors import ConfigError
from ...hdfs.records import Record
from ..costmodel import AppProfile
from ..job import MapReduceJob

__all__ = ["sessionization_job"]

_PROFILE = AppProfile(
    name="sessionization",
    cpu_cost_per_byte=3e-8,
    cpu_cost_per_record=3e-7,
    shuffle_selectivity=0.15,  # timestamps travel, payloads do not
    reduce_cost_per_byte=5e-8,
)


def sessionization_job(
    gap_timeout: float = 1.0, *, num_reducers: int = 4
) -> MapReduceJob:
    """Build the sessionization job.

    Args:
        gap_timeout: maximum gap (dataset time units) inside one session.
        num_reducers: reduce-task count.

    Output per sub-dataset id:
    ``{sub_id: (num_sessions, mean_session_records, max_session_records)}``.
    """
    if gap_timeout <= 0:
        raise ConfigError("gap_timeout must be positive")

    def mapper(record: Record) -> Iterator[Tuple[str, float]]:
        yield record.sub_id, record.timestamp

    def reducer(key: str, values: List[float]) -> Iterator[Tuple[str, Tuple]]:
        times = sorted(values)
        sessions: List[int] = []
        current = 1
        for prev, cur in zip(times, times[1:]):
            if cur - prev <= gap_timeout:
                current += 1
            else:
                sessions.append(current)
                current = 1
        sessions.append(current)
        mean_len = sum(sessions) / len(sessions)
        yield key, (len(sessions), mean_len, max(sessions))

    return MapReduceJob(
        name="sessionization",
        mapper=mapper,
        reducer=reducer,
        profile=_PROFILE,
        num_reducers=num_reducers,
    )
