"""Top K Search: "finding K sequences with the most similarity to a given
sequence.  This algorithm needs heavy computation due to the similarity
comparison between sequences."

Mapper scores every record's payload against the query (token Jaccard),
keeping only its local top K via the combiner; the reducer merges local
winners into the global top K.  The per-record similarity pass makes this
the compute-heaviest application, hence the largest DataNet gain
(Fig. 5a: 42 %).
"""

from __future__ import annotations

import heapq
from typing import Iterator, List, Tuple

from ...errors import ConfigError
from ...hdfs.records import Record
from ..costmodel import PROFILES
from ..job import MapReduceJob
from .word_count import tokenize

__all__ = ["top_k_search_job", "jaccard_similarity"]

#: Single intermediate key: every candidate competes in one global ranking.
_TOPK_KEY = "topk"


def jaccard_similarity(a: frozenset, b: frozenset) -> float:
    """Jaccard similarity of two token sets (0.0 for two empty sets)."""
    if not a and not b:
        return 0.0
    union = len(a | b)
    return len(a & b) / union if union else 0.0


def top_k_search_job(
    query: str, k: int = 10, *, num_reducers: int = 1
) -> MapReduceJob:
    """Build the Top K Search job.

    Args:
        query: the reference sequence records are scored against.
        k: result count.
        num_reducers: 1 suffices (single global ranking key), kept
            configurable for engine tests.

    Output: ``{"topk": [(similarity, record_tag), ...]}`` sorted
    descending, length ≤ k.
    """
    if k <= 0:
        raise ConfigError("k must be positive")
    query_tokens = frozenset(tokenize(query))

    def mapper(record: Record) -> Iterator[Tuple[str, Tuple[float, str]]]:
        tokens = frozenset(tokenize(record.payload))
        sim = jaccard_similarity(query_tokens, tokens)
        tag = f"{record.sub_id}@{record.timestamp:.3f}"
        yield _TOPK_KEY, (sim, tag)

    def _top_k(values: List[Tuple[float, str]]) -> List[Tuple[float, str]]:
        flat: List[Tuple[float, str]] = []
        for v in values:
            if isinstance(v, list):  # already a combined top-k list
                flat.extend(v)
            else:
                flat.append(v)
        return heapq.nlargest(k, flat)

    def combiner(key: str, values: List) -> Iterator[Tuple[str, List]]:
        yield key, _top_k(values)

    def reducer(key: str, values: List) -> Iterator[Tuple[str, List]]:
        yield key, _top_k(values)

    return MapReduceJob(
        name="top_k_search",
        mapper=mapper,
        combiner=combiner,
        reducer=reducer,
        profile=PROFILES["top_k_search"],
        num_reducers=num_reducers,
    )
