"""Word Count: "reading the sub-dataset and counting how often words occur"
— the paper's representative MapReduce benchmark.

The need to tokenize and combine words gives it a visibly larger compute
weight than MovingAverage (Fig. 6b/c: the min-max map-time gap is much
wider), so DataNet's balance pays off more (Fig. 5a: 39.1 %).
"""

from __future__ import annotations

import re
from typing import Iterator, List, Tuple

from ...hdfs.records import Record
from ..costmodel import PROFILES
from ..job import MapReduceJob

__all__ = ["word_count_job", "tokenize"]

_WORD_RE = re.compile(r"[a-zA-Z][a-zA-Z0-9]*")


def tokenize(text: str) -> List[str]:
    """Lower-cased word tokens of a payload (numeric rating prefix drops out)."""
    return [w.lower() for w in _WORD_RE.findall(text)]


def word_count_job(*, num_reducers: int = 4) -> MapReduceJob:
    """Build the Word Count job.  Output: ``{word: count}``."""

    def mapper(record: Record) -> Iterator[Tuple[str, int]]:
        for word in tokenize(record.payload):
            yield word, 1

    def combiner(key: str, values: List[int]) -> Iterator[Tuple[str, int]]:
        yield key, sum(values)

    def reducer(key: str, values: List[int]) -> Iterator[Tuple[str, int]]:
        yield key, sum(values)

    return MapReduceJob(
        name="word_count",
        mapper=mapper,
        combiner=combiner,
        reducer=reducer,
        profile=PROFILES["word_count"],
        num_reducers=num_reducers,
    )
