"""Wave-granularity checkpoint/resume for the selection phase.

Hadoop drivers die too: an ApplicationMaster restart should not rerun a
half-finished job from scratch.  This module adds that robustness to the
engine's selection phase.  Tasks execute in *waves* — wave ``w`` is the
``w``-th block in each node's assigned queue, all nodes advancing in
lockstep — and after every completed wave the driver persists a
:class:`WaveCheckpoint` (a self-contained, serializable snapshot of
completed outputs, per-node clocks and read counters).  A driver restart
(:class:`repro.faults.plan.DriverRestart`) loses only the wave in flight;
the resumed run replays it and continues, producing output byte-identical
to an uninterrupted run — task results depend only on block content, and
transient-fault retry decisions hash ``(seed, task, attempt, node)``, so a
replayed wave draws exactly the coins the uninterrupted run would have.
Only *time* differs, and the lost work is reported, not hidden.

Single-slot (``map_slots=1``) semantics: waves impose a per-node execution
order that multi-lane nodes would reorder.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Hashable, List, Optional, Tuple

from ..errors import ConfigError, JobError
from ..hdfs.records import Record

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from ..core.scheduler import Assignment
    from ..faults.injector import FaultInjector
    from ..faults.plan import DriverRestart
    from ..faults.retry import AttemptLog, NodeBlacklist, RetryPolicy
    from ..hdfs.cluster import DatasetView
    from ..hdfs.scrubber import ReadVerifier
    from .costmodel import AppProfile
    from .engine import MapReduceEngine, SelectionResult

__all__ = ["WaveCheckpoint", "run_selection_checkpointed"]

NodeId = Hashable


@dataclass
class WaveCheckpoint:
    """Durable snapshot of a selection run after its last completed wave.

    Attributes:
        dataset: dataset name the run reads.
        sub_id: target sub-dataset.
        wave: number of fully completed waves (resume starts here).
        queues: node → assigned block ids, in execution order (pins the
            plan so a resume against a different assignment is rejected).
        outputs: node → block id → filtered records, for completed tasks.
        clocks: per-node elapsed simulated seconds (includes lost work and
            restart delays, so resume overhead surfaces in the makespan).
        blocks_read: completed-task read counter.
        bytes_read: completed-task byte counter.
        restarts: how many driver restarts this run has survived.

    Node ids must be JSON-representable (ints or strings) for
    :meth:`to_bytes`; that covers every cluster this repo builds.
    """

    dataset: str
    sub_id: str
    queues: Dict[NodeId, List[int]]
    outputs: Dict[NodeId, Dict[int, List[Record]]]
    clocks: Dict[NodeId, float]
    wave: int = 0
    blocks_read: int = 0
    bytes_read: int = 0
    restarts: int = 0

    # -- resume validation -------------------------------------------------------

    def validate_against(
        self, dataset: str, sub_id: str, queues: Dict[NodeId, List[int]]
    ) -> None:
        """Refuse to resume under a different job or assignment.

        Raises:
            JobError: on any mismatch — resuming someone else's checkpoint
                would silently mix outputs from two different plans.
        """
        if self.dataset != dataset or self.sub_id != sub_id:
            raise JobError(
                f"checkpoint is for ({self.dataset!r}, {self.sub_id!r}), "
                f"not ({dataset!r}, {sub_id!r})"
            )
        if self.queues != queues:
            raise JobError("checkpoint assignment does not match the given one")

    # -- serialization -----------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize for durable storage (what survives a driver death)."""
        ordered = sorted(self.queues, key=repr)
        payload = {
            "dataset": self.dataset,
            "sub_id": self.sub_id,
            "wave": self.wave,
            "blocks_read": self.blocks_read,
            "bytes_read": self.bytes_read,
            "restarts": self.restarts,
            "queues": [[node, self.queues[node]] for node in ordered],
            "clocks": [[node, self.clocks[node]] for node in ordered],
            "outputs": [
                [
                    node,
                    [
                        [bid, [r.serialize() for r in recs]]
                        for bid, recs in sorted(self.outputs[node].items())
                    ],
                ]
                for node in ordered
            ],
        }
        return json.dumps(payload, separators=(",", ":")).encode("utf-8")

    @classmethod
    def from_bytes(cls, blob: bytes) -> "WaveCheckpoint":
        """Inverse of :meth:`to_bytes`.

        Raises:
            JobError: for a corrupt or truncated checkpoint blob.
        """
        try:
            payload = json.loads(blob.decode("utf-8"))
            return cls(
                dataset=payload["dataset"],
                sub_id=payload["sub_id"],
                wave=payload["wave"],
                blocks_read=payload["blocks_read"],
                bytes_read=payload["bytes_read"],
                restarts=payload["restarts"],
                queues={node: list(bids) for node, bids in payload["queues"]},
                clocks={node: float(c) for node, c in payload["clocks"]},
                outputs={
                    node: {
                        bid: [Record.deserialize(line) for line in lines]
                        for bid, lines in entries
                    }
                    for node, entries in payload["outputs"]
                },
            )
        except (ValueError, KeyError, TypeError, UnicodeDecodeError) as exc:
            raise JobError(f"corrupt wave checkpoint: {exc}") from exc


def run_selection_checkpointed(
    engine: "MapReduceEngine",
    dataset: "DatasetView",
    sub_id: str,
    assignment: "Assignment",
    profile: "AppProfile",
    *,
    checkpoint: Optional[WaveCheckpoint] = None,
    interrupt: Optional["DriverRestart"] = None,
    injector: Optional["FaultInjector"] = None,
    retry: Optional["RetryPolicy"] = None,
    attempt_log: Optional["AttemptLog"] = None,
    blacklist: Optional["NodeBlacklist"] = None,
    verify: Optional["ReadVerifier"] = None,
) -> Tuple[Optional["SelectionResult"], WaveCheckpoint, float]:
    """Run (or resume) the selection phase wave by wave.

    Returns ``(selection, checkpoint, wasted_seconds)``.  ``selection`` is
    ``None`` when ``interrupt`` fired: the driver died during
    ``interrupt.wave``, the returned checkpoint holds everything completed
    before it, and ``wasted_seconds`` is the in-flight work lost (charged
    to the affected nodes' clocks, estimated from the fault-free task cost
    so the estimate has no read-path side effects).  Call again with the
    returned (or deserialized — that is the point) checkpoint to resume.

    When the run completes, ``selection`` matches what
    :meth:`~repro.mapreduce.engine.MapReduceEngine.run_selection` would
    have produced under single-slot semantics, except that node times
    carry any restart delays accrued along the way.

    Raises:
        ConfigError: on a multi-slot engine (waves assume ``map_slots=1``).
        JobError: when resuming against a mismatched job/assignment.
    """
    if engine.map_slots != 1:
        raise ConfigError(
            "checkpointed selection assumes map_slots=1 "
            f"(engine has {engine.map_slots})"
        )
    faulty = injector is not None
    if faulty:
        from ..faults.retry import (
            AttemptLog,
            NodeBlacklist,
            RetryPolicy,
            run_attempts,
        )

        retry = retry or RetryPolicy()
        attempt_log = attempt_log if attempt_log is not None else AttemptLog()
        blacklist = (
            blacklist
            if blacklist is not None
            else NodeBlacklist(retry.blacklist_after)
        )
    queues: Dict[NodeId, List[int]] = {
        node: list(bids) for node, bids in assignment.blocks_by_node.items()
    }
    if checkpoint is None:
        checkpoint = WaveCheckpoint(
            dataset=dataset.name,
            sub_id=sub_id,
            queues=queues,
            outputs={node: {} for node in queues},
            clocks={node: 0.0 for node in queues},
        )
    else:
        checkpoint.validate_against(dataset.name, sub_id, queues)
    obs = engine.obs
    placement = dataset.placement()
    num_waves = max((len(q) for q in queues.values()), default=0)
    order = sorted(queues, key=repr)
    for wave in range(checkpoint.wave, num_waves):
        if interrupt is not None and wave == interrupt.wave:
            # The driver dies with this wave in flight.  Its partial work
            # is lost; each affected node burned waste_fraction of the
            # task it was running, and everyone waits out the restart.
            wasted = 0.0
            for node in order:
                if wave >= len(queues[node]):
                    continue
                base, _matched, _nbytes = engine.selection_task_cost(
                    dataset, sub_id, placement, node, queues[node][wave], profile
                )
                lost = interrupt.waste_fraction * base
                checkpoint.clocks[node] += lost
                wasted += lost
            for node in checkpoint.clocks:
                checkpoint.clocks[node] += interrupt.restart_delay_s
            checkpoint.restarts += 1
            if obs.tracer.enabled:
                obs.tracer.record(
                    f"driver-restart-{checkpoint.restarts}",
                    category="restart",
                    wave=wave,
                    wasted_s=wasted,
                )
            if obs.metrics.enabled:
                obs.metrics.counter(
                    "driver_restarts_total", help="driver deaths survived"
                ).inc()
            return None, checkpoint, wasted
        with obs.tracer.span(f"wave-{wave}", category="wave") as wave_span:
            wave_start = min(checkpoint.clocks.values(), default=0.0)
            for node in order:
                if wave >= len(queues[node]):
                    continue
                bid = queues[node][wave]
                base, matched, nbytes = engine.selection_task_cost(
                    dataset, sub_id, placement, node, bid, profile, verify=verify
                )
                if faulty:
                    elapsed, _attempts = run_attempts(
                        base,
                        node,
                        f"sel/{dataset.name}/{bid}",
                        injector,
                        retry,
                        attempt_log,
                        blacklist,
                        start_time=checkpoint.clocks[node],
                        obs=obs,
                    )
                elif obs.tracer.enabled:
                    obs.tracer.record(
                        f"sel/{dataset.name}/{bid}",
                        category="task",
                        sim_start=checkpoint.clocks[node],
                        sim_end=checkpoint.clocks[node] + base,
                        track=f"node {node}",
                        kind="selection",
                    )
                    elapsed = base
                else:
                    elapsed = base
                checkpoint.clocks[node] += elapsed
                checkpoint.outputs[node][bid] = matched
                checkpoint.blocks_read += 1
                checkpoint.bytes_read += nbytes
            wave_span.sim(
                wave_start, max(checkpoint.clocks.values(), default=wave_start)
            )
            if obs.metrics.enabled:
                moved = obs.metrics.counter(
                    "wave_bytes_read_total",
                    help="bytes read per node per completed wave",
                    labelnames=("node", "wave"),
                )
                for node in order:
                    if wave < len(queues[node]):
                        bid = queues[node][wave]
                        moved.inc(
                            dataset.block(bid).used_bytes,
                            node=str(node),
                            wave=str(wave),
                        )
        checkpoint.wave = wave + 1
    from .engine import PhaseResult, SelectionResult

    local_data: Dict[NodeId, List[Record]] = {}
    bytes_per_node: Dict[NodeId, int] = {}
    for node in queues:
        records: List[Record] = []
        for bid in queues[node]:
            records.extend(checkpoint.outputs[node].get(bid, []))
        local_data[node] = records
        bytes_per_node[node] = sum(r.nbytes for r in records)
    selection = SelectionResult(
        local_data=local_data,
        timing=PhaseResult(dict(checkpoint.clocks)),
        bytes_per_node=bytes_per_node,
        blocks_read=checkpoint.blocks_read,
        bytes_read=checkpoint.bytes_read,
    )
    return selection, checkpoint, 0.0
