"""Cost model: how simulated time advances per task.

Parameters are calibrated to the paper's testbed class (1.6 GHz Opterons,
GbE, SATA disks — Section V) at the *scaled* block size the experiments
use; only ratios matter for reproducing the paper's comparisons, and the
defaults put the four applications in the same relative regime the paper
reports (Fig. 5a: MovingAverage gains least, TopKSearch most).

Task time decomposition (engine):

- selection map task = overhead + block_bytes/disk + block_bytes·filter_cpu
  (+ block_bytes/network when reading a remote replica)
- analysis map (per node) = overhead + local_bytes/disk +
  local_bytes·cpu_per_byte + records·cpu_per_record
- shuffle / reduce: see :mod:`repro.mapreduce.shuffle` and the profiles'
  ``shuffle_selectivity`` / ``reduce_cost_per_byte``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError

__all__ = ["ClusterCostModel", "AppProfile", "PROFILES"]


@dataclass(frozen=True)
class ClusterCostModel:
    """Hardware-side cost parameters (seconds, bytes/second).

    Attributes:
        disk_read_bps: sequential local-disk read bandwidth.
        disk_write_bps: local-disk write bandwidth.
        network_bps: point-to-point network bandwidth (GbE-class).
        remote_read_penalty: multiplier on transfer time for non-local
            reads (protocol overhead over raw bandwidth).
        decode_bps: erasure-decode throughput (GF(256) table arithmetic
            is CPU-bound; modern single-core RS decode sustains hundreds
            of MB/s).  Charged on stripe bytes whenever a read or repair
            has to combine parity instead of copying a shard verbatim.
        task_overhead_s: fixed JVM/task-launch overhead per task.
        job_overhead_s: fixed per-job overhead (job setup/cleanup waves,
            scheduling) charged once per analysis job, identical for both
            scheduling methods.
        data_scale: simulated bytes per stored byte.  Experiments store
            scaled-down blocks (e.g. 64 KiB standing in for the paper's
            64 MB); ``data_scale=1024`` makes the clock advance as if the
            data were full size.  Applies uniformly to I/O, CPU and
            shuffle terms, so it changes magnitudes, never comparisons.
    """

    disk_read_bps: float = 80e6
    disk_write_bps: float = 60e6
    network_bps: float = 100e6
    remote_read_penalty: float = 1.2
    decode_bps: float = 400e6
    task_overhead_s: float = 0.15
    job_overhead_s: float = 1.5
    data_scale: float = 1.0

    def __post_init__(self) -> None:
        for name in ("disk_read_bps", "disk_write_bps", "network_bps", "decode_bps"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")
        if self.remote_read_penalty < 1.0:
            raise ConfigError("remote_read_penalty must be >= 1")
        if self.task_overhead_s < 0:
            raise ConfigError("task_overhead_s must be non-negative")
        if self.job_overhead_s < 0:
            raise ConfigError("job_overhead_s must be non-negative")
        if self.data_scale <= 0:
            raise ConfigError("data_scale must be positive")

    # -- elementary costs -------------------------------------------------------

    def read_local(self, nbytes: float) -> float:
        """Seconds to read ``nbytes`` stored bytes from local disk."""
        return self.data_scale * nbytes / self.disk_read_bps

    def read_remote(self, nbytes: float) -> float:
        """Seconds to read ``nbytes`` stored bytes over the network."""
        scaled = self.data_scale * nbytes
        return self.remote_read_penalty * scaled / self.network_bps + self.read_local(
            nbytes
        )

    def write_local(self, nbytes: float) -> float:
        """Seconds to write ``nbytes`` stored bytes to local disk."""
        return self.data_scale * nbytes / self.disk_write_bps

    def transfer(self, nbytes: float) -> float:
        """Seconds to move ``nbytes`` stored bytes node-to-node."""
        return self.data_scale * nbytes / self.network_bps

    def decode(self, nbytes: float) -> float:
        """Seconds of CPU to erasure-decode ``nbytes`` of stripe data."""
        return self.data_scale * nbytes / self.decode_bps


@dataclass(frozen=True)
class AppProfile:
    """Per-application compute/shuffle weights.

    Attributes:
        name: application name (matches :data:`PROFILES` keys).
        cpu_cost_per_byte: map-side compute seconds per input byte.
        cpu_cost_per_record: map-side compute seconds per record.
        shuffle_selectivity: intermediate bytes emitted per input byte
            (post-combiner).
        reduce_cost_per_byte: reduce compute seconds per shuffled byte.
        filter_cpu_per_byte: selection-phase predicate cost per byte.
    """

    name: str
    cpu_cost_per_byte: float
    cpu_cost_per_record: float = 0.0
    shuffle_selectivity: float = 0.1
    reduce_cost_per_byte: float = 2e-8
    filter_cpu_per_byte: float = 5e-9

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("profile name must be non-empty")
        for field_name in (
            "cpu_cost_per_byte",
            "cpu_cost_per_record",
            "shuffle_selectivity",
            "reduce_cost_per_byte",
            "filter_cpu_per_byte",
        ):
            if getattr(self, field_name) < 0:
                raise ConfigError(f"{field_name} must be non-negative")

    def map_cpu_seconds(self, nbytes: float, nrecords: int) -> float:
        """Map-side compute seconds for a chunk of filtered sub-dataset."""
        return self.cpu_cost_per_byte * nbytes + self.cpu_cost_per_record * nrecords


#: The paper's four applications, ordered by compute weight.  The spread of
#: ``cpu_cost_per_byte`` (iterate-only -> tokenise+combine -> similarity
#: search) is what yields the improvement ordering of Fig. 5a.
PROFILES: dict = {
    "moving_average": AppProfile(
        name="moving_average",
        cpu_cost_per_byte=1.5e-8,    # a single pass of float parsing
        shuffle_selectivity=0.05,    # one average per window
        reduce_cost_per_byte=1e-8,
    ),
    "word_count": AppProfile(
        name="word_count",
        cpu_cost_per_byte=2.2e-7,    # tokenise + combine per word
        cpu_cost_per_record=2e-7,
        shuffle_selectivity=0.30,    # combiner compresses word counts
        reduce_cost_per_byte=3e-8,
    ),
    "histogram": AppProfile(
        name="histogram",
        cpu_cost_per_byte=2.5e-7,    # tokenise + aggregate plug-in
        cpu_cost_per_record=2e-7,
        shuffle_selectivity=0.20,
        reduce_cost_per_byte=3e-8,
    ),
    "top_k_search": AppProfile(
        name="top_k_search",
        cpu_cost_per_byte=5e-7,      # similarity comparison per sequence
        cpu_cost_per_record=3e-6,
        shuffle_selectivity=0.01,    # only local top-K leaves the mapper
        reduce_cost_per_byte=1e-8,
    ),
    "grep": AppProfile(
        name="grep",
        cpu_cost_per_byte=2e-8,
        shuffle_selectivity=0.02,
        reduce_cost_per_byte=1e-8,
    ),
}
