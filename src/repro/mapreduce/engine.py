"""The discrete-event MapReduce engine.

Executes the paper's two-phase workflow (Section V-A):

1. **Selection phase** (:meth:`MapReduceEngine.run_selection`) — map tasks
   read assigned blocks, filter the target sub-dataset's records, and
   store them on the node that ran the task.  Which node reads which block
   is the *scheduling decision under study*: the baseline
   :class:`~repro.mapreduce.scheduler.LocalityScheduler` vs DataNet's
   Algorithm 1.
2. **Analysis phase** (:meth:`MapReduceEngine.run_analysis`) — the actual
   MapReduce job (map over each node's filtered records, combine, shuffle,
   reduce).  Functions execute for real; time advances on per-node
   simulated clocks from the cost model.

:meth:`MapReduceEngine.run_job` chains both phases and returns a
:class:`JobResult` carrying every quantity the paper plots: per-node map
times (Fig. 6), shuffle min/avg/max (Fig. 7), per-node filtered workload
(Fig. 5c) and the end-to-end makespan (Fig. 5a).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Hashable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - type-only imports (avoids a cycle)
    from ..faults.injector import FaultInjector
    from ..faults.plan import DriverRestart
    from ..faults.retry import AttemptLog, NodeBlacklist, RetryPolicy
    from ..hdfs.coded import CodedReader
    from ..hdfs.hedged import HedgedReader
    from ..hdfs.scrubber import ReadVerifier
    from .checkpoint import WaveCheckpoint

from ..core.scheduler import Assignment
from ..errors import ConfigError, JobError
from ..hdfs.cluster import DatasetView, HDFSCluster
from ..hdfs.records import Record
from ..obs import NULL_OBS, Observability
from .costmodel import AppProfile, ClusterCostModel
from .job import MapReduceJob
from .shuffle import ShuffleModel, ShuffleResult

__all__ = ["MapReduceEngine", "PhaseResult", "SelectionResult", "JobResult"]

NodeId = Hashable

#: Serialized framing bytes per intermediate key/value pair.
KV_OVERHEAD = 8


def _kv_bytes(key: Any, value: Any) -> int:
    """Approximate serialized size of one intermediate pair."""
    return len(repr(key)) + len(repr(value)) + KV_OVERHEAD


@dataclass
class PhaseResult:
    """Per-node timing of one parallel phase."""

    node_times: Dict[NodeId, float]

    @property
    def makespan(self) -> float:
        """Slowest node's duration — the phase's parallel completion time."""
        return max(self.node_times.values(), default=0.0)

    @property
    def min(self) -> float:
        return min(self.node_times.values(), default=0.0)

    @property
    def max(self) -> float:
        return self.makespan

    @property
    def mean(self) -> float:
        if not self.node_times:
            return 0.0
        return sum(self.node_times.values()) / len(self.node_times)


@dataclass
class SelectionResult:
    """Outcome of the filter/selection phase.

    Attributes:
        local_data: node → filtered records now stored on that node.
        timing: per-node phase durations.
        bytes_per_node: node → filtered sub-dataset bytes it holds
            (the Fig. 5c quantity).
        blocks_read: blocks actually scanned.
        bytes_read: raw bytes read off disk/network.
    """

    local_data: Dict[NodeId, List[Record]]
    timing: PhaseResult
    bytes_per_node: Dict[NodeId, int]
    blocks_read: int
    bytes_read: int

    @property
    def makespan(self) -> float:
        return self.timing.makespan


@dataclass
class JobResult:
    """Everything the paper measures about one analysis job run."""

    job_name: str
    output: Dict[Any, Any]
    map_times: Dict[NodeId, float]
    shuffle: ShuffleResult
    reduce_times: Dict[int, float]
    total_time: float
    selection: Optional[SelectionResult] = None

    @property
    def map_phase(self) -> PhaseResult:
        """Per-node analysis map timings (Fig. 6)."""
        return PhaseResult(dict(self.map_times))

    @property
    def makespan(self) -> float:
        """End-to-end simulated duration (selection included if chained)."""
        return self.total_time


class MapReduceEngine:
    """Phase executor bound to a cluster and a cost model.

    Args:
        cluster: the HDFS substrate (topology + replicas).
        cost: hardware cost parameters.
        map_slots: concurrent map lanes per node (the testbed's nodes had
            2 cores; 1 keeps per-node execution strictly sequential).
    """

    def __init__(
        self,
        cluster: HDFSCluster,
        cost: Optional[ClusterCostModel] = None,
        *,
        map_slots: int = 1,
        obs: Observability = NULL_OBS,
    ) -> None:
        if map_slots <= 0:
            raise ConfigError("map_slots must be positive")
        self.cluster = cluster
        self.cost = cost or ClusterCostModel()
        self.map_slots = map_slots
        self.shuffle_model = ShuffleModel(self.cost)
        self.obs = obs
        self._default_coded: Optional["CodedReader"] = None

    def _coded_reader(
        self, dataset: DatasetView, coded: Optional["CodedReader"]
    ) -> Optional["CodedReader"]:
        """The coded-read path for a dataset, if it needs one.

        A coded dataset has no whole-block replicas, so its reads *must*
        assemble k fragments; when the caller did not thread an explicit
        :class:`~repro.hdfs.coded.CodedReader` (the chaos runner does, to
        share counters), a plain one is created lazily and reused so
        fault-free runs on coded data work out of the box.
        """
        if coded is not None:
            return coded
        if dataset.coding is None:
            return None
        if self._default_coded is None:
            from ..hdfs.coded import CodedReader

            self._default_coded = CodedReader(self.cluster, obs=self.obs)
        return self._default_coded

    # -- selection phase ----------------------------------------------------------

    def _node_finish(self, task_durations: List[float]) -> float:
        """Completion time of a task list on ``map_slots`` lanes (LPT order
        is not used: Hadoop runs tasks in assignment order)."""
        if not task_durations:
            return 0.0
        lanes = [0.0] * min(self.map_slots, len(task_durations))
        heapq.heapify(lanes)
        for d in task_durations:
            t = heapq.heappop(lanes)
            heapq.heappush(lanes, t + d)
        return max(lanes)

    def _lane_intervals(self, task_durations: List[float]) -> List[Tuple[float, float]]:
        """Per-task ``(start, end)`` under the same lane policy as
        :meth:`_node_finish` — used only to place spans, never for timing."""
        if not task_durations:
            return []
        lanes = [0.0] * min(self.map_slots, len(task_durations))
        heapq.heapify(lanes)
        out: List[Tuple[float, float]] = []
        for d in task_durations:
            t = heapq.heappop(lanes)
            out.append((t, t + d))
            heapq.heappush(lanes, t + d)
        return out

    def selection_task_cost(
        self,
        dataset: DatasetView,
        sub_id: str,
        placement: Mapping[int, Any],
        node: NodeId,
        bid: int,
        profile: AppProfile,
        verify: Optional["ReadVerifier"] = None,
        hedge: Optional["HedgedReader"] = None,
        when: float = 0.0,
        replicas: Optional[Sequence[NodeId]] = None,
        coded: Optional["CodedReader"] = None,
    ) -> Tuple[float, List[Record], int]:
        """Price one selection task: read + filter + write for one block.

        Returns ``(duration, matched_records, block_bytes)``.  Shared by
        the closed-form phase runner and the chaos runner so fault-free
        and fault-injected timings come from the same formula.

        With a ``verify`` read verifier, the read component goes through
        the checksum-verified path: a rotten local replica costs a remote
        refetch + in-place repair, and a block with no verified replica
        raises :class:`~repro.errors.IntegrityError` instead of producing
        output from corrupt data.  Without corruption the verified cost is
        identical to the plain one.

        With a ``hedge`` reader, remote reads go through the hedged path
        instead: the reader picks the healthiest reachable replica at
        clock ``when`` and races a backup read once its adaptive latency
        trigger fires (corrupt blocks are delegated to the hedge's wrapped
        verifier).  ``replicas`` overrides the replica set considered for
        the read — the chaos runner passes only the holders reachable from
        ``node`` when a partition is active.

        An erasure-coded dataset always routes through a
        :class:`~repro.hdfs.coded.CodedReader` (``coded`` when given, a
        lazily-created default otherwise): the read assembles the k fastest
        fragments, hedges a spare, and degrades through parity — charging
        decode CPU via :meth:`~repro.mapreduce.costmodel.ClusterCostModel.decode`
        — when data fragments are rotten or unreachable.  ``verify`` and
        ``hedge`` are replica-path tools and are ignored for coded data.

        Raises:
            JobError: when the block is not part of the dataset placement.
        """
        if bid not in placement:
            raise JobError(
                f"assignment references unknown block {bid} "
                f"of dataset {dataset.name!r}"
            )
        block = dataset.block(bid)
        nbytes = block.used_bytes
        holders = tuple(replicas) if replicas is not None else tuple(placement[bid])
        reader = self._coded_reader(dataset, coded)
        if reader is not None:
            read = reader.read_cost(
                dataset.name,
                bid,
                node,
                holders,
                nbytes,
                self.cost.read_local,
                self.cost.read_remote,
                self.cost.write_local,
                when=when,
                decode=self.cost.decode,
            )
        elif hedge is not None:
            read = hedge.read_cost(
                dataset.name,
                bid,
                node,
                holders,
                nbytes,
                self.cost.read_local,
                self.cost.read_remote,
                self.cost.write_local,
                when=when,
            )
        elif verify is not None:
            read = verify.read_cost(
                dataset.name,
                bid,
                node,
                holders,
                nbytes,
                self.cost.read_local,
                self.cost.read_remote,
                self.cost.write_local,
            )
        else:
            read = (
                self.cost.read_local(nbytes)
                if node in holders
                else self.cost.read_remote(nbytes)
            )
        matched = block.filter(sub_id)
        out_bytes = sum(r.nbytes for r in matched)
        duration = (
            self.cost.task_overhead_s
            + read
            + profile.filter_cpu_per_byte * nbytes * self.cost.data_scale
            + self.cost.write_local(out_bytes)
        )
        return duration, matched, nbytes

    def run_selection(
        self,
        dataset: DatasetView,
        sub_id: str,
        assignment: Assignment,
        profile: AppProfile,
        *,
        injector: Optional["FaultInjector"] = None,
        retry: Optional["RetryPolicy"] = None,
        attempt_log: Optional["AttemptLog"] = None,
        blacklist: Optional["NodeBlacklist"] = None,
        verify: Optional["ReadVerifier"] = None,
        coded: Optional["CodedReader"] = None,
    ) -> SelectionResult:
        """Run the filter phase under a given block-task assignment.

        Every assigned block is read (locally if the node holds a replica,
        remotely otherwise), filtered for ``sub_id``, and the matching
        records are written to the executing node's local store.

        With an ``injector`` (see :mod:`repro.faults`), every task runs
        through the attempt lifecycle instead of exactly once: transient
        failures burn partial work, back off exponentially, and retry up
        to ``retry.max_attempts``; slow-node degradations stretch
        durations.  Node *crashes* need cross-node rescheduling and are
        handled one level up by :class:`repro.faults.ChaosRunner`.

        Raises:
            TaskAttemptError: a task exhausted its retry budget.
        """
        faulty = injector is not None
        if faulty:
            from ..faults.retry import AttemptLog, NodeBlacklist, RetryPolicy, run_attempts

            retry = retry or RetryPolicy()
            attempt_log = attempt_log if attempt_log is not None else AttemptLog()
            blacklist = (
                blacklist
                if blacklist is not None
                else NodeBlacklist(retry.blacklist_after)
            )
        placement = dataset.placement()
        local_data: Dict[NodeId, List[Record]] = {}
        node_times: Dict[NodeId, float] = {}
        bytes_per_node: Dict[NodeId, int] = {}
        blocks_read = 0
        bytes_read = 0
        traced = self.obs.tracer.enabled
        with self.obs.tracer.span(
            f"selection/{sub_id}", category="phase", sim_start=0.0, dataset=dataset.name
        ) as phase:
            for node, block_ids in assignment.blocks_by_node.items():
                durations: List[float] = []
                filtered: List[Record] = []
                node_elapsed = 0.0
                for bid in block_ids:
                    base, matched, nbytes = self.selection_task_cost(
                        dataset,
                        sub_id,
                        placement,
                        node,
                        bid,
                        profile,
                        verify=verify,
                        coded=coded,
                        when=node_elapsed,
                    )
                    blocks_read += 1
                    bytes_read += nbytes
                    if faulty:
                        elapsed, _attempts = run_attempts(
                            base,
                            node,
                            f"sel/{dataset.name}/{bid}",
                            injector,
                            retry,
                            attempt_log,
                            blacklist,
                            start_time=node_elapsed,
                            obs=self.obs,
                        )
                        durations.append(elapsed)
                        node_elapsed += elapsed
                    else:
                        durations.append(base)
                    filtered.extend(matched)
                local_data[node] = filtered
                bytes_per_node[node] = sum(r.nbytes for r in filtered)
                node_times[node] = self._node_finish(durations)
                if traced and not faulty:
                    for bid, (start, end) in zip(
                        block_ids, self._lane_intervals(durations)
                    ):
                        self.obs.tracer.record(
                            f"sel/{dataset.name}/{bid}",
                            category="task",
                            sim_start=start,
                            sim_end=end,
                            track=f"node {node}",
                            kind="selection",
                        )
            phase.sim(0.0, max(node_times.values(), default=0.0))
        if self.obs.metrics.enabled:
            m = self.obs.metrics
            m.counter(
                "selection_blocks_scanned_total",
                help="blocks read during selection phases",
            ).inc(blocks_read)
            m.counter(
                "selection_bytes_read_total",
                help="raw bytes read off disk/network during selection",
            ).inc(bytes_read)
            out_bytes = m.counter(
                "selection_output_bytes_total",
                help="filtered sub-dataset bytes stored, per node",
                labelnames=("node",),
            )
            for node, nbytes in bytes_per_node.items():
                out_bytes.inc(nbytes, node=str(node))
        return SelectionResult(
            local_data=local_data,
            timing=PhaseResult(node_times),
            bytes_per_node=bytes_per_node,
            blocks_read=blocks_read,
            bytes_read=bytes_read,
        )

    def run_selection_checkpointed(
        self,
        dataset: DatasetView,
        sub_id: str,
        assignment: Assignment,
        profile: AppProfile,
        *,
        checkpoint: Optional["WaveCheckpoint"] = None,
        interrupt: Optional["DriverRestart"] = None,
        injector: Optional["FaultInjector"] = None,
        retry: Optional["RetryPolicy"] = None,
        attempt_log: Optional["AttemptLog"] = None,
        blacklist: Optional["NodeBlacklist"] = None,
        verify: Optional["ReadVerifier"] = None,
    ) -> Tuple[Optional[SelectionResult], "WaveCheckpoint", float]:
        """Wave-granularity selection with durable checkpoints.

        See :func:`repro.mapreduce.checkpoint.run_selection_checkpointed`;
        this is the engine-level entry point (single-slot semantics).
        """
        from .checkpoint import run_selection_checkpointed

        return run_selection_checkpointed(
            self,
            dataset,
            sub_id,
            assignment,
            profile,
            checkpoint=checkpoint,
            interrupt=interrupt,
            injector=injector,
            retry=retry,
            attempt_log=attempt_log,
            blacklist=blacklist,
            verify=verify,
        )

    # -- analysis phase -------------------------------------------------------------

    def run_analysis(
        self,
        job: MapReduceJob,
        local_data: Mapping[NodeId, List[Record]],
        *,
        start_time: float = 0.0,
        colocate_reducers: bool = False,
    ) -> JobResult:
        """Run the MapReduce job over per-node filtered data.

        Map functions execute over each node's records (results are real);
        the per-node map *time* comes from the cost model over that node's
        filtered bytes — the quantity DataNet balanced (or didn't).

        With ``colocate_reducers``, reduce tasks are placed on the nodes
        already holding the largest share of their partitions
        (:func:`repro.core.aggregation.plan_greedy`), so those bytes skip
        the shuffle network — the paper's future-work transfer
        optimization, wired end to end.
        """
        with self.obs.tracer.span(
            f"analysis/{job.name}", category="phase", sim_start=start_time
        ) as phase:
            result = self._run_analysis_inner(
                job,
                local_data,
                start_time=start_time,
                colocate_reducers=colocate_reducers,
            )
            phase.sim(start_time, result.total_time)
        return result

    def _run_analysis_inner(
        self,
        job: MapReduceJob,
        local_data: Mapping[NodeId, List[Record]],
        *,
        start_time: float,
        colocate_reducers: bool,
    ) -> JobResult:
        traced = self.obs.tracer.enabled
        map_times: Dict[NodeId, float] = {}
        map_finish: Dict[NodeId, float] = {}
        # reducer -> key -> list of values
        partitions: Dict[int, Dict[Any, List[Any]]] = {
            r: {} for r in range(job.num_reducers)
        }
        partition_bytes: Dict[int, int] = {r: 0 for r in range(job.num_reducers)}
        # node -> reducer -> intermediate bytes produced there
        volumes: Dict[NodeId, Dict[int, int]] = {}

        for node, records in local_data.items():
            nbytes = sum(r.nbytes for r in records)
            # execute map for real
            emitted: Dict[Any, List[Any]] = {}
            for record in records:
                for k, v in job.run_mapper(record):
                    emitted.setdefault(k, []).append(v)
            # per-node combiner
            combined: List[Tuple[Any, Any]] = []
            for k, values in emitted.items():
                combined.extend(job.run_combiner(k, values))
            node_volumes = volumes.setdefault(node, {})
            for k, v in combined:
                r = job.partition(k)
                partitions[r].setdefault(k, []).append(v)
                size = _kv_bytes(k, v)
                partition_bytes[r] += size
                node_volumes[r] = node_volumes.get(r, 0) + size
            scale = self.cost.data_scale
            duration = (
                self.cost.task_overhead_s
                + self.cost.read_local(nbytes)
                + job.profile.map_cpu_seconds(nbytes * scale, len(records) * scale)
            )
            map_times[node] = duration
            map_finish[node] = start_time + duration
            if traced:
                self.obs.tracer.record(
                    f"map/{node}",
                    category="task",
                    sim_start=start_time,
                    sim_end=start_time + duration,
                    track=f"node {node}",
                    kind="map",
                    input_bytes=nbytes,
                )

        if not map_finish:
            raise JobError("analysis phase received no input partitions")

        colocated: Optional[Dict[int, int]] = None
        if colocate_reducers and any(parts for parts in volumes.values()):
            from ..core.aggregation import plan_greedy

            plan = plan_greedy(volumes)
            colocated = {
                r: volumes.get(host, {}).get(r, 0)
                for r, host in plan.placement.items()
            }
        shuffle = self.shuffle_model.run(
            map_finish, partition_bytes, colocated_bytes=colocated
        )
        if traced:
            self.obs.tracer.record(
                f"shuffle/{job.name}",
                category="shuffle",
                sim_start=shuffle.start_time,
                sim_end=shuffle.end_time,
                bytes=sum(partition_bytes.values()),
            )

        # reduce: real execution + modeled time
        output: Dict[Any, Any] = {}
        reduce_times: Dict[int, float] = {}
        for r in range(job.num_reducers):
            out_bytes = 0
            for k, values in partitions[r].items():
                for ok, ov in job.run_reducer(k, values):
                    output[ok] = ov
                    out_bytes += _kv_bytes(ok, ov)
            reduce_times[r] = (
                self.cost.task_overhead_s
                + job.profile.reduce_cost_per_byte
                * partition_bytes[r]
                * self.cost.data_scale
                + self.cost.write_local(out_bytes)
            )
            if traced:
                self.obs.tracer.record(
                    f"reduce/{r}",
                    category="task",
                    sim_start=shuffle.end_time,
                    sim_end=shuffle.end_time + reduce_times[r],
                    track=f"reducer {r}",
                    kind="reduce",
                    partition_bytes=partition_bytes[r],
                )
        if self.obs.metrics.enabled:
            shuffled = self.obs.metrics.counter(
                "shuffle_bytes_total",
                help="intermediate bytes produced per mapper node",
                labelnames=("node",),
            )
            for node, per_reducer in volumes.items():
                shuffled.inc(sum(per_reducer.values()), node=str(node))

        total = (
            self.cost.job_overhead_s
            + shuffle.end_time
            + max(reduce_times.values(), default=0.0)
        )
        return JobResult(
            job_name=job.name,
            output=output,
            map_times=map_times,
            shuffle=shuffle,
            reduce_times=reduce_times,
            total_time=total,
        )

    # -- full pipeline ------------------------------------------------------------------

    def run_job(
        self,
        dataset: DatasetView,
        sub_id: str,
        job: MapReduceJob,
        assignment: Assignment,
    ) -> JobResult:
        """Selection then analysis, chained on the simulated clock.

        The analysis phase starts when the selection phase's slowest node
        finishes (the phases synchronize on the filtered dataset being
        fully materialized, as in the paper's two-job workflow).
        """
        with self.obs.tracer.span(
            f"job/{job.name}", category="job", sim_start=0.0, dataset=dataset.name
        ) as span:
            selection = self.run_selection(dataset, sub_id, assignment, job.profile)
            result = self.run_analysis(
                job, selection.local_data, start_time=selection.makespan
            )
            result.selection = selection
            span.sim(0.0, result.total_time)
        return result
