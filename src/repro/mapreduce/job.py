"""MapReduce job definition.

A :class:`MapReduceJob` bundles the user functions (mapper, optional
combiner, reducer) with the application's cost profile.  The engine runs
the functions for real — job outputs are actual results, not mock data —
and uses the profile only to advance the simulated clocks.

Function contracts (classic Hadoop semantics):

- ``mapper(record) -> iterable[(key, value)]``
- ``combiner(key, values) -> iterable[(key, value)]`` — optional, runs
  per-node over that node's map output.
- ``reducer(key, values) -> iterable[(key, value)]`` — runs per key after
  the shuffle groups values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, List, Optional, Tuple

from ..errors import ConfigError, JobError
from ..hdfs.records import Record
from .costmodel import AppProfile

__all__ = ["MapReduceJob"]

KeyValue = Tuple[Any, Any]
Mapper = Callable[[Record], Iterable[KeyValue]]
Combiner = Callable[[Any, List[Any]], Iterable[KeyValue]]
Reducer = Callable[[Any, List[Any]], Iterable[KeyValue]]


@dataclass
class MapReduceJob:
    """A runnable analysis job.

    Attributes:
        name: human-readable job name.
        mapper: per-record map function.
        reducer: per-key reduce function.
        combiner: optional per-node pre-aggregation.
        profile: cost profile driving simulated time.
        num_reducers: reduce-task count (partitions intermediate keys).
    """

    name: str
    mapper: Mapper
    reducer: Reducer
    profile: AppProfile
    combiner: Optional[Combiner] = None
    num_reducers: int = 4

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("job name must be non-empty")
        if self.num_reducers <= 0:
            raise ConfigError("num_reducers must be positive")
        if not callable(self.mapper) or not callable(self.reducer):
            raise ConfigError("mapper and reducer must be callable")
        if self.combiner is not None and not callable(self.combiner):
            raise ConfigError("combiner must be callable when given")

    # -- execution helpers (used by the engine) ------------------------------------

    def run_mapper(self, record: Record) -> List[KeyValue]:
        """Apply the mapper, normalizing its output to a list.

        Raises:
            JobError: wrapping any exception from user code, so engine
                callers can attribute failures to the job.
        """
        try:
            return list(self.mapper(record))
        except Exception as exc:  # noqa: BLE001 - user code boundary
            raise JobError(f"mapper of job {self.name!r} failed: {exc}") from exc

    def run_combiner(self, key: Any, values: List[Any]) -> List[KeyValue]:
        """Apply the combiner (identity if none is configured)."""
        if self.combiner is None:
            return [(key, v) for v in values]
        try:
            return list(self.combiner(key, values))
        except Exception as exc:  # noqa: BLE001
            raise JobError(f"combiner of job {self.name!r} failed: {exc}") from exc

    def run_reducer(self, key: Any, values: List[Any]) -> List[KeyValue]:
        """Apply the reducer."""
        try:
            return list(self.reducer(key, values))
        except Exception as exc:  # noqa: BLE001
            raise JobError(f"reducer of job {self.name!r} failed: {exc}") from exc

    def partition(self, key: Any) -> int:
        """Reducer index of ``key`` (stable hash partitioning).

        Uses a content hash rather than built-in ``hash`` so partitions are
        stable across processes (PYTHONHASHSEED-independent).
        """
        import hashlib

        digest = hashlib.blake2b(repr(key).encode("utf-8"), digest_size=8).digest()
        return int.from_bytes(digest, "little") % self.num_reducers
