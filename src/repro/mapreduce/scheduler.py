"""The default Hadoop block-locality scheduler — the "without DataNet" baseline.

Hadoop's JobTracker hands a free TaskTracker a map task whose input block
is local if one exists, else any remaining task (a remote read).  It
balances *block counts*, because every block is the same size — but it is
completely blind to how much of the target sub-dataset each block holds.
Under content clustering this is precisely what produces the imbalanced
filtered workloads of Figures 1(b) and 5(c).

The reported ``workload_by_node`` is the sub-dataset bytes each node ends
up with (taken from the graph's weights) so baseline and DataNet schedules
are directly comparable; the weights play no part in the decisions.
"""

from __future__ import annotations

import heapq
from typing import Dict, Hashable, List, Optional, Tuple

import numpy as np

from ..core.bipartite import BipartiteGraph
from ..core.scheduler import Assignment
from ..errors import ConfigError, SchedulingError
from ..obs import NULL_OBS, Observability

__all__ = ["LocalityScheduler"]

NodeId = Hashable


class LocalityScheduler:
    """Block-locality-driven task assignment (stock Hadoop behaviour).

    Args:
        rng: optional generator; when given, a requesting node picks a
            *random* local block (like Hadoop's unordered task lists) —
            otherwise the lowest block id, which is deterministic.
        capacities: optional node → relative service rate in ``(0, 1]``
            (the health detector's scores).  A node at capacity ``c``
            finishes each task in ``1/c`` virtual time units, so it
            requests correspondingly fewer tasks — health-aware but still
            weight-blind, like a real JobTracker fed heartbeat latencies.
    """

    #: Delay-scheduling patience, matching the distribution-aware scheduler.
    MAX_DEFERRALS = 3
    DEFER_QUANTUM = 0.34

    def __init__(
        self,
        rng: Optional[np.random.Generator] = None,
        *,
        capacities: Optional[Dict[NodeId, float]] = None,
        obs: Observability = NULL_OBS,
    ) -> None:
        self.rng = rng
        self.obs = obs
        if capacities is not None:
            for node, cap in capacities.items():
                if not 0.0 < cap <= 1.0:
                    raise ConfigError(
                        f"capacity for {node!r} must be in (0, 1], got {cap}"
                    )
        self.capacities = dict(capacities) if capacities is not None else None

    def _pick(self, candidates: List[int]) -> int:
        if self.rng is None:
            return min(candidates)
        return candidates[int(self.rng.integers(len(candidates)))]

    def schedule(self, graph: BipartiteGraph) -> Assignment:
        """Assign every block, preferring locality, blind to weights.

        Nodes request tasks in fewest-tasks-first order (all blocks are
        the same size, so task count tracks completion time).
        """
        with self.obs.tracer.span(
            "schedule/locality", category="schedule", blocks=graph.num_blocks
        ):
            g = graph.copy()
            nodes = g.nodes
            if not nodes:
                raise SchedulingError("graph has no cluster nodes")
            blocks_by_node: Dict[NodeId, List[int]] = {n: [] for n in nodes}
            workload: Dict[NodeId, int] = {n: 0 for n in nodes}
            deferrals: Dict[NodeId, int] = {n: 0 for n in nodes}
            local = remote = defer_events = 0

            caps = {n: 1.0 for n in nodes}
            if self.capacities is not None:
                caps.update(
                    (n, c) for n, c in self.capacities.items() if n in caps
                )
            order = {n: i for i, n in enumerate(nodes)}
            heap: List[Tuple[float, int, NodeId]] = [(0.0, order[n], n) for n in nodes]
            heapq.heapify(heap)

            while g.num_blocks:
                elapsed, tiebreak, node = heapq.heappop(heap)
                local_blocks = sorted(g.blocks_on(node))
                if not local_blocks and deferrals[node] < self.MAX_DEFERRALS:
                    # delay scheduling, as stock Hadoop does
                    deferrals[node] += 1
                    defer_events += 1
                    heapq.heappush(
                        heap, (elapsed + self.DEFER_QUANTUM, tiebreak, node)
                    )
                    continue
                if local_blocks:
                    chosen = self._pick(local_blocks)
                    local += 1
                    deferrals[node] = 0
                else:
                    chosen = self._pick(g.blocks)
                    remote += 1
                blocks_by_node[node].append(chosen)
                workload[node] += g.weight(chosen)
                g.remove_block(chosen)
                heapq.heappush(heap, (elapsed + 1.0 / caps[node], tiebreak, node))

        assignment = Assignment(
            blocks_by_node=blocks_by_node,
            workload_by_node=workload,
            local_assignments=local,
            remote_assignments=remote,
        )
        if self.obs.metrics.enabled:
            m = self.obs.metrics
            placed = m.counter(
                "scheduler_assignments_total",
                help="block-task assignments by locality",
                labelnames=("scheduler", "locality"),
            )
            placed.inc(local, scheduler="locality", locality="local")
            placed.inc(remote, scheduler="locality", locality="remote")
            m.counter(
                "scheduler_deferrals_total",
                help="delay-scheduling deferral events",
                labelnames=("scheduler",),
            ).inc(defer_events, scheduler="locality")
            m.gauge(
                "schedule_imbalance",
                help="max/mean workload ratio of the latest schedule",
                labelnames=("scheduler",),
            ).set(assignment.imbalance, scheduler="locality")
        return assignment
