"""The shuffle-phase model.

Paper Section V-A.3: "The shuffle phase starts whenever a map task is
finished and ends when all map tasks have been executed" — so a reducer's
shuffle task is alive from the first map output until the last mapper
completes, plus the time to pull its own partition.  When map completion
times are imbalanced, *every* reducer waits on the straggler: the paper
measures shuffles 4-5× longer without DataNet (Fig. 7).

Model per reducer ``r``::

    fetch_r   = partition_bytes_r / network_bps   (pipelined with maps)
    shuffle_r = max(last_map_finish - first_map_finish, fetch_r)
                + merge_cost(partition_bytes_r)

The straggler term dominates under imbalance; the fetch term dominates
under balance — exactly the regime change the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping

from ..errors import ConfigError
from .costmodel import ClusterCostModel

__all__ = ["ShuffleModel", "ShuffleResult"]

#: Merge/spill cost per shuffled byte (sort-merge on the reducer side).
MERGE_COST_PER_BYTE = 1.5e-8


@dataclass
class ShuffleResult:
    """Per-reducer shuffle timing.

    Attributes:
        durations: reducer index → shuffle task duration (seconds).
        start_time: simulated time when shuffling began (first map done).
        end_time: simulated time when the *last* reducer finished fetching.
    """

    durations: Dict[int, float]
    start_time: float
    end_time: float

    @property
    def min(self) -> float:
        return min(self.durations.values()) if self.durations else 0.0

    @property
    def max(self) -> float:
        return max(self.durations.values()) if self.durations else 0.0

    @property
    def mean(self) -> float:
        if not self.durations:
            return 0.0
        return sum(self.durations.values()) / len(self.durations)


class ShuffleModel:
    """Computes shuffle timings from map completions and partition sizes."""

    def __init__(self, cost: ClusterCostModel) -> None:
        self.cost = cost

    def run(
        self,
        map_finish_times: Mapping[object, float],
        partition_bytes: Mapping[int, int],
        *,
        colocated_bytes: Mapping[int, int] | None = None,
    ) -> ShuffleResult:
        """Shuffle timing given per-node map completion and per-reducer bytes.

        Args:
            map_finish_times: node → simulated time its map work completed.
            partition_bytes: reducer index → intermediate bytes destined to it.
            colocated_bytes: reducer index → bytes of its partition already
                resident on its host node (aggregation-aware reducer
                placement, :mod:`repro.core.aggregation`); those bytes skip
                the network.  Still merged, so merge cost is unchanged.

        Raises:
            ConfigError: with no map completions to anchor the phase, or
                colocated bytes exceeding the partition.
        """
        if not map_finish_times:
            raise ConfigError("shuffle requires at least one map completion")
        finishes: List[float] = sorted(map_finish_times.values())
        first, last = finishes[0], finishes[-1]
        straggler_wait = last - first
        durations: Dict[int, float] = {}
        end = last
        for r, nbytes in partition_bytes.items():
            if nbytes < 0:
                raise ConfigError(f"negative partition bytes for reducer {r}")
            local = colocated_bytes.get(r, 0) if colocated_bytes else 0
            if local > nbytes:
                raise ConfigError(
                    f"colocated bytes exceed partition for reducer {r}"
                )
            fetch = self.cost.transfer(nbytes - local)
            merge = MERGE_COST_PER_BYTE * nbytes * self.cost.data_scale
            durations[r] = max(straggler_wait, fetch) + merge
            end = max(end, first + durations[r])
        return ShuffleResult(durations=durations, start_time=first, end_time=end)
