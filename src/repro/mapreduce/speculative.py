"""Speculative execution: Hadoop's built-in straggler mitigation, as a model.

Hadoop launches *backup* copies of tasks that run much slower than their
siblings; the task completes when either copy finishes.  Speculation is
the standard answer to stragglers — so a natural question for the paper's
story is how much of DataNet's gain speculation would capture on its own.

The answer (see the ablation bench): little.  Speculation helps when a
straggler is *anomalous* (slow disk, hot node); sub-dataset imbalance
makes a node slow because it holds more data, and the backup copy must
reprocess the same oversized input — it only wins the (small) relocation
benefit of a faster host, at the cost of duplicated work.

:class:`SpeculativeExecutor` models exactly that: per-node map durations
in, adjusted completion times + wasted duplicate work out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Mapping, Optional

from ..errors import ConfigError
from ..faults.health import validate_health

__all__ = ["SpeculativeExecutor", "SpeculationResult"]

NodeId = Hashable


@dataclass
class SpeculationResult:
    """Outcome of one speculative pass over a map phase.

    Attributes:
        finish_times: node → map completion after speculation.
        backups_launched: node → host chosen for its backup copy.
        wasted_seconds: duplicated compute across all backups (both copies
            run to the winner's finish; the loser's progress is wasted).
    """

    finish_times: Dict[NodeId, float]
    backups_launched: Dict[NodeId, NodeId]
    wasted_seconds: float

    @property
    def makespan(self) -> float:
        return max(self.finish_times.values(), default=0.0)


class SpeculativeExecutor:
    """Models Hadoop's backup-task policy over per-node map durations.

    Args:
        slowdown_threshold: a node is a straggler when its duration exceeds
            ``threshold x median`` (Hadoop's progress-rate heuristic,
            coarse-grained to whole nodes here).
        relocation_speedup: how much faster the backup host processes the
            same input (idle disk/CPU, no contention).  1.0 = no benefit.
        launch_delay: seconds after the median finish before backups start
            (speculation only triggers once most tasks are done).
    """

    def __init__(
        self,
        *,
        slowdown_threshold: float = 1.5,
        relocation_speedup: float = 1.2,
        launch_delay: float = 0.5,
    ) -> None:
        if slowdown_threshold <= 1.0:
            raise ConfigError("slowdown_threshold must exceed 1.0")
        if relocation_speedup < 1.0:
            raise ConfigError("relocation_speedup must be >= 1.0")
        if launch_delay < 0:
            raise ConfigError("launch_delay must be non-negative")
        self.slowdown_threshold = slowdown_threshold
        self.relocation_speedup = relocation_speedup
        self.launch_delay = launch_delay

    def run(
        self,
        map_durations: Mapping[NodeId, float],
        *,
        health: Optional[Mapping[NodeId, float]] = None,
    ) -> SpeculationResult:
        """Apply speculation to one map phase.

        For each straggler, a backup starts on the currently
        earliest-finishing node at ``median_finish + launch_delay`` and
        takes ``duration / relocation_speedup``; the task finishes at the
        earlier of the two copies.

        ``health`` (node → score in ``(0, 1]``, from the φ-accrual
        detector) tightens the per-node straggler threshold to
        ``1 + (slowdown_threshold - 1) * health``: a suspected node is
        speculated earlier because its slowness is evidence of gray
        failure rather than data skew.  ``None`` keeps the uniform
        threshold.
        """
        if not map_durations:
            raise ConfigError("map_durations must be non-empty")
        validate_health(health)
        scores = dict(health) if health is not None else {}
        durations = dict(map_durations)
        if any(d < 0 for d in durations.values()):
            raise ConfigError("map durations must be non-negative")
        ordered = sorted(durations.values())
        median = ordered[len(ordered) // 2]

        finish = dict(durations)
        backups: Dict[NodeId, NodeId] = {}
        wasted = 0.0
        # Backup hosts: nodes that finish earliest have free slots first.
        hosts = sorted(durations, key=lambda n: durations[n])
        host_free_at = {n: durations[n] for n in hosts}

        for node in sorted(durations, key=lambda n: -durations[n]):
            duration = durations[node]
            multiple = 1.0 + (self.slowdown_threshold - 1.0) * scores.get(node, 1.0)
            if duration <= multiple * median or median == 0:
                continue
            host = min(host_free_at, key=lambda n: (host_free_at[n], repr(n)))
            if host == node:
                continue
            start = max(median + self.launch_delay, host_free_at[host])
            backup_finish = start + duration / self.relocation_speedup
            backups[node] = host
            winner_finish = min(backup_finish, finish[node])
            # the losing copy runs from the backup's start until the winner
            # finishes and is then killed — pure duplicated work
            wasted += max(winner_finish - start, 0.0)
            if backup_finish < finish[node]:
                finish[node] = backup_finish
                host_free_at[host] = backup_finish
        return SpeculationResult(
            finish_times=finish, backups_launched=backups, wasted_seconds=wasted
        )
