"""Workload-balance metrics and report formatting shared by experiments,
benchmarks and tests."""

from .balance import (
    imbalance_ratio,
    min_max_ratio,
    coefficient_of_variation,
    improvement,
    speedup,
    summarize,
    BalanceSummary,
)
from .integrity import IntegritySummary
from .recovery import RecoverySummary
from .reporting import format_table, format_kv, format_histogram, series_to_rows
from .service import ServiceSummary

__all__ = [
    "IntegritySummary",
    "RecoverySummary",
    "ServiceSummary",
    "format_histogram",
    "imbalance_ratio",
    "min_max_ratio",
    "coefficient_of_variation",
    "improvement",
    "speedup",
    "summarize",
    "BalanceSummary",
    "format_table",
    "format_kv",
    "series_to_rows",
]
