"""Workload-balance metrics.

The paper reports balance as max/min/avg workloads and standard deviation
(Fig. 10), per-node times (Figs. 1b, 5c, 6) and relative improvements
(Fig. 5a).  These helpers compute them uniformly from any sequence of
per-node values.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence

from ..errors import ConfigError

__all__ = [
    "imbalance_ratio",
    "min_max_ratio",
    "coefficient_of_variation",
    "improvement",
    "speedup",
    "summarize",
    "BalanceSummary",
]


def _as_list(values: Iterable[float]) -> List[float]:
    out = list(values)
    if not out:
        raise ConfigError("metric requires at least one value")
    return out


def imbalance_ratio(values: Iterable[float]) -> float:
    """``max / mean`` — 1.0 is perfect balance; the paper's headline skew."""
    vals = _as_list(values)
    mean = sum(vals) / len(vals)
    if mean == 0:
        return 1.0
    return max(vals) / mean


def min_max_ratio(values: Iterable[float]) -> float:
    """``min / max`` in [0, 1]; 1.0 is perfect balance."""
    vals = _as_list(values)
    mx = max(vals)
    return (min(vals) / mx) if mx else 1.0


def coefficient_of_variation(values: Iterable[float]) -> float:
    """Population std divided by mean (0 for a constant series)."""
    vals = _as_list(values)
    mean = sum(vals) / len(vals)
    if mean == 0:
        return 0.0
    var = sum((v - mean) ** 2 for v in vals) / len(vals)
    return math.sqrt(var) / mean


def improvement(baseline: float, improved: float) -> float:
    """The paper's improvement metric: ``1 - improved/baseline``.

    Positive when ``improved`` is faster/smaller.  Raises on a
    non-positive baseline (no meaningful ratio).
    """
    if baseline <= 0:
        raise ConfigError("baseline must be positive")
    return 1.0 - improved / baseline


def speedup(baseline: float, improved: float) -> float:
    """``baseline / improved`` (e.g. the paper's 4-5x shuffle factor)."""
    if improved <= 0:
        raise ConfigError("improved must be positive")
    return baseline / improved


@dataclass(frozen=True)
class BalanceSummary:
    """min/avg/max/std of a per-node series — Fig. 10's four quantities."""

    minimum: float
    mean: float
    maximum: float
    std: float

    @property
    def imbalance(self) -> float:
        """``max / mean`` (1.0 when mean is 0)."""
        return self.maximum / self.mean if self.mean else 1.0

    def normalized(self, by: float) -> "BalanceSummary":
        """Scale all four statistics by ``1/by`` (Fig. 10 normalizes to the
        largest workload)."""
        if by <= 0:
            raise ConfigError("normalization constant must be positive")
        return BalanceSummary(
            self.minimum / by, self.mean / by, self.maximum / by, self.std / by
        )


def summarize(values: Sequence[float]) -> BalanceSummary:
    """Compute a :class:`BalanceSummary` over per-node values."""
    vals = _as_list(values)
    mean = sum(vals) / len(vals)
    var = sum((v - mean) ** 2 for v in vals) / len(vals)
    return BalanceSummary(
        minimum=min(vals), mean=mean, maximum=max(vals), std=math.sqrt(var)
    )
