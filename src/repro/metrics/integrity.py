"""Integrity observability: what the checksum machinery caught and fixed.

The headline invariant of the integrity subsystem — no injected corruption
reaches analysis output silently — is only auditable if every detection
and repair is counted.  :class:`IntegritySummary` is that ledger: replica
corruptions injected vs detected vs repaired, scrub coverage, stale
metadata entries rebuilt, and the overhead of checkpointed driver
restarts.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from .reporting import format_kv

__all__ = ["IntegritySummary"]


@dataclass(frozen=True)
class IntegritySummary:
    """Aggregated integrity activity of one run.

    Attributes:
        corruptions_injected: replica corruptions the fault plan applied.
        corruptions_detected: checksum mismatches noticed (read path +
            scrub).  Can exceed injections: a rotten remote replica may be
            detected by a read's failover and again by the scrub that
            finally repairs it.
        corruptions_repaired: replicas restored from a verified-good copy;
            one per injected corruption when the run completes.
        scrubbed_replicas: replicas the scrubber re-checksummed.
        scrub_bytes: bytes the scrubber read while verifying.
        stale_entries: metadata entries the plan diverged from their blocks.
        rebuilt_blocks: entries quarantined and rebuilt by validation.
        driver_restarts: mid-job driver deaths survived via checkpoints.
        resume_wasted_seconds: in-flight work lost to those restarts.
    """

    corruptions_injected: int = 0
    corruptions_detected: int = 0
    corruptions_repaired: int = 0
    scrubbed_replicas: int = 0
    scrub_bytes: int = 0
    stale_entries: int = 0
    rebuilt_blocks: int = 0
    driver_restarts: int = 0
    resume_wasted_seconds: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "corruptions_injected",
            "corruptions_detected",
            "corruptions_repaired",
            "scrubbed_replicas",
            "scrub_bytes",
            "stale_entries",
            "rebuilt_blocks",
            "driver_restarts",
            "resume_wasted_seconds",
        ):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be non-negative")

    # -- derived ------------------------------------------------------------------

    @property
    def clean(self) -> bool:
        """Whether the run saw no integrity activity at all."""
        return self == IntegritySummary()

    @property
    def fully_repaired(self) -> bool:
        """Every injected corruption was repaired and all staleness rebuilt."""
        return (
            self.corruptions_repaired >= self.corruptions_injected
            and self.rebuilt_blocks >= self.stale_entries
        )

    # -- rendering ----------------------------------------------------------------

    def format(self) -> str:
        """Human-readable integrity report."""
        return format_kv(
            {
                "corruptions injected": self.corruptions_injected,
                "corruptions detected": self.corruptions_detected,
                "corruptions repaired": self.corruptions_repaired,
                "replicas scrubbed": self.scrubbed_replicas,
                "scrub bytes": self.scrub_bytes,
                "stale metadata entries": self.stale_entries,
                "metadata blocks rebuilt": self.rebuilt_blocks,
                "driver restarts": self.driver_restarts,
                "resume wasted work (s)": self.resume_wasted_seconds,
            },
            title="Integrity summary",
        )
