"""Recovery observability: what surviving a fault plan actually cost.

A chaos run is only credible if its price is visible.  This module is the
reporting end of :mod:`repro.faults`: the attempts histogram (how many
tries each task needed), wasted simulated seconds (partial attempts and
work lost to crashes), re-replicated bytes, and the recovery-makespan
overhead against the failure-free baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..errors import ConfigError
from .reporting import format_histogram, format_kv

__all__ = ["RecoverySummary"]


@dataclass(frozen=True)
class RecoverySummary:
    """Aggregated cost of one fault-injected run.

    Attributes:
        attempts_histogram: ``attempts needed -> task count`` over tasks
            that eventually completed (``{1: n}`` means a clean run).
        wasted_seconds: simulated seconds burned by attempts that did not
            complete (transient partial work + work lost to crashes).
        re_replicated_bytes: bytes HDFS copied to restore replication.
        baseline_makespan: the failure-free run's makespan.
        makespan: the chaos run's makespan.
        dead_nodes: nodes the plan killed.
        blacklisted_nodes: nodes benched for repeated failures.
        degraded_blocks: blocks scheduled without metadata (locality-only
            fallback).
        rescheduled_blocks: distinct blocks whose work was redone on a
            different node after a crash.
        scrub_bytes: bytes the replica scrubber re-checksummed.
        repaired_replicas: rotten replicas repaired (read path + scrub).
        rebuilt_blocks: stale ElasticMap entries rebuilt by validation.
        driver_restarts: mid-job driver deaths survived via checkpoints.
        resume_wasted_seconds: in-flight work lost to driver restarts
            (replayed after resume; part of the recovery bill).
        partition_events: network partitions that started during the run.
        deferred_blocks: distinct blocks whose reads waited for a
            partition to heal (no reachable replica while cut).
        hedged_reads: backup reads issued by the hedged read path.
        hedges_won: hedged reads where the backup beat the primary.
        hedge_wasted_seconds: loser-side seconds burned by hedge races.
        reconstructions: erasure-coded fragments rebuilt from parity
            (node-loss recovery, scrub rebuilds and in-place read repairs).
        reconstructed_bytes: fragment bytes written by those rebuilds —
            the coded analogue of ``re_replicated_bytes``.
        decode_bytes: stripe bytes fed through the GF(256) decoder
            (degraded reads + reconstruction source traffic).
        degraded_reads: coded reads that had to decode through parity.
        quarantined_blocks: coded blocks that lost more than m fragments
            and were failed cleanly with a quarantine record.
    """

    attempts_histogram: Dict[int, int] = field(default_factory=dict)
    wasted_seconds: float = 0.0
    re_replicated_bytes: int = 0
    baseline_makespan: float = 0.0
    makespan: float = 0.0
    dead_nodes: int = 0
    blacklisted_nodes: int = 0
    degraded_blocks: int = 0
    rescheduled_blocks: int = 0
    scrub_bytes: int = 0
    repaired_replicas: int = 0
    rebuilt_blocks: int = 0
    driver_restarts: int = 0
    resume_wasted_seconds: float = 0.0
    partition_events: int = 0
    deferred_blocks: int = 0
    hedged_reads: int = 0
    hedges_won: int = 0
    hedge_wasted_seconds: float = 0.0
    reconstructions: int = 0
    reconstructed_bytes: int = 0
    decode_bytes: int = 0
    degraded_reads: int = 0
    quarantined_blocks: int = 0

    def __post_init__(self) -> None:
        if any(k <= 0 or v < 0 for k, v in self.attempts_histogram.items()):
            raise ConfigError("attempts histogram needs positive keys and counts")
        if self.wasted_seconds < 0 or self.re_replicated_bytes < 0:
            raise ConfigError("recovery costs must be non-negative")
        if (
            self.scrub_bytes < 0
            or self.repaired_replicas < 0
            or self.rebuilt_blocks < 0
            or self.driver_restarts < 0
            or self.resume_wasted_seconds < 0
        ):
            raise ConfigError("integrity recovery costs must be non-negative")
        if (
            self.partition_events < 0
            or self.deferred_blocks < 0
            or self.hedged_reads < 0
            or self.hedges_won < 0
            or self.hedge_wasted_seconds < 0
        ):
            raise ConfigError("gray-failure costs must be non-negative")
        if self.hedges_won > self.hedged_reads:
            raise ConfigError("hedge wins cannot exceed hedges issued")
        if (
            self.reconstructions < 0
            or self.reconstructed_bytes < 0
            or self.decode_bytes < 0
            or self.degraded_reads < 0
            or self.quarantined_blocks < 0
        ):
            raise ConfigError("coded recovery costs must be non-negative")

    # -- derived ------------------------------------------------------------------

    @property
    def total_tasks(self) -> int:
        """Tasks that completed (histogram mass)."""
        return sum(self.attempts_histogram.values())

    @property
    def retried_tasks(self) -> int:
        """Tasks that needed more than one attempt."""
        return sum(v for k, v in self.attempts_histogram.items() if k > 1)

    @property
    def total_attempts(self) -> int:
        """All attempts charged across completed tasks."""
        return sum(k * v for k, v in self.attempts_histogram.items())

    @property
    def recovery_overhead(self) -> float:
        """``(chaos - baseline) / baseline`` makespan fraction."""
        if self.baseline_makespan <= 0:
            return 0.0
        return (self.makespan - self.baseline_makespan) / self.baseline_makespan

    # -- rendering ----------------------------------------------------------------

    def format(self) -> str:
        """Human-readable recovery report."""
        pairs = {
            "tasks completed": self.total_tasks,
            "tasks retried": self.retried_tasks,
            "total attempts": self.total_attempts,
            "wasted work (s)": self.wasted_seconds,
            "re-replicated bytes": self.re_replicated_bytes,
            "dead nodes": self.dead_nodes,
            "blacklisted nodes": self.blacklisted_nodes,
            "degraded blocks": self.degraded_blocks,
            "rescheduled blocks": self.rescheduled_blocks,
            "scrubbed bytes": self.scrub_bytes,
            "repaired replicas": self.repaired_replicas,
            "rebuilt metadata blocks": self.rebuilt_blocks,
            "driver restarts": self.driver_restarts,
            "resume wasted work (s)": self.resume_wasted_seconds,
            **(
                {
                    "partition events": self.partition_events,
                    "deferred blocks": self.deferred_blocks,
                }
                if self.partition_events or self.deferred_blocks
                else {}
            ),
            **(
                {
                    "hedged reads": self.hedged_reads,
                    "hedges won": self.hedges_won,
                    "hedge wasted work (s)": self.hedge_wasted_seconds,
                }
                if self.hedged_reads
                else {}
            ),
            **(
                {
                    "fragment reconstructions": self.reconstructions,
                    "reconstructed bytes": self.reconstructed_bytes,
                    "decoded stripe bytes": self.decode_bytes,
                    "degraded reads": self.degraded_reads,
                    "quarantined blocks": self.quarantined_blocks,
                }
                if self.reconstructions
                or self.decode_bytes
                or self.degraded_reads
                or self.quarantined_blocks
                else {}
            ),
            "baseline makespan (s)": self.baseline_makespan,
            "chaos makespan (s)": self.makespan,
            "recovery overhead": f"{self.recovery_overhead:+.1%}",
        }
        parts = [format_kv(pairs, title="Recovery summary")]
        if self.attempts_histogram:
            parts.append(
                format_histogram(
                    self.attempts_histogram,
                    title="attempts per task",
                    key_name="attempts",
                )
            )
        return "\n\n".join(parts)
