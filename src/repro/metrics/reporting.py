"""Plain-text table formatting for benchmark/experiment output.

The benchmark harness prints each reproduced table/figure as aligned text
rows (the same rows/series the paper reports), so shapes can be eyeballed
straight from ``pytest benchmarks/ --benchmark-only`` output.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence, Tuple

from ..errors import ConfigError

__all__ = ["format_table", "format_kv", "format_histogram", "series_to_rows"]


def _fmt_cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.3g}" if abs(value) < 1000 else f"{value:,.0f}"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence], *, title: str | None = None
) -> str:
    """Render an aligned monospace table.

    >>> print(format_table(["a", "b"], [[1, 2.5]]))
    a  b
    -  ---
    1  2.5
    """
    str_rows: List[List[str]] = [[_fmt_cell(c) for c in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ConfigError(
                f"row width {len(row)} does not match {len(headers)} headers"
            )
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip())
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)


def format_kv(pairs: Mapping[str, object], *, title: str | None = None) -> str:
    """Render key/value pairs one per line, aligned on the colon.

    >>> print(format_kv({"nodes": 4, "makespan": 12.5}, title="run"))
    run
    nodes    : 4
    makespan : 12.5
    >>> format_kv({})
    Traceback (most recent call last):
        ...
    repro.errors.ConfigError: format_kv requires at least one pair
    """
    if not pairs:
        raise ConfigError("format_kv requires at least one pair")
    width = max(len(k) for k in pairs)
    lines = [title] if title else []
    for k, v in pairs.items():
        lines.append(f"{k.ljust(width)} : {_fmt_cell(v)}")
    return "\n".join(lines)


def format_histogram(
    counts: Mapping[int, int],
    *,
    title: str | None = None,
    key_name: str = "value",
    width: int = 24,
) -> str:
    """Render an integer histogram with proportional text bars.

    >>> print(format_histogram({1: 4, 2: 1}, key_name="attempts", width=8))
    attempts  count  bar
    --------  -----  --------
    1         4      ########
    2         1      ##
    """
    if not counts:
        raise ConfigError("format_histogram requires at least one bucket")
    if width <= 0:
        raise ConfigError("width must be positive")
    peak = max(counts.values())
    rows = []
    for key in sorted(counts):
        n = counts[key]
        bar = "#" * max(1 if n else 0, round(width * n / peak)) if peak else ""
        rows.append([key, n, bar])
    return format_table([key_name, "count", "bar"], rows, title=title)


def series_to_rows(
    series: Mapping[object, object], key_name: str, value_name: str
) -> Tuple[List[str], List[List[object]]]:
    """Turn a ``{x: y}`` series into (headers, rows) for :func:`format_table`."""
    headers = [key_name, value_name]
    rows = [[k, v] for k, v in series.items()]
    return headers, rows
