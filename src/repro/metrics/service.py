"""Service observability: what a multi-tenant run admitted, shed and lost.

The reporting end of :mod:`repro.serve`, shaped like
:class:`~repro.metrics.recovery.RecoverySummary`: a frozen block of
counters with the accounting invariants enforced at construction time.
The load-shedding contract — *never a silent drop* — is a type-level
property here: a summary whose submissions do not reconcile with its
admissions and typed rejections refuses to exist.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from ..errors import ConfigError
from .reporting import format_kv

__all__ = ["ServiceSummary"]


@dataclass(frozen=True)
class ServiceSummary:
    """Aggregated outcome of one multi-tenant service run.

    Attributes:
        tenants: tenants configured on the service.
        submitted: jobs offered to admission control.
        admitted: jobs accepted into the fair queue.
        completed: admitted jobs that produced output.
        rejected: typed rejections by reason (``quota`` /
            ``backpressure`` / ``unavailable``).
        cancelled_deadline: jobs cancelled because their absolute deadline
            passed (queued too long or in-flight past it).
        cancelled_timeout: jobs whose in-flight waves were cut by their
            relative timeout.
        requeued_on_crash: in-flight or queued jobs re-admitted after a
            service crash (not drops — they still reach a terminal state).
        degraded_jobs: jobs dispatched in degraded (locality-only) mode.
        deferred_jobs: dispatches postponed until a partition healed.
        appends: ingest batches applied.
        blocks_appended: blocks indexed incrementally from those batches.
        journal_records: frames committed to the metadata journal.
        journal_replays: recoveries that rebuilt metadata from the journal.
        service_crashes: :class:`~repro.faults.ServiceCrash` events hit.
        max_queue_depth: deepest the admission queue ever got.
        makespan: simulated time from first event to last completion.
        wait_mean_by_tenant: mean queue wait per tenant (admit→dispatch).
        wait_p99_s: 99th-percentile queue wait across all dispatches.
        degraded_intervals: ``(start, end)`` windows the service spent in
            degraded mode (metadata-shard outage or gray partition).
        leadership_changes: metadata-plane leader elections completed
            (0 when the plane is unreplicated or the leader never died).
        failover_downtime: simulated seconds the metadata plane spent
            leaderless (crash → detection → election → recovery), summed
            over every failover.
        journal_replica_lag: peak count of committed frames any journal
            replica was missing (bounded by ``journal_records`` — a
            replica can at most lack every committed frame).
        metadata_digest: content digest of the final ElasticMap array.
        results_digest: digest over every completed job's output — the
            byte-identity oracle for rerun and crash/no-crash diffs.
    """

    tenants: int
    submitted: int
    admitted: int
    completed: int
    rejected: Dict[str, int] = field(default_factory=dict)
    cancelled_deadline: int = 0
    cancelled_timeout: int = 0
    requeued_on_crash: int = 0
    degraded_jobs: int = 0
    deferred_jobs: int = 0
    appends: int = 0
    blocks_appended: int = 0
    journal_records: int = 0
    journal_replays: int = 0
    service_crashes: int = 0
    max_queue_depth: int = 0
    makespan: float = 0.0
    wait_mean_by_tenant: Dict[str, float] = field(default_factory=dict)
    wait_p99_s: float = 0.0
    degraded_intervals: Tuple[Tuple[float, float], ...] = ()
    leadership_changes: int = 0
    failover_downtime: float = 0.0
    journal_replica_lag: int = 0
    metadata_digest: str = ""
    results_digest: str = ""

    def __post_init__(self) -> None:
        ints = {
            "tenants": self.tenants,
            "submitted": self.submitted,
            "admitted": self.admitted,
            "completed": self.completed,
            "cancelled_deadline": self.cancelled_deadline,
            "cancelled_timeout": self.cancelled_timeout,
            "requeued_on_crash": self.requeued_on_crash,
            "degraded_jobs": self.degraded_jobs,
            "deferred_jobs": self.deferred_jobs,
            "appends": self.appends,
            "blocks_appended": self.blocks_appended,
            "journal_records": self.journal_records,
            "journal_replays": self.journal_replays,
            "service_crashes": self.service_crashes,
            "max_queue_depth": self.max_queue_depth,
            "leadership_changes": self.leadership_changes,
            "journal_replica_lag": self.journal_replica_lag,
        }
        for name, value in ints.items():
            if value < 0:
                raise ConfigError(f"{name} must be non-negative, got {value}")
        for reason, count in self.rejected.items():
            if count < 0:
                raise ConfigError(f"rejected[{reason!r}] must be non-negative")
        if self.makespan < 0 or self.wait_p99_s < 0:
            raise ConfigError("makespan and waits must be non-negative")
        if self.silent_drops != 0:
            raise ConfigError(
                f"{self.silent_drops} submissions unaccounted for — every job "
                "must be admitted or rejected with a typed reason"
            )
        if self.completed + self.cancelled_deadline + self.cancelled_timeout != self.admitted:
            raise ConfigError(
                "admitted jobs must all reach a terminal state "
                f"(admitted={self.admitted}, completed={self.completed}, "
                f"cancelled={self.cancelled_deadline + self.cancelled_timeout})"
            )
        for start, end in self.degraded_intervals:
            if end <= start:
                raise ConfigError(f"inverted degraded interval [{start}, {end})")
        if self.failover_downtime < 0:
            raise ConfigError(
                f"failover_downtime must be non-negative, got {self.failover_downtime}"
            )
        if self.failover_downtime > 0 and self.leadership_changes == 0:
            raise ConfigError(
                "failover downtime without a leadership change is unaccountable"
            )
        if self.journal_replica_lag > self.journal_records:
            raise ConfigError(
                f"journal_replica_lag ({self.journal_replica_lag}) cannot exceed "
                f"committed journal records ({self.journal_records}) — a replica "
                "can at most miss every committed frame"
            )

    # -- derived ----------------------------------------------------------------

    @property
    def rejected_total(self) -> int:
        return sum(self.rejected.values())

    @property
    def silent_drops(self) -> int:
        """Submissions with no typed outcome; always 0 for a valid summary."""
        return self.submitted - self.admitted - self.rejected_total

    @property
    def admission_rate(self) -> float:
        """Fraction of submissions admitted (1.0 when nothing was offered)."""
        return self.admitted / self.submitted if self.submitted else 1.0

    @property
    def degraded_seconds(self) -> float:
        return sum(end - start for start, end in self.degraded_intervals)

    @property
    def throughput_jobs_per_ks(self) -> float:
        """Completed jobs per 1000 simulated seconds."""
        return 1000.0 * self.completed / self.makespan if self.makespan else 0.0

    # -- rendering ---------------------------------------------------------------

    def format(self) -> str:
        pairs: Dict[str, object] = {
            "tenants": self.tenants,
            "submitted": self.submitted,
            "admitted": f"{self.admitted} ({self.admission_rate:.0%})",
            "completed": self.completed,
        }
        for reason in sorted(self.rejected):
            pairs[f"rejected ({reason})"] = self.rejected[reason]
        if self.cancelled_deadline:
            pairs["cancelled (deadline)"] = self.cancelled_deadline
        if self.cancelled_timeout:
            pairs["cancelled (timeout)"] = self.cancelled_timeout
        if self.requeued_on_crash:
            pairs["requeued on crash"] = self.requeued_on_crash
        pairs["max queue depth"] = self.max_queue_depth
        pairs["p99 wait (s)"] = f"{self.wait_p99_s:.2f}"
        for tenant in sorted(self.wait_mean_by_tenant):
            pairs[f"mean wait {tenant} (s)"] = (
                f"{self.wait_mean_by_tenant[tenant]:.2f}"
            )
        if self.appends:
            pairs["ingest batches"] = self.appends
            pairs["blocks appended"] = self.blocks_appended
        pairs["journal records"] = self.journal_records
        if self.service_crashes:
            pairs["service crashes"] = self.service_crashes
            pairs["journal replays"] = self.journal_replays
        if self.leadership_changes:
            pairs["leadership changes"] = self.leadership_changes
            pairs["failover downtime (s)"] = f"{self.failover_downtime:.2f}"
        if self.journal_replica_lag:
            pairs["peak journal replica lag"] = self.journal_replica_lag
        if self.degraded_jobs or self.degraded_intervals:
            pairs["degraded jobs"] = self.degraded_jobs
            pairs["degraded (s)"] = f"{self.degraded_seconds:.1f}"
            pairs["degraded windows"] = ", ".join(
                f"[{s:.0f}, {e:.0f})" for s, e in self.degraded_intervals
            ) or "none"
        if self.deferred_jobs:
            pairs["deferred dispatches"] = self.deferred_jobs
        pairs["makespan (s)"] = f"{self.makespan:.1f}"
        pairs["throughput (jobs/ks)"] = f"{self.throughput_jobs_per_ks:.1f}"
        pairs["metadata digest"] = self.metadata_digest or "n/a"
        pairs["results digest"] = self.results_digest or "n/a"
        return format_kv(pairs, title="Service summary")
