"""``repro.obs`` — observability: tracing, metrics, profiling, exporters.

The pipeline's instrumentation is threaded through one small bundle,
:class:`Observability`, holding a span :class:`~repro.obs.tracer.Tracer`
and a :class:`~repro.obs.metrics.MetricsRegistry`.  Every instrumented
entry point (simulator, engine, schedulers, DataNet, scrubber, chaos
runner) takes ``obs=NULL_OBS`` by default — the null bundle's tracer and
registry are inert singletons, so a run without observability is
byte-identical to one built before this subsystem existed.

Typical use::

    from repro.obs import Observability
    from repro.obs.export import write_chrome_trace, write_jsonl

    obs = Observability.create()
    datanet = DataNet.build(dataset, obs=obs)
    engine = MapReduceEngine(cluster, obs=obs)
    engine.run_job(dataset, sub_id, job, datanet.schedule(sub_id))
    write_chrome_trace("trace.json", obs.tracer)    # open in Perfetto
    print(obs.metrics.format())

Or from the command line: ``repro trace --workload movielens --out DIR``
and ``--obs DIR`` on ``repro chaos`` / ``repro scrub`` / ``repro
simulate``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    exponential_buckets,
)
from .tracer import NullTracer, Span, Tracer

__all__ = [
    "Observability",
    "NULL_OBS",
    "Tracer",
    "NullTracer",
    "Span",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "exponential_buckets",
]


@dataclass(frozen=True)
class Observability:
    """One run's tracer + metrics registry, passed as a unit."""

    tracer: Tracer = field(default_factory=NullTracer)
    metrics: MetricsRegistry = field(default_factory=NullRegistry)

    @property
    def enabled(self) -> bool:
        """Whether any collection is active (gate extra work on this)."""
        return self.tracer.enabled or self.metrics.enabled

    @classmethod
    def create(cls) -> "Observability":
        """A live bundle: recording tracer + recording registry."""
        return cls(tracer=Tracer(), metrics=MetricsRegistry())


#: The shared disabled bundle — the default for every instrumented API.
NULL_OBS = Observability()
