"""Exporters: JSONL event log, Chrome/Perfetto trace, text snapshot.

Three consumers, three formats:

* :func:`write_jsonl` — one JSON object per line (spans, then metric
  series); greppable, diffable, stream-appendable.
* :func:`to_chrome_trace` / :func:`write_chrome_trace` — the Chrome
  trace-event format (``chrome://tracing`` / https://ui.perfetto.dev):
  ``B``/``E`` duration events on one track per node, in *simulated*
  microseconds when a span carries sim time (wall-relative otherwise).
  A :class:`~repro.sim.tasks.TaskTimeline` can be merged in, so existing
  Gantt data and tracer spans land in a single trace.
* :func:`snapshot_text` — human-readable summary built on
  :mod:`repro.metrics.reporting`.

:func:`validate_chrome_trace` is the schema gate CI runs on emitted
traces: required keys, ``B``/``E`` stack pairing per track, and
monotonically non-decreasing timestamps.
"""

from __future__ import annotations

import json
from typing import IO, Dict, List, Optional, Tuple, Union

from ..errors import ConfigError
from .metrics import MetricsRegistry
from .tracer import Span, Tracer

__all__ = [
    "to_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "snapshot_text",
    "validate_chrome_trace",
    "validate_chrome_trace_file",
]

#: Microseconds per simulated/wall second in trace timestamps.
_US = 1_000_000.0


def _track_of(span: Span) -> str:
    track = span.attrs.get("track")
    return str(track) if track is not None else "main"


def _span_interval(span: Span, epoch: float) -> Tuple[float, float]:
    """(start, end) in seconds on the trace's unified axis.

    Spans with sim time sit on the simulated clock; wall-only spans are
    placed relative to the tracer epoch so both kinds stay non-negative.
    """
    if span.sim_start is not None:
        end = span.sim_end if span.sim_end is not None else span.sim_start
        return span.sim_start, max(end, span.sim_start)
    start = span.wall_start - epoch
    end = (span.wall_end if span.wall_end is not None else span.wall_start) - epoch
    return start, max(end, start)


def to_chrome_trace(
    tracer: Optional[Tracer] = None,
    *,
    timeline=None,
    process_name: str = "repro",
) -> Dict[str, object]:
    """Build a Chrome trace-event dict from spans and/or a task timeline.

    Every span lands on the track named by its ``track`` attribute (the
    instrumentation sets this to the executing node), ``"main"`` when
    unset; timeline tasks land on their node's track.  Within a track,
    events are emitted parent-before-child with timestamps clamped to be
    non-decreasing, so the ``B``/``E`` pairing always forms a well-nested
    stack — the invariant :func:`validate_chrome_trace` checks.
    """
    spans: List[Span] = list(tracer.spans) if tracer is not None else []
    epoch = tracer.epoch if tracer is not None else 0.0
    synthetic: List[Span] = []
    if timeline is not None:
        next_id = max((s.span_id for s in spans), default=0) + 1
        for tid, (start, end) in sorted(timeline.intervals.items()):
            task = timeline.tasks.get(tid)
            span = Span(
                next_id,
                None,
                tid,
                task.kind if task is not None else "task",
                0.0,
                sim_start=start,
                sim_end=end,
            )
            span.attrs["track"] = (
                f"node {task.node}" if task is not None else "timeline"
            )
            if task is not None and task.job:
                span.attrs["job"] = task.job
            next_id += 1
            synthetic.append(span)
    spans = spans + synthetic
    if tracer is not None and getattr(tracer, "_stack", None):
        raise ConfigError("cannot export a trace while spans are still open")

    by_id = {s.span_id: s for s in spans}
    children: Dict[Optional[int], List[Span]] = {}
    for span in spans:
        parent = span.parent_id if span.parent_id in by_id else None
        # keep parent/child on one track; a child recorded onto another
        # track becomes a root of its own track
        if parent is not None and _track_of(by_id[parent]) != _track_of(span):
            parent = None
        children.setdefault(parent, []).append(span)

    tracks = sorted({_track_of(s) for s in spans})
    tid_of = {track: i + 1 for i, track in enumerate(tracks)}

    events: List[Dict[str, object]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "ts": 0,
            "args": {"name": process_name},
        }
    ]
    for track in tracks:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid_of[track],
                "ts": 0,
                "args": {"name": track},
            }
        )

    def emit(span: Span, track: str, cursor: float) -> float:
        start, end = _span_interval(span, epoch)
        start = max(start, cursor)
        tid = tid_of[track]
        args: Dict[str, object] = {
            k: v for k, v in span.attrs.items() if k != "track"
        }
        events.append(
            {
                "name": span.name,
                "cat": span.category,
                "ph": "B",
                "pid": 1,
                "tid": tid,
                "ts": round(start * _US, 3),
                "args": args,
            }
        )
        inner = start
        for child in sorted(
            children.get(span.span_id, []),
            key=lambda s: (_span_interval(s, epoch)[0], s.span_id),
        ):
            if _track_of(child) == track:
                inner = emit(child, track, inner)
        end = max(end, inner)
        events.append(
            {
                "name": span.name,
                "cat": span.category,
                "ph": "E",
                "pid": 1,
                "tid": tid,
                "ts": round(end * _US, 3),
            }
        )
        return end

    for track in tracks:
        cursor = 0.0
        roots = [s for s in children.get(None, []) if _track_of(s) == track]
        for span in sorted(
            roots, key=lambda s: (_span_interval(s, epoch)[0], s.span_id)
        ):
            cursor = emit(span, track, cursor)

    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: str,
    tracer: Optional[Tracer] = None,
    *,
    timeline=None,
    process_name: str = "repro",
) -> int:
    """Serialize :func:`to_chrome_trace` to ``path``; returns bytes written."""
    payload = json.dumps(
        to_chrome_trace(tracer, timeline=timeline, process_name=process_name),
        separators=(",", ":"),
    )
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(payload)
    return len(payload)


def write_jsonl(
    dest: Union[str, IO[str]],
    *,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> int:
    """Write spans then metric series as JSON lines; returns line count."""
    lines: List[str] = []
    if tracer is not None:
        for span in tracer.spans:
            row = {"type": "span", **span.to_dict()}
            lines.append(json.dumps(row, separators=(",", ":"), default=str))
    if metrics is not None:
        for name, data in metrics.snapshot().items():
            row = {
                "type": "metric",
                "name": name,
                "metric_type": data["type"],
                "help": data["help"],
                "series": data["series"],
            }
            lines.append(json.dumps(row, separators=(",", ":"), default=str))
    text = "".join(line + "\n" for line in lines)
    if isinstance(dest, str):
        with open(dest, "w", encoding="utf-8") as fh:
            fh.write(text)
    else:
        dest.write(text)
    return len(lines)


def snapshot_text(
    *,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> str:
    """Human-readable run snapshot (span census + metrics table)."""
    from ..metrics.reporting import format_kv

    parts: List[str] = []
    if tracer is not None and tracer.spans:
        census: Dict[str, object] = {"spans": len(tracer.spans)}
        for category, n in tracer.counts_by_category().items():
            census[f"spans[{category}]"] = n
        parts.append(format_kv(census, title="trace"))
    if metrics is not None:
        parts.append(metrics.format())
    return "\n\n".join(parts) if parts else "(no observability data)"


# -- validation ---------------------------------------------------------------------


def validate_chrome_trace(trace: Dict[str, object]) -> int:
    """Check a trace dict against the Chrome trace-event schema subset we emit.

    Verifies: a ``traceEvents`` list; required keys per event; ``B``/``E``
    events pair up as a well-nested stack per ``(pid, tid)`` with matching
    names; timestamps are non-negative and non-decreasing per track in
    emission order.  Returns the number of ``B``/``E`` events checked.

    Raises:
        ConfigError: on the first violation found.
    """
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        raise ConfigError("trace has no traceEvents list")
    stacks: Dict[Tuple[object, object], List[str]] = {}
    cursors: Dict[Tuple[object, object], float] = {}
    checked = 0
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ConfigError(f"event #{i} is not an object")
        for key in ("name", "ph", "pid", "tid", "ts"):
            if key not in event:
                raise ConfigError(f"event #{i} is missing {key!r}")
        phase = event["ph"]
        if phase not in ("B", "E", "M", "X", "C", "i", "I"):
            raise ConfigError(f"event #{i} has unknown phase {phase!r}")
        if phase not in ("B", "E"):
            continue
        ts = event["ts"]
        if not isinstance(ts, (int, float)) or ts < 0:
            raise ConfigError(f"event #{i} has invalid ts {ts!r}")
        track = (event["pid"], event["tid"])
        if ts < cursors.get(track, 0.0):
            raise ConfigError(
                f"event #{i} ts {ts} goes backwards on track {track}"
            )
        cursors[track] = ts
        stack = stacks.setdefault(track, [])
        if phase == "B":
            stack.append(str(event["name"]))
        else:
            if not stack:
                raise ConfigError(
                    f"event #{i}: E without a matching B on track {track}"
                )
            opened = stack.pop()
            if opened != str(event["name"]):
                raise ConfigError(
                    f"event #{i}: E for {event['name']!r} closes "
                    f"{opened!r} on track {track}"
                )
        checked += 1
    for track, stack in stacks.items():
        if stack:
            raise ConfigError(
                f"track {track} ended with unclosed spans: {stack[:3]}"
            )
    return checked


def validate_chrome_trace_file(path: str) -> int:
    """Load and :func:`validate_chrome_trace` a ``trace.json`` file."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            trace = json.load(fh)
    except ValueError as exc:
        raise ConfigError(f"{path!r} is not valid JSON: {exc}") from exc
    if not isinstance(trace, dict):
        raise ConfigError(f"{path!r} does not contain a trace object")
    return validate_chrome_trace(trace)
