"""In-process metrics: counters, gauges, histograms, and a registry.

Prometheus-shaped but zero-dependency: a metric has a name, optional help
text and a fixed tuple of label names; each distinct label-value
combination is an independent series.  The registry is get-or-create, so
instrumentation sites scattered across the pipeline can share series
without plumbing metric objects around.

Hot-path discipline mirrors :class:`~repro.obs.tracer.NullTracer`: a
:class:`NullRegistry` hands out shared inert metrics whose mutators do
nothing, so disabled metrics cost one attribute access and a no-op call.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..errors import ConfigError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "exponential_buckets",
]

LabelKey = Tuple[str, ...]


def exponential_buckets(start: float, factor: float, count: int) -> Tuple[float, ...]:
    """Upper bounds ``start, start*factor, ...`` for exponential histograms.

    >>> exponential_buckets(1, 2, 4)
    (1.0, 2.0, 4.0, 8.0)
    """
    if start <= 0:
        raise ConfigError("exponential bucket start must be positive")
    if factor <= 1.0:
        raise ConfigError("exponential bucket factor must be > 1")
    if count <= 0:
        raise ConfigError("bucket count must be positive")
    return tuple(float(start) * float(factor) ** i for i in range(count))


class Metric:
    """Base: name + labels + per-series storage."""

    kind = "metric"

    def __init__(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> None:
        if not name:
            raise ConfigError("metric name must be non-empty")
        self.name = name
        self.help = help
        self.labelnames: LabelKey = tuple(labelnames)
        if len(set(self.labelnames)) != len(self.labelnames):
            raise ConfigError(f"duplicate label names on metric {name!r}")

    def _key(self, labels: Mapping[str, object]) -> LabelKey:
        if set(labels) != set(self.labelnames):
            raise ConfigError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[k]) for k in self.labelnames)


class Counter(Metric):
    """Monotonically increasing count (events, bytes, retries...)."""

    kind = "counter"

    def __init__(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> None:
        super().__init__(name, help, labelnames)
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        """Add ``amount`` (must be non-negative) to one series."""
        if amount < 0:
            raise ConfigError(f"counter {self.name!r} cannot decrease")
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        return self._values.get(self._key(labels), 0.0)

    @property
    def total(self) -> float:
        """Sum across every label combination."""
        return sum(self._values.values())

    def series(self) -> Dict[LabelKey, float]:
        return dict(self._values)


class Gauge(Metric):
    """A value that can go up and down (queue depth, live nodes...)."""

    kind = "gauge"

    def __init__(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> None:
        super().__init__(name, help, labelnames)
        self._values: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: object) -> None:
        self._values[self._key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        return self._values.get(self._key(labels), 0.0)

    def series(self) -> Dict[LabelKey, float]:
        return dict(self._values)


class Histogram(Metric):
    """Bucketed distribution with sum/count, fixed or exponential bounds.

    ``buckets`` are strictly increasing finite upper bounds; observations
    above the last bound land in an implicit overflow bucket.  Per-bucket
    counts are *non-cumulative* (unlike Prometheus wire format) because
    they feed :func:`repro.metrics.reporting.format_histogram` directly.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        buckets: Sequence[float],
        help: str = "",
        labelnames: Sequence[str] = (),
    ) -> None:
        super().__init__(name, help, labelnames)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ConfigError(f"histogram {name!r} needs at least one bucket")
        if any(not math.isfinite(b) for b in bounds):
            raise ConfigError("histogram buckets must be finite")
        if any(a >= b for a, b in zip(bounds, bounds[1:])):
            raise ConfigError("histogram buckets must be strictly increasing")
        self.buckets = bounds
        # per-series: (bucket counts [len+1 with overflow], sum, count)
        self._series: Dict[LabelKey, Tuple[List[int], float, int]] = {}

    @classmethod
    def fixed(
        cls,
        name: str,
        buckets: Sequence[float],
        help: str = "",
        labelnames: Sequence[str] = (),
    ) -> "Histogram":
        """Histogram over an explicit bound series."""
        return cls(name, buckets, help, labelnames)

    @classmethod
    def exponential(
        cls,
        name: str,
        *,
        start: float = 0.001,
        factor: float = 4.0,
        count: int = 10,
        help: str = "",
        labelnames: Sequence[str] = (),
    ) -> "Histogram":
        """Histogram over geometrically spaced bounds."""
        return cls(name, exponential_buckets(start, factor, count), help, labelnames)

    def _slot(self, labels: Mapping[str, object]) -> Tuple[List[int], float, int]:
        key = self._key(labels)
        slot = self._series.get(key)
        if slot is None:
            slot = ([0] * (len(self.buckets) + 1), 0.0, 0)
            self._series[key] = slot
        return slot

    def observe(self, value: float, **labels: object) -> None:
        """Record one observation (bucketed by ``value <= bound``)."""
        counts, total, n = self._slot(labels)
        idx = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                idx = i
                break
        counts[idx] += 1
        self._series[self._key(labels)] = (counts, total + value, n + 1)

    def count(self, **labels: object) -> int:
        key = self._key(labels)
        return self._series[key][2] if key in self._series else 0

    def sum(self, **labels: object) -> float:
        key = self._key(labels)
        return self._series[key][1] if key in self._series else 0.0

    def bucket_counts(self, **labels: object) -> Dict[float, int]:
        """``upper bound → observations`` (``math.inf`` = overflow)."""
        key = self._key(labels)
        if key not in self._series:
            return {}
        counts = self._series[key][0]
        out = {bound: counts[i] for i, bound in enumerate(self.buckets)}
        out[math.inf] = counts[-1]
        return out

    def int_counts(self, **labels: object) -> Dict[int, int]:
        """Non-empty finite buckets as ``int(bound) → count``.

        The shape :func:`repro.metrics.reporting.format_histogram` renders;
        requires integer bucket bounds and no overflow observations.

        Raises:
            ConfigError: non-integer bounds, or overflowed observations
                (they have no integer bound to report under).
        """
        if any(b != int(b) for b in self.buckets):
            raise ConfigError(
                f"histogram {self.name!r} has non-integer bucket bounds"
            )
        full = self.bucket_counts(**labels)
        if full.get(math.inf, 0):
            raise ConfigError(
                f"histogram {self.name!r} has observations beyond its last bucket"
            )
        return {int(b): n for b, n in full.items() if math.isfinite(b) and n > 0}

    def series(self) -> Dict[LabelKey, Tuple[List[int], float, int]]:
        return {k: (list(c), s, n) for k, (c, s, n) in self._series.items()}


class _NullCounter(Counter):
    def __init__(self) -> None:
        super().__init__("null")

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        return None

    def value(self, **labels: object) -> float:
        return 0.0


class _NullGauge(Gauge):
    def __init__(self) -> None:
        super().__init__("null")

    def set(self, value: float, **labels: object) -> None:
        return None

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        return None

    def value(self, **labels: object) -> float:
        return 0.0


class _NullHistogram(Histogram):
    def __init__(self) -> None:
        super().__init__("null", (1.0,))

    def observe(self, value: float, **labels: object) -> None:
        return None


class MetricsRegistry:
    """Get-or-create home for every metric in one run."""

    enabled = True

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def _get_or_create(self, cls: type, name: str, *args, **kwargs) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not cls:
                raise ConfigError(
                    f"metric {name!r} already registered as {existing.kind}"
                )
            return existing
        metric = cls(name, *args, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)  # type: ignore[return-value]

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        *,
        buckets: Optional[Sequence[float]] = None,
        help: str = "",
        labelnames: Sequence[str] = (),
    ) -> Histogram:
        """Fixed-bucket histogram; defaults to exponential seconds buckets."""
        if buckets is None:
            buckets = exponential_buckets(0.001, 4.0, 10)
        existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not Histogram:
                raise ConfigError(
                    f"metric {name!r} already registered as {existing.kind}"
                )
            return existing  # type: ignore[return-value]
        metric = Histogram(name, buckets, help, labelnames)
        self._metrics[name] = metric
        return metric

    # -- introspection ---------------------------------------------------------------

    def get(self, name: str) -> Metric:
        """Raises :class:`~repro.errors.ConfigError` for unknown names."""
        metric = self._metrics.get(name)
        if metric is None:
            raise ConfigError(f"no metric named {name!r}")
        return metric

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self) -> Iterator[Metric]:
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Plain-data dump of every series (the JSONL exporter's rows)."""
        out: Dict[str, Dict[str, object]] = {}
        for metric in self._metrics.values():
            if isinstance(metric, Histogram):
                series = [
                    {
                        "labels": dict(zip(metric.labelnames, key)),
                        "count": n,
                        "sum": total,
                        "buckets": {
                            str(b): c
                            for b, c in zip(
                                list(metric.buckets) + ["inf"], counts
                            )
                        },
                    }
                    for key, (counts, total, n) in sorted(metric.series().items())
                ]
            else:
                series = [
                    {"labels": dict(zip(metric.labelnames, key)), "value": v}
                    for key, v in sorted(metric.series().items())  # type: ignore[union-attr]
                ]
            out[metric.name] = {
                "type": metric.kind,
                "help": metric.help,
                "series": series,
            }
        return out

    def format(self) -> str:
        """Plain-text snapshot built on :func:`repro.metrics.reporting.format_table`."""
        from ..metrics.reporting import format_table

        rows: List[List[object]] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                for key, (counts, total, n) in sorted(metric.series().items()):
                    labels = ",".join(
                        f"{k}={v}" for k, v in zip(metric.labelnames, key)
                    )
                    rows.append(
                        [name, metric.kind, labels, f"count={n} sum={total:.6g}"]
                    )
            else:
                for key, value in sorted(metric.series().items()):  # type: ignore[union-attr]
                    labels = ",".join(
                        f"{k}={v}" for k, v in zip(metric.labelnames, key)
                    )
                    rows.append([name, metric.kind, labels, f"{value:.6g}"])
        if not rows:
            return "(no metrics recorded)"
        return format_table(
            ["metric", "type", "labels", "value"], rows, title="metrics snapshot"
        )


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class NullRegistry(MetricsRegistry):
    """Disabled registry: hands out shared inert metrics, records nothing."""

    enabled = False

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return _NULL_COUNTER

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return _NULL_GAUGE

    def histogram(
        self,
        name: str,
        *,
        buckets: Optional[Sequence[float]] = None,
        help: str = "",
        labelnames: Sequence[str] = (),
    ) -> Histogram:
        return _NULL_HISTOGRAM
