"""Wall-clock profiling hooks layered on the tracer + registry.

Where spans answer *what happened on the simulated cluster*, the profiler
answers *where the reproduction process itself spends real time* — the
tool every future perf PR measures itself with.  Both hooks are no-ops
under a disabled :class:`~repro.obs.Observability` bundle.

* :func:`profile_block` — context manager: one wall-timed span plus an
  observation in the shared ``profile_seconds`` histogram, labeled by
  site.
* :func:`profiled` — decorator form for whole functions.
"""

from __future__ import annotations

import functools
import time
from contextlib import contextmanager
from typing import Callable, Iterator, Optional, TypeVar

from .metrics import exponential_buckets

__all__ = ["profile_block", "profiled"]

F = TypeVar("F", bound=Callable)

#: 1 µs .. ~4.4 min in x8 steps — wide enough for builds and whole runs.
_PROFILE_BUCKETS = exponential_buckets(1e-6, 8.0, 10)


def _histogram(obs):
    return obs.metrics.histogram(
        "profile_seconds",
        buckets=_PROFILE_BUCKETS,
        help="wall seconds per profiled site",
        labelnames=("site",),
    )


@contextmanager
def profile_block(obs, site: str, **attrs: object) -> Iterator[None]:
    """Time a block of real work under ``site``.

    Example::

        with profile_block(obs, "datanet.build", blocks=64):
            datanet = DataNet.build(dataset)
    """
    if not obs.enabled:
        yield
        return
    start = time.perf_counter()
    with obs.tracer.span(site, category="profile", **attrs):
        try:
            yield
        finally:
            _histogram(obs).observe(time.perf_counter() - start, site=site)


def profiled(
    obs, site: Optional[str] = None
) -> Callable[[F], F]:
    """Decorator: profile every call of a function under ``site``.

    ``site`` defaults to the function's qualified name.
    """

    def decorate(fn: F) -> F:
        name = site or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with profile_block(obs, name):
                return fn(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return decorate
