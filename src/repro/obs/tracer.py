"""Zero-dependency structured span tracing, simulated-clock aware.

A :class:`Span` is one timed region of work.  Because most of this
library's "time" is *simulated* (per-node clocks, discrete-event loops),
every span carries two intervals:

* **wall time** — ``time.perf_counter()`` seconds, always present; what a
  profiler of the reproduction process itself cares about.
* **sim time** — optional ``(sim_start, sim_end)`` seconds on the modeled
  cluster's clock; what the paper's figures are about.

Spans nest: :meth:`Tracer.span` is a context manager maintaining an
active-span stack, and :meth:`Tracer.record` appends an already-completed
span (event loops learn a task's interval only at its finish event) as a
child of whatever span is currently open.

:class:`NullTracer` is the default everywhere instrumentation is threaded
through the pipeline: every operation is a no-op on shared singletons, so
disabled tracing allocates nothing per call and cannot perturb results.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from ..errors import ConfigError

__all__ = ["Span", "Tracer", "NullTracer"]


class Span:
    """One traced region.  Mutable while open; see module docstring."""

    __slots__ = (
        "span_id",
        "parent_id",
        "name",
        "category",
        "wall_start",
        "wall_end",
        "sim_start",
        "sim_end",
        "attrs",
    )

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        category: str,
        wall_start: float,
        sim_start: Optional[float] = None,
        sim_end: Optional[float] = None,
        attrs: Optional[Dict[str, object]] = None,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.category = category
        self.wall_start = wall_start
        self.wall_end: Optional[float] = None
        self.sim_start = sim_start
        self.sim_end = sim_end
        self.attrs: Dict[str, object] = attrs or {}

    # -- mutation while open -----------------------------------------------------

    def set(self, **attrs: object) -> "Span":
        """Attach (or overwrite) attributes; returns self for chaining."""
        self.attrs.update(attrs)
        return self

    def sim(self, start: float, end: Optional[float] = None) -> "Span":
        """Pin the span's simulated-clock interval."""
        self.sim_start = start
        if end is not None:
            self.sim_end = end
        return self

    # -- derived views -------------------------------------------------------------

    @property
    def wall_duration(self) -> float:
        """Elapsed wall seconds (0 while the span is still open)."""
        if self.wall_end is None:
            return 0.0
        return self.wall_end - self.wall_start

    @property
    def sim_duration(self) -> Optional[float]:
        """Elapsed simulated seconds, when both endpoints are known."""
        if self.sim_start is None or self.sim_end is None:
            return None
        return self.sim_end - self.sim_start

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (the JSONL exporter's row)."""
        out: Dict[str, object] = {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "category": self.category,
            "wall_start": self.wall_start,
            "wall_end": self.wall_end,
        }
        if self.sim_start is not None:
            out["sim_start"] = self.sim_start
        if self.sim_end is not None:
            out["sim_end"] = self.sim_end
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, category={self.category!r}, "
            f"sim=[{self.sim_start}, {self.sim_end}])"
        )


class _OpenSpan:
    """Context manager closing one tracer span on exit."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, *exc_info: object) -> None:
        self._tracer._close(self._span)


class Tracer:
    """Collects a tree of spans across one run.

    Args:
        clock: wall-clock source (overridable for deterministic tests).
    """

    enabled = True

    def __init__(self, *, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self.spans: List[Span] = []
        self._stack: List[Span] = []
        self._next_id = 1
        self.epoch = clock()

    # -- span creation ------------------------------------------------------------

    def span(
        self,
        name: str,
        *,
        category: str = "span",
        sim_start: Optional[float] = None,
        sim_end: Optional[float] = None,
        **attrs: object,
    ) -> _OpenSpan:
        """Open a nested span; use as a context manager.

        The yielded :class:`Span` can be mutated (``set``, ``sim``) while
        open; the wall end time is stamped on exit.
        """
        span = self._new_span(name, category, sim_start, sim_end, attrs)
        self._stack.append(span)
        return _OpenSpan(self, span)

    def record(
        self,
        name: str,
        *,
        category: str = "span",
        sim_start: Optional[float] = None,
        sim_end: Optional[float] = None,
        parent: Optional[int] = None,
        **attrs: object,
    ) -> Span:
        """Append an already-completed span (post-hoc, e.g. from an event loop).

        Parent defaults to the currently open span; pass ``parent=span_id``
        to attach elsewhere (0 forces a root span).
        """
        span = self._new_span(name, category, sim_start, sim_end, attrs, parent=parent)
        span.wall_end = self._clock()
        return span

    def _new_span(
        self,
        name: str,
        category: str,
        sim_start: Optional[float],
        sim_end: Optional[float],
        attrs: Dict[str, object],
        *,
        parent: Optional[int] = None,
    ) -> Span:
        if not name:
            raise ConfigError("span name must be non-empty")
        if parent is None:
            parent_id = self._stack[-1].span_id if self._stack else None
        else:
            parent_id = parent or None
        span = Span(
            self._next_id,
            parent_id,
            name,
            category,
            self._clock(),
            sim_start,
            sim_end,
            dict(attrs) if attrs else None,
        )
        self._next_id += 1
        self.spans.append(span)
        return span

    def _close(self, span: Span) -> None:
        if not self._stack or self._stack[-1] is not span:  # pragma: no cover
            raise ConfigError(f"span {span.name!r} closed out of order")
        self._stack.pop()
        span.wall_end = self._clock()

    # -- rollback ---------------------------------------------------------------------

    def mark(self) -> int:
        """Checkpoint the span list (see :meth:`discard_from`)."""
        return len(self.spans)

    def discard_from(self, mark: int) -> int:
        """Drop every span recorded since ``mark``.

        Lets callers that roll back speculative work (e.g. the chaos
        runner's crash-straddling attempt ledger) keep the trace consistent
        with their accounting.  Returns the number of spans discarded.

        Raises:
            ConfigError: when an *open* span would be discarded.
        """
        doomed = self.spans[mark:]
        if any(s in self._stack for s in doomed):
            raise ConfigError("cannot discard spans that are still open")
        del self.spans[mark:]
        return len(doomed)

    # -- queries -----------------------------------------------------------------------

    @property
    def active(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def find(
        self, *, category: Optional[str] = None, name_prefix: Optional[str] = None
    ) -> List[Span]:
        """Spans matching a category and/or name prefix, in record order."""
        out = []
        for span in self.spans:
            if category is not None and span.category != category:
                continue
            if name_prefix is not None and not span.name.startswith(name_prefix):
                continue
            out.append(span)
        return out

    def children_of(self, span: Span) -> List[Span]:
        """Direct children of one span, in record order."""
        return [s for s in self.spans if s.parent_id == span.span_id]

    def span_tree(self) -> Dict[Optional[int], List[Span]]:
        """``parent_id → children`` adjacency over every recorded span."""
        tree: Dict[Optional[int], List[Span]] = {}
        for span in self.spans:
            tree.setdefault(span.parent_id, []).append(span)
        return tree

    def roots(self) -> List[Span]:
        """Spans with no parent, in record order."""
        return [s for s in self.spans if s.parent_id is None]

    def counts_by_category(self) -> Dict[str, int]:
        """``category → span count`` (the acceptance-criteria view)."""
        out: Dict[str, int] = {}
        for span in self.spans:
            out[span.category] = out.get(span.category, 0) + 1
        return dict(sorted(out.items()))

    def walk(self) -> Iterator[Tuple[int, Span]]:
        """Depth-first ``(depth, span)`` traversal of the span forest."""
        tree = self.span_tree()
        by_id = {s.span_id: s for s in self.spans}

        def visit(span: Span, depth: int) -> Iterator[Tuple[int, Span]]:
            yield depth, span
            for child in tree.get(span.span_id, []):
                yield from visit(child, depth + 1)

        for span in self.spans:
            parent = by_id.get(span.parent_id) if span.parent_id else None
            if parent is None:
                yield from visit(span, 0)


class _NullSpan(Span):
    """Shared inert span: every mutation is a no-op."""

    def __init__(self) -> None:
        super().__init__(0, None, "null", "null", 0.0)
        self.wall_end = 0.0

    def set(self, **attrs: object) -> "Span":
        return self

    def sim(self, start: float, end: Optional[float] = None) -> "Span":
        return self


_NULL_SPAN = _NullSpan()


class _NullOpenSpan:
    """Reusable no-op context manager yielding the shared null span."""

    __slots__ = ()

    def __enter__(self) -> Span:
        return _NULL_SPAN

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_OPEN = _NullOpenSpan()


class NullTracer(Tracer):
    """Disabled tracer: no allocation, no recording, no side effects.

    This is the default threaded through the pipeline, so instrumented
    code paths stay byte-identical to uninstrumented ones when tracing is
    off (guard any *extra work* with ``tracer.enabled``).
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(clock=lambda: 0.0)

    def span(self, name: str, **kwargs: object) -> _NullOpenSpan:  # type: ignore[override]
        return _NULL_OPEN

    def record(self, name: str, **kwargs: object) -> Span:  # type: ignore[override]
        return _NULL_SPAN

    def discard_from(self, mark: int) -> int:
        return 0
