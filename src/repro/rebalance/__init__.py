"""``repro.rebalance`` — fix placement skew instead of scheduling around it.

Everything else in the repo treats a skewed layout as a given: the
schedulers (`DistributionAwareScheduler`, ``gray_schedule``) route tasks
*around* it, and the SkewTune-style baseline migrates data *during* a
job and bills the job for it.  This package closes the loop the DataNet
paper motivates: since the resident ElasticMaps already know exactly how
every sub-dataset is spread, a background optimizer can move replicas
*between* jobs so future jobs start from a balanced layout.

Three pieces, used in sequence::

    profile = WorkloadProfile.uniform(hot_sub_ids)
    planner = RebalancePlanner(dataset, datanet, profile,
                               budget_fraction=0.25, seed=7)
    plan = planner.plan()                      # pure search, no mutation
    cluster.watch_placement(dataset.name, datanet)
    RebalanceExecutor(cluster).apply(plan)     # incremental, crash-safe

See :mod:`~repro.rebalance.costmodel` for the objective,
:mod:`~repro.rebalance.planner` for the seed-deterministic annealer and
its invariants, and :mod:`~repro.rebalance.executor` for the
journal-aware apply path.  ``repro rebalance`` runs the three-way
comparison experiment from the command line.
"""

from .costmodel import CostEvaluator, PlacementCostModel, WorkloadProfile
from .executor import ExecutionReport, RebalanceExecutor, layout_digest
from .planner import Move, RebalancePlan, RebalancePlanner, check_plan_invariants

__all__ = [
    "WorkloadProfile",
    "PlacementCostModel",
    "CostEvaluator",
    "RebalancePlanner",
    "RebalancePlan",
    "Move",
    "check_plan_invariants",
    "RebalanceExecutor",
    "ExecutionReport",
    "layout_digest",
]
