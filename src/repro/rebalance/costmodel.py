"""Placement cost model: score a layout against sub-dataset distributions.

The paper's diagnosis is that analysis latency tracks the *placement* of
each sub-dataset, not the bytes stored per node — a storage-balanced
cluster still straggles when one sub-dataset's blocks pile onto few
nodes.  This module turns that diagnosis into an objective: for each
sub-dataset in a tenant :class:`WorkloadProfile`, read its per-block
byte distribution straight out of the resident ElasticMap (via
:meth:`~repro.core.datanet.DataNet.distribution`) and score a candidate
layout by the makespan a locality-respecting scheduler could achieve on
it.  The total cost is the profile-weighted sum over sub-datasets, so a
rebalancer minimizing it pre-balances exactly the workloads tenants
actually run.

The per-sub-dataset score is the ``max_workload`` of the repo's actual
:class:`~repro.core.scheduler.DistributionAwareScheduler` (Algorithm 1)
run over the candidate layout's bipartite graph — not a statistical
proxy.  That matters twice over: a schedule binds each block to exactly
*one* replica holder, so "expected" fractional-share loads
systematically understate the makespan of layouts where hot blocks
share holders; and Algorithm 1's task-request order means even an
assignment-shaped proxy (LPT greedy) can claim improvements the real
scheduler never realizes.  Scoring with the scheduler itself makes
``cost_after`` the literal max node load the next job's schedule will
have — what the annealer saves is what the job sees.

Algorithm 1 is deterministic (heap tie-breaks on node order, argmin
tie-breaks on block id), so the score — hence every annealing accept
decision — is a pure function of the layout.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..core.bipartite import BipartiteGraph
from ..core.datanet import DataNet
from ..core.scheduler import DistributionAwareScheduler
from ..errors import ConfigError

__all__ = ["WorkloadProfile", "PlacementCostModel", "CostEvaluator"]


class WorkloadProfile:
    """Relative weights of the sub-datasets a tenant population queries.

    Weights need not sum to one; they are relative importances (e.g. query
    frequencies from an access log).  Iteration order is sorted by
    sub-dataset id so every cost fold is deterministic.
    """

    def __init__(self, weights: Mapping[str, float]) -> None:
        if not weights:
            raise ConfigError("workload profile needs at least one sub-dataset")
        for sid, w in weights.items():
            if not (w > 0.0) or not math.isfinite(w):
                raise ConfigError(
                    f"profile weight for {sid!r} must be positive and finite, "
                    f"got {w}"
                )
        self._weights: Dict[str, float] = {
            sid: float(weights[sid]) for sid in sorted(weights)
        }

    @classmethod
    def uniform(cls, sub_ids: Iterable[str]) -> "WorkloadProfile":
        """Equal weight on every listed sub-dataset."""
        return cls({sid: 1.0 for sid in sub_ids})

    def items(self) -> List[Tuple[str, float]]:
        """``(sub_id, weight)`` pairs in sorted sub-id order."""
        return list(self._weights.items())

    def sub_ids(self) -> List[str]:
        return list(self._weights)

    def __contains__(self, sub_id: str) -> bool:
        return sub_id in self._weights

    def __len__(self) -> int:
        return len(self._weights)

    def __repr__(self) -> str:
        return f"WorkloadProfile({self._weights})"


class PlacementCostModel:
    """Scores cluster layouts against a DataNet's sub-dataset metadata.

    Args:
        datanet: resident metadata; per-block sub-dataset bytes are read
            from its ElasticMap, never re-scanned from raw data.
        profile: the tenant workload the layout should serve well.
    """

    def __init__(self, datanet: DataNet, profile: WorkloadProfile) -> None:
        self.datanet = datanet
        self.profile = profile
        # per sub-dataset: block id -> bytes of that sub-dataset in the block
        self._block_bytes: Dict[str, Dict[int, int]] = {}
        for sid, _w in profile.items():
            dist = datanet.distribution(sid)
            self._block_bytes[sid] = {
                bid: dist[bid][0] for bid in sorted(dist) if dist[bid][0] > 0
            }

    def block_bytes(self, sub_id: str) -> Dict[int, int]:
        """Per-block bytes of one profiled sub-dataset."""
        if sub_id not in self._block_bytes:
            raise ConfigError(f"sub-dataset {sub_id!r} not in the profile")
        return dict(self._block_bytes[sub_id])

    def candidate_blocks(self) -> List[int]:
        """Blocks carrying any profiled sub-dataset — the only blocks worth
        moving, in sorted order for deterministic proposal sampling."""
        blocks = set()
        for per_block in self._block_bytes.values():
            blocks.update(per_block)
        return sorted(blocks)

    def evaluator(
        self, placement: Mapping[int, Sequence[int]]
    ) -> "CostEvaluator":
        """A stateful evaluator seeded with ``placement`` (for annealing)."""
        return CostEvaluator(self, placement)

    def cost(self, placement: Mapping[int, Sequence[int]]) -> float:
        """Profile-weighted schedulable makespan of one layout."""
        return self.evaluator(placement).cost

    def per_sub_cost(
        self, placement: Mapping[int, Sequence[int]]
    ) -> Dict[str, float]:
        """Unweighted greedy-assignment max load per sub-dataset (reporting)."""
        ev = self.evaluator(placement)
        return {sid: ev.sub_cost(sid) for sid, _w in self.profile.items()}


class CostEvaluator:
    """Incremental cost tracking while a planner mutates a layout.

    Keeps a private placement copy plus a cached per-sub-dataset
    Algorithm 1 score; :meth:`delta` prices a single replica/fragment
    move by re-scheduling just the sub-datasets that contain the block,
    and :meth:`apply` commits it.
    """

    def __init__(
        self, model: PlacementCostModel, placement: Mapping[int, Sequence[int]]
    ) -> None:
        self.model = model
        self._placement: Dict[int, List[int]] = {
            bid: list(holders) for bid, holders in placement.items()
        }
        self._nodes: List[int] = list(model.datanet.nodes)
        needed = getattr(model.datanet, "_needed", {})
        self._needed: Dict[int, int] = dict(needed)
        self._sub_cost: Dict[str, float] = {
            sid: self._schedule_cost(sid)
            for sid in sorted(model._block_bytes)
        }

    def _schedule_cost(
        self, sub_id: str, override: Optional[Tuple[int, Sequence[int]]] = None
    ) -> float:
        """Algorithm 1's max node load for one sub-dataset on the tracked
        layout.  ``override`` substitutes one block's holder list without
        touching the tracked placement — exactly the graph
        :meth:`~repro.core.datanet.DataNet.schedule` would build, so this
        score IS the schedule the next job gets."""
        weights = self.model._block_bytes[sub_id]
        placement: Dict[int, Sequence[int]] = {}
        for bid in weights:
            if override is not None and bid == override[0]:
                holders: Sequence[int] = override[1]
            else:
                holders = self._placement.get(bid, ())
            if holders:
                placement[bid] = list(holders)
        if not placement:
            return 0.0
        graph = BipartiteGraph(
            placement,
            {bid: weights[bid] for bid in placement},
            nodes=self._nodes,
            needed={b: self._needed[b] for b in placement if b in self._needed},
        )
        return float(DistributionAwareScheduler().schedule(graph).max_workload)

    def sub_cost(self, sub_id: str) -> float:
        """Algorithm 1 max load for one sub-dataset."""
        return self._sub_cost[sub_id]

    @property
    def cost(self) -> float:
        """Profile-weighted total — the annealer's objective."""
        total = 0.0
        for sid, w in self.model.profile.items():
            total += w * self._sub_cost[sid]
        return total

    def delta(self, block_id: int, src: int, dst: int) -> float:
        """Cost change if ``block_id`` moved ``src`` → ``dst`` (no mutation)."""
        holders = self._placement.get(block_id)
        if holders is None:
            return 0.0
        trial = [dst if n == src else n for n in holders]
        change = 0.0
        for sid, w in self.model.profile.items():
            if block_id not in self.model._block_bytes[sid]:
                continue
            after = self._schedule_cost(sid, override=(block_id, trial))
            change += w * (after - self._sub_cost[sid])
        return change

    def apply(self, block_id: int, src: int, dst: int) -> None:
        """Commit a move into the tracked placement and cached scores."""
        holders = self._placement[block_id]
        holders[holders.index(src)] = dst
        for sid, _w in self.model.profile.items():
            if block_id in self.model._block_bytes[sid]:
                self._sub_cost[sid] = self._schedule_cost(sid)
