"""Background executor: apply a :class:`RebalancePlan` move by move.

The executor is the only component that touches live state, and it does
so with the same discipline the serve daemon uses for ingest:

* **journal first** — when wired to a :class:`~repro.serve.journal.
  MetadataJournal`, each moved block's ElasticMap frame is committed
  *before* the placement mutation (write-ahead).  Moves never change
  sub-dataset contents, only block → node edges, so the journal's replay
  remains byte-identical; the append is idempotent (already-committed
  blocks write nothing).
* **idempotent moves** — each move is applied through
  :meth:`~repro.hdfs.cluster.HDFSCluster.move_replica` /
  :meth:`~repro.hdfs.cluster.HDFSCluster.move_fragment`, and re-applying
  a plan after a crash skips moves the catalog already reflects.  A torn
  move (destination stored, catalog still pointing at the source) is
  completed, not re-started, so replaying a crashed apply always lands
  on the same byte-identical layout — :func:`layout_digest` is the
  oracle tests use to prove it.
* **listener propagation** — every mutation funnels through the cluster
  move methods, which notify placement listeners; a DataNet registered
  via :meth:`~repro.hdfs.cluster.HDFSCluster.watch_placement` patches
  its version-keyed bipartite-graph caches incrementally, so jobs racing
  the rebalance schedule against the true layout.

Crash injection (``crash_at_move`` / ``torn``) exists for the chaos
drills: it models a :class:`~repro.faults.ServiceCrash` landing between
— or in the middle of — individual moves.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

from ..errors import ConfigError
from ..hdfs.cluster import DatasetView, HDFSCluster
from ..metrics import format_kv
from ..obs import NULL_OBS, Observability
from .planner import Move, RebalancePlan

__all__ = ["RebalanceExecutor", "ExecutionReport", "layout_digest"]


def layout_digest(dataset: DatasetView) -> str:
    """BLAKE2b digest of the dataset's exact placement — the byte-identity
    oracle for crash-replay tests (same digest ⇔ same layout)."""
    h = hashlib.blake2b(digest_size=16)
    placement = dataset.placement()
    for bid in sorted(placement):
        h.update(repr((bid, tuple(placement[bid]))).encode())
    return h.hexdigest()


@dataclass
class ExecutionReport:
    """What one :meth:`RebalanceExecutor.apply` pass did."""

    applied: int = 0
    skipped: int = 0
    bytes_migrated: int = 0
    completed: bool = False

    def format(self) -> str:
        return format_kv(
            {
                "moves applied": self.applied,
                "moves skipped (already done)": self.skipped,
                "bytes migrated": self.bytes_migrated,
                "completed": self.completed,
            },
            title="rebalance apply",
        )


class RebalanceExecutor:
    """Applies plans against a live cluster, incrementally and crash-safely.

    Args:
        cluster: the cluster to mutate.
        datanet: optional resident metadata; needed only when ``journal``
            is given (frames are read from its ElasticMap).
        journal: optional write-ahead journal (the serve daemon's) that
            must hold each moved block's frame before its move lands.
    """

    def __init__(
        self,
        cluster: HDFSCluster,
        *,
        datanet: Optional["object"] = None,
        journal: Optional["object"] = None,
        epoch: Optional[int] = None,
        obs: Observability = NULL_OBS,
    ) -> None:
        if journal is not None and datanet is None:
            raise ConfigError("journaled execution needs the datanet too")
        if epoch is not None and epoch < 0:
            raise ConfigError(f"fencing epoch must be non-negative, got {epoch}")
        self.cluster = cluster
        self.datanet = datanet
        self.journal = journal
        # Fencing token stamped into every mutation this executor applies;
        # a deposed leader's executor is rejected by the cluster fence.
        self.epoch = epoch
        self.obs = obs

    # -- single move ----------------------------------------------------------------

    def _move_state(self, move: Move) -> str:
        """Where a move stands: 'pending', 'done', or 'torn'."""
        holders = self.cluster.namenode.block_locations(
            move.dataset, move.block_id
        )
        if move.src not in holders and move.dst in holders:
            return "done"
        dst_node = self.cluster.datanodes.get(move.dst)
        if dst_node is not None and move.src in holders:
            stored = (
                dst_node.has_fragment(move.dataset, move.block_id)
                if move.fragment_index is not None
                else dst_node.has_replica(move.dataset, move.block_id)
            )
            if stored:
                return "torn"
        return "pending"

    def _complete_torn(self, move: Move) -> None:
        """Finish a move whose destination write landed before a crash."""
        self.cluster.check_fence(
            self.epoch, f"complete_torn({move.dataset!r}, {move.block_id})"
        )
        holders = list(
            self.cluster.namenode.block_locations(move.dataset, move.block_id)
        )
        src_node = self.cluster.datanodes[move.src]
        if move.fragment_index is not None:
            if src_node.has_fragment(move.dataset, move.block_id):
                src_node.drop_fragment(move.dataset, move.block_id)
            holders[move.fragment_index] = move.dst
        else:
            if src_node.has_replica(move.dataset, move.block_id):
                src_node.drop_replica(move.dataset, move.block_id)
            holders[holders.index(move.src)] = move.dst
        self.cluster.namenode.update_replicas(
            move.dataset, move.block_id, holders
        )
        self.cluster.notify_placement(move.dataset)

    def _store_dst_only(self, move: Move) -> None:
        """The first half of a move: write the destination copy, nothing else
        (used to inject a torn mid-move crash)."""
        dst_node = self.cluster.datanodes[move.dst]
        if move.fragment_index is not None:
            coded = self.cluster.coded_block(move.dataset, move.block_id)
            dst_node.store_fragment(move.dataset, coded, move.fragment_index)
        else:
            block = self.cluster.get_block(move.dataset, move.block_id)
            dst_node.store_replica(move.dataset, block)

    def _journal_move(self, move: Move) -> None:
        if self.journal is None:
            return
        self.journal.append_block(self.datanet.elasticmap[move.block_id])

    # -- plan application -----------------------------------------------------------

    def apply(
        self,
        plan: RebalancePlan,
        *,
        crash_at_move: Optional[int] = None,
        torn: bool = False,
    ) -> ExecutionReport:
        """Apply ``plan``; re-applying after a crash resumes idempotently.

        Args:
            plan: the move list to realize.
            crash_at_move: stop before applying the move at this index
                (models a ``ServiceCrash`` between moves); the report
                comes back ``completed=False``.
            torn: with ``crash_at_move``, additionally write the crashed
                move's destination copy but leave the catalog untouched —
                the half-applied state a mid-move crash leaves behind.
        """
        if torn and crash_at_move is None:
            raise ConfigError("torn crashes need crash_at_move")
        report = ExecutionReport()
        with self.obs.tracer.span(
            "rebalance/apply", category="rebalance", moves=plan.num_moves
        ):
            for i, move in enumerate(plan.moves):
                if crash_at_move is not None and i == crash_at_move:
                    if torn:
                        self._journal_move(move)
                        self._store_dst_only(move)
                    return report
                state = self._move_state(move)
                if state == "done":
                    report.skipped += 1
                    continue
                self._journal_move(move)
                if state == "torn":
                    self._complete_torn(move)
                elif move.fragment_index is not None:
                    self.cluster.move_fragment(
                        move.dataset,
                        move.block_id,
                        move.src,
                        move.dst,
                        epoch=self.epoch,
                    )
                else:
                    self.cluster.move_replica(
                        move.dataset,
                        move.block_id,
                        move.src,
                        move.dst,
                        epoch=self.epoch,
                    )
                report.applied += 1
                report.bytes_migrated += move.nbytes
        report.completed = True
        if self.obs.metrics.enabled:
            self.obs.metrics.counter(
                "rebalance_moves_total", help="replica/fragment moves applied"
            ).inc(report.applied)
            self.obs.metrics.counter(
                "rebalance_bytes_migrated_total",
                help="bytes migrated by rebalancing",
            ).inc(report.bytes_migrated)
        return report
