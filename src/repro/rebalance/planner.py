"""Seed-deterministic simulated-annealing search over replica-move plans.

The planner owns the *search*: starting from the cluster's current
layout it proposes single replica moves (or single coded-fragment moves)
and walks downhill on the :mod:`~repro.rebalance.costmodel` objective,
with a geometrically cooled temperature admitting occasional uphill
steps to escape local minima.  The walk is a pure function of
``(layout, profile, seed)`` — proposals come from one
``numpy.random.default_rng(seed)`` stream and every fold iterates in
sorted order — so planning twice yields byte-identical plans.

Three invariants gate every proposal:

* **distinctness** — no two replicas (or fragments) of a block on one
  node, matching the NameNode's own catalog validation;
* **coded geometry** — a fragment move substitutes the destination at
  the *same stripe index* the source held, and the resulting holder list
  keeps the rack-spread bound (no rack holds more than
  ``ceil((k+m)/racks)`` fragments of one stripe), mirroring
  :class:`~repro.hdfs.placement.FragmentPlacement`;
* **budget** — the *net* bytes that would have to migrate to reach the
  candidate layout never exceed the migration budget.  Net, not
  cumulative: annealing routinely moves a replica out and back, and a
  reversal refunds its bytes rather than burning budget twice.

The emitted :class:`RebalancePlan` is the net per-block diff between the
original and final layouts — the minimal move list an executor must
apply — never the accept/reject history of the walk.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigError
from ..hdfs.cluster import DatasetView
from ..metrics import format_kv
from ..obs import NULL_OBS, Observability
from .costmodel import PlacementCostModel, WorkloadProfile

__all__ = ["Move", "RebalancePlan", "RebalancePlanner", "check_plan_invariants"]


@dataclass(frozen=True)
class Move:
    """One replica (or coded fragment) migration.

    ``fragment_index`` is the stripe slot the destination takes over for
    coded blocks, ``None`` for plain replicas.
    """

    dataset: str
    block_id: int
    src: int
    dst: int
    nbytes: int
    fragment_index: Optional[int] = None

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ConfigError(f"move of block {self.block_id} goes nowhere")
        if self.nbytes <= 0:
            raise ConfigError(
                f"move of block {self.block_id} must carry positive bytes"
            )


@dataclass(frozen=True)
class RebalancePlan:
    """The net layout diff the annealer settled on, bounded by a budget."""

    dataset: str
    seed: int
    budget_bytes: int
    cost_before: float
    cost_after: float
    moves: Tuple[Move, ...] = field(default_factory=tuple)

    @property
    def total_bytes(self) -> int:
        """Bytes that migrate when the plan is applied in full."""
        return sum(m.nbytes for m in self.moves)

    @property
    def num_moves(self) -> int:
        return len(self.moves)

    @property
    def improvement(self) -> float:
        """Fractional cost reduction (0 when the layout was left alone)."""
        if self.cost_before <= 0.0:
            return 0.0
        return 1.0 - self.cost_after / self.cost_before

    def format(self) -> str:
        return format_kv(
            {
                "dataset": self.dataset,
                "seed": self.seed,
                "moves": self.num_moves,
                "bytes to migrate": self.total_bytes,
                "budget bytes": self.budget_bytes,
                "cost before": round(self.cost_before, 2),
                "cost after": round(self.cost_after, 2),
                "improvement": f"{100.0 * self.improvement:.1f}%",
            },
            title="rebalance plan",
        )


def _net_diff_bytes(
    orig: Sequence[int],
    cur: Sequence[int],
    *,
    coded: bool,
    block_bytes: int,
    fragment_bytes: int,
) -> int:
    """Bytes needed to migrate from ``orig`` to ``cur`` for one block."""
    if coded:
        changed = sum(1 for o, c in zip(orig, cur) if o != c)
        return changed * fragment_bytes
    return len(set(orig) - set(cur)) * block_bytes


class RebalancePlanner:
    """Searches for a better layout of one dataset under a byte budget.

    Args:
        dataset: the dataset view whose placement is being optimized (the
            planner never mutates it — it works on a copy).
        datanet: resident metadata for the dataset (distributions are
            read from its ElasticMap).
        profile: tenant workload to optimize for.
        budget_bytes: migration budget; defaults to ``budget_fraction``
            of the dataset's logical bytes.
        budget_fraction: used only when ``budget_bytes`` is None.
        seed: RNG seed — same seed, same layout, same plan, always.
        iterations: annealing proposals to evaluate.
    """

    def __init__(
        self,
        dataset: DatasetView,
        datanet: "object",
        profile: WorkloadProfile,
        *,
        budget_bytes: Optional[int] = None,
        budget_fraction: float = 0.25,
        seed: int = 0,
        iterations: int = 4000,
        obs: Observability = NULL_OBS,
    ) -> None:
        if budget_bytes is None:
            if not (0.0 < budget_fraction <= 1.0):
                raise ConfigError(
                    f"budget_fraction must be in (0, 1], got {budget_fraction}"
                )
            budget_bytes = int(budget_fraction * dataset.total_bytes)
        if budget_bytes < 0:
            raise ConfigError(f"budget_bytes must be >= 0, got {budget_bytes}")
        if iterations < 0:
            raise ConfigError(f"iterations must be >= 0, got {iterations}")
        self.dataset = dataset
        self.datanet = datanet
        self.profile = profile
        self.budget_bytes = budget_bytes
        self.seed = seed
        self.iterations = iterations
        self.obs = obs
        self.model = PlacementCostModel(datanet, profile)

    # -- invariant checks ---------------------------------------------------------

    def _rack_counts(self, holders: Sequence[int]) -> Dict[int, int]:
        counts: Dict[int, int] = {}
        for n in holders:
            rk = self.dataset.cluster.rack_of(n)
            counts[rk] = counts.get(rk, 0) + 1
        return counts

    def _fragment_move_legal(
        self, holders: Sequence[int], index: int, dst: int
    ) -> bool:
        """Does substituting ``dst`` at stripe ``index`` keep rack spread?"""
        if dst in holders:
            return False
        cluster = self.dataset.cluster
        racks = {cluster.rack_of(n) for n in cluster.nodes}
        bound = math.ceil(len(holders) / max(len(racks), 1))
        counts = self._rack_counts(holders)
        counts[cluster.rack_of(holders[index])] -= 1
        dst_rack = cluster.rack_of(dst)
        return counts.get(dst_rack, 0) + 1 <= bound

    # -- planning -----------------------------------------------------------------

    def plan(self) -> RebalancePlan:
        """Run the annealing search and emit the net-diff plan."""
        with self.obs.tracer.span("rebalance/plan", category="rebalance"):
            plan = self._plan_inner()
        if self.obs.metrics.enabled:
            self.obs.metrics.gauge(
                "rebalance_cost_before", help="layout cost before rebalancing"
            ).set(plan.cost_before)
            self.obs.metrics.gauge(
                "rebalance_cost_after", help="layout cost after rebalancing"
            ).set(plan.cost_after)
        return plan

    def _plan_inner(self) -> RebalancePlan:
        view = self.dataset
        coding = view.coding
        coded = coding is not None
        orig: Dict[int, Tuple[int, ...]] = {
            bid: tuple(holders) for bid, holders in view.placement().items()
        }
        cur: Dict[int, List[int]] = {bid: list(orig[bid]) for bid in orig}
        candidates = [b for b in self.model.candidate_blocks() if b in cur]
        nodes = list(view.cluster.nodes)  # sorted
        evaluator = self.model.evaluator(cur)
        cost_before = evaluator.cost
        if not candidates or len(nodes) < 2 or self.budget_bytes == 0:
            return RebalancePlan(
                dataset=view.name,
                seed=self.seed,
                budget_bytes=self.budget_bytes,
                cost_before=cost_before,
                cost_after=cost_before,
                moves=(),
            )

        block_bytes = {
            bid: view.cluster.namenode.block_meta(view.name, bid).size_bytes
            for bid in candidates
        }
        frag_bytes = {
            bid: view.coded_block(bid).fragment_nbytes if coded else 0
            for bid in candidates
        }
        diff_bytes = {bid: 0 for bid in candidates}
        spent = 0

        rng = np.random.default_rng(self.seed)
        temp = 0.05 * max(cost_before, 1e-9)
        cooling = (1e-3) ** (1.0 / max(self.iterations, 1))

        for _ in range(self.iterations):
            bid = candidates[int(rng.integers(len(candidates)))]
            holders = cur[bid]
            slot = int(rng.integers(len(holders)))
            dst = nodes[int(rng.integers(len(nodes)))]
            src = holders[slot]
            if dst == src:
                temp *= cooling
                continue
            if coded:
                # moving a fragment onto a *different* original holder would
                # make the net diff a permutation cycle no sequential move
                # list can realize — and permutations are cost-neutral, so
                # excluding them loses nothing
                legal = (
                    dst not in orig[bid] or orig[bid][slot] == dst
                ) and self._fragment_move_legal(holders, slot, dst)
            else:
                legal = dst not in holders
            if not legal:
                temp *= cooling
                continue
            # price the budget on the *net* diff this block would end at
            trial = list(holders)
            trial[slot] = dst
            new_diff = _net_diff_bytes(
                orig[bid],
                trial,
                coded=coded,
                block_bytes=block_bytes[bid],
                fragment_bytes=frag_bytes[bid],
            )
            if spent - diff_bytes[bid] + new_diff > self.budget_bytes:
                temp *= cooling
                continue
            delta = evaluator.delta(bid, src, dst)
            accept = delta < 0.0 or (
                temp > 0.0 and float(rng.random()) < math.exp(-delta / temp)
            )
            if accept:
                evaluator.apply(bid, src, dst)
                holders[slot] = dst
                spent += new_diff - diff_bytes[bid]
                diff_bytes[bid] = new_diff
            temp *= cooling

        moves = self._emit_moves(
            orig, cur, coded=coded, block_bytes=block_bytes, frag_bytes=frag_bytes
        )
        return RebalancePlan(
            dataset=view.name,
            seed=self.seed,
            budget_bytes=self.budget_bytes,
            cost_before=cost_before,
            cost_after=evaluator.cost,
            moves=tuple(moves),
        )

    def _emit_moves(
        self,
        orig: Mapping[int, Tuple[int, ...]],
        cur: Mapping[int, List[int]],
        *,
        coded: bool,
        block_bytes: Mapping[int, int],
        frag_bytes: Mapping[int, int],
    ) -> List[Move]:
        """The net per-block diff as an ordered, executable move list."""
        moves: List[Move] = []
        for bid in sorted(cur):
            before, after = orig[bid], cur[bid]
            if list(before) == list(after):
                continue
            if coded:
                for i, (o, c) in enumerate(zip(before, after)):
                    if o != c:
                        moves.append(
                            Move(
                                dataset=self.dataset.name,
                                block_id=bid,
                                src=o,
                                dst=c,
                                nbytes=frag_bytes[bid],
                                fragment_index=i,
                            )
                        )
            else:
                removed = sorted(set(before) - set(after))
                added = sorted(set(after) - set(before))
                for o, c in zip(removed, added):
                    moves.append(
                        Move(
                            dataset=self.dataset.name,
                            block_id=bid,
                            src=o,
                            dst=c,
                            nbytes=block_bytes[bid],
                        )
                    )
        return moves


def check_plan_invariants(
    plan: RebalancePlan,
    placement: Mapping[int, Sequence[int]],
    *,
    num_racks: int = 1,
    rack_of=None,
) -> Dict[int, Tuple[int, ...]]:
    """Apply ``plan`` to a copy of ``placement``, asserting every invariant.

    Raises :class:`~repro.errors.ConfigError` on the first violation:
    duplicate holders, a fragment move that changes its stripe index's
    slot inconsistently, rack-spread breakage, or budget overrun.
    Returns the resulting placement so callers can compare layouts.
    """
    if rack_of is None:
        rack_of = lambda n: n % max(num_racks, 1)  # noqa: E731
    result: Dict[int, List[int]] = {
        bid: list(holders) for bid, holders in placement.items()
    }
    if plan.total_bytes > plan.budget_bytes:
        raise ConfigError(
            f"plan migrates {plan.total_bytes} bytes, budget is "
            f"{plan.budget_bytes}"
        )
    for move in plan.moves:
        if move.block_id not in result:
            raise ConfigError(f"plan touches unknown block {move.block_id}")
        holders = result[move.block_id]
        if move.dst in holders:
            raise ConfigError(
                f"block {move.block_id}: destination {move.dst} already holds "
                f"a replica"
            )
        if move.fragment_index is not None:
            idx = move.fragment_index
            if idx < 0 or idx >= len(holders):
                raise ConfigError(
                    f"block {move.block_id}: stripe index {idx} out of range"
                )
            if holders[idx] != move.src:
                raise ConfigError(
                    f"block {move.block_id}: fragment {idx} held by "
                    f"{holders[idx]}, move claims {move.src}"
                )
            holders[idx] = move.dst
        else:
            if move.src not in holders:
                raise ConfigError(
                    f"block {move.block_id}: source {move.src} holds no replica"
                )
            holders[holders.index(move.src)] = move.dst
        if len(set(holders)) != len(holders):
            raise ConfigError(
                f"block {move.block_id}: duplicate holder after move"
            )
    # Rack spread is checked on each block's *final* holder list: the
    # executor stores the destination copy before dropping the source (as
    # re-replication repair does), so mid-plan states may transiently
    # exceed the bound, but the layout a plan leaves behind must not.
    if num_racks > 1:
        coded_blocks = {
            m.block_id for m in plan.moves if m.fragment_index is not None
        }
        for bid in sorted(coded_blocks):
            holders = result[bid]
            bound = math.ceil(len(holders) / num_racks)
            counts: Dict[int, int] = {}
            for n in holders:
                counts[rack_of(n)] = counts.get(rack_of(n), 0) + 1
            worst = max(counts.values())
            if worst > bound:
                raise ConfigError(
                    f"block {bid}: rack spread broken "
                    f"({worst} fragments on one rack, bound {bound})"
                )
    return {bid: tuple(holders) for bid, holders in result.items()}
