"""Quorum-replicated metadata plane: replicated journal + leader election.

The last single point of failure in the serve stack was the metadata
journal — one copy behind one implicit leader.  This package replaces it
with the classic NameNode-HA shape: :class:`ReplicatedJournal` commits
each checksummed frame at majority quorum with ``(epoch, seq)`` stamps
and anti-entropy catch-up, :class:`LeaderElector` runs deterministic
Raft-lite elections on the simulated clock, and the fencing epoch the
journal quorum promises is the same token the cluster mutation path
checks — so a deposed leader's writes are rejected everywhere, not just
at the journal.

The package deliberately imports nothing from ``repro.serve``: the serve
daemon layers on top of it, not the other way around.
"""

from .election import ElectionRecord, ElectionResult, LeaderElector, detection_delay
from .journal import JournalReplica, QuorumFrame, ReplicatedJournal

__all__ = [
    "ElectionRecord",
    "ElectionResult",
    "JournalReplica",
    "LeaderElector",
    "QuorumFrame",
    "ReplicatedJournal",
    "detection_delay",
]
