"""Seed-deterministic Raft-lite leader election on the simulated clock.

The serve daemon needs exactly one property from its elector: after the
current leader is declared dead, some surviving node must win a majority
of votes for a fresh term, and **no term may ever produce two leaders**.
This module implements the Raft timeout lottery deterministically:

* every ``(node, term)`` pair draws an election timeout from a seeded
  hash — the node whose timeout fires first becomes the term's candidate;
* a voter grants its vote iff the candidate's request arrives (one
  simulated RTT after the candidate's timeout) before the voter's own
  timeout fires — otherwise the voter has already become a candidate
  itself and the term splits, exactly like real Raft split votes;
* votes are counted against the **total** membership, not the live set,
  so a minority partition can never elect anyone;
* terms are strictly increasing and a term elects at most one candidate
  by construction (ties on the timeout draw are broken by node name),
  which the hypothesis suite asserts over random membership/crash mixes.

The elapsed simulated time of the whole election — every split term plus
the winning one — is returned so the service can charge it to failover
downtime, making election latency visible in the summary and metrics.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..errors import ConfigError, QuorumLostError

__all__ = ["ElectionRecord", "ElectionResult", "LeaderElector"]

#: Election timeout window, in simulated seconds.  Chosen Raft-style:
#: the spread (2x) is much larger than the RTT, so split votes are rare
#: but reachable, and the hypothesis suite sees both branches.
_TIMEOUT_LO = 0.15
_TIMEOUT_HI = 0.30
#: One simulated request round trip (vote request + grant).
_RTT_S = 0.02


@dataclass(frozen=True)
class ElectionRecord:
    """One term's outcome: its candidate, votes, and verdict."""

    term: int
    candidate: str
    votes: int
    won: bool


@dataclass(frozen=True)
class ElectionResult:
    """A completed election: the new leader, term, and time it cost."""

    leader: str
    term: int
    elapsed_s: float
    rounds: Tuple[ElectionRecord, ...] = field(default_factory=tuple)


class LeaderElector:
    """Deterministic term/vote bookkeeping for the metadata leader.

    Args:
        nodes: full voting membership (fixed for the elector's lifetime).
        seed: seeds every timeout draw; same seed, same elections.
    """

    def __init__(self, nodes: Sequence[str], *, seed: int = 0) -> None:
        members = sorted(set(nodes))
        if len(members) < 1:
            raise ConfigError("an elector needs at least one voting node")
        if len(members) != len(tuple(nodes)):
            raise ConfigError("voting membership must not repeat nodes")
        self.nodes: Tuple[str, ...] = tuple(members)
        self.seed = int(seed)
        self.term = 0
        self.leader: str = ""
        self.history: List[ElectionRecord] = []
        self._leaders_by_term: Dict[int, str] = {}

    @property
    def majority(self) -> int:
        return len(self.nodes) // 2 + 1

    def timeout_of(self, node: str, term: int) -> float:
        """The seeded election timeout ``node`` draws for ``term``."""
        digest = hashlib.blake2b(
            f"elect/{self.seed}/{node}/{term}".encode(), digest_size=8
        ).digest()
        u = int.from_bytes(digest, "little") / 2**64
        return _TIMEOUT_LO + u * (_TIMEOUT_HI - _TIMEOUT_LO)

    def elect(
        self, live: Sequence[str], *, max_terms: int = 64
    ) -> ElectionResult:
        """Run terms until some live node wins a majority.

        Args:
            live: nodes currently up and mutually reachable.  Must be a
                subset of the membership.
            max_terms: safety bound on consecutive split terms.

        Raises:
            QuorumLostError: the live set is below a majority of the
                total membership, or every term split (cannot happen with
                ``max_terms`` this large, but the bound keeps the loop
                total).
        """
        live_set = sorted(set(live))
        unknown = [n for n in live_set if n not in self.nodes]
        if unknown:
            raise ConfigError(f"non-member node(s) cannot vote: {unknown}")
        if len(live_set) < self.majority:
            raise QuorumLostError(
                f"{len(live_set)}/{len(self.nodes)} voters live; a leader "
                f"needs {self.majority}",
                acks=len(live_set),
                quorum=self.majority,
            )
        elapsed = 0.0
        rounds: List[ElectionRecord] = []
        for _ in range(max_terms):
            self.term += 1
            touts = {n: self.timeout_of(n, self.term) for n in live_set}
            # The first timeout to fire makes that node this term's (only)
            # candidate; name order breaks exact ties deterministically.
            candidate = min(live_set, key=lambda n: (touts[n], n))
            t_c = touts[candidate]
            # A voter grants iff the request beats its own timeout.
            votes = sum(
                1
                for n in live_set
                if n == candidate or t_c + _RTT_S <= touts[n]
            )
            won = votes >= self.majority
            record = ElectionRecord(
                term=self.term, candidate=candidate, votes=votes, won=won
            )
            rounds.append(record)
            self.history.append(record)
            elapsed += t_c + 2 * _RTT_S
            if won:
                assert self.term not in self._leaders_by_term
                self._leaders_by_term[self.term] = candidate
                self.leader = candidate
                return ElectionResult(
                    leader=candidate,
                    term=self.term,
                    elapsed_s=elapsed,
                    rounds=tuple(rounds),
                )
        raise QuorumLostError(
            f"no leader after {max_terms} terms (pathological split votes)",
            acks=0,
            quorum=self.majority,
        )

    def leaders_by_term(self) -> Dict[int, str]:
        """Every term that elected a leader — the ≤1-leader-per-term oracle."""
        return dict(self._leaders_by_term)


def detection_delay(mean_interval_s: float, threshold: float) -> float:
    """Phi-accrual detection latency for a silent leader.

    The :class:`~repro.faults.health.HealthDetector` suspicion statistic
    is ``elapsed / (mean_interval * ln 10)``; it crosses ``threshold``
    after ``threshold * mean_interval * ln 10`` seconds of silence.
    """
    if mean_interval_s <= 0 or threshold <= 0:
        raise ConfigError("detection needs positive interval and threshold")
    return threshold * mean_interval_s * math.log(10.0)
