"""Quorum-replicated write-ahead journal for the metadata plane.

The PR 8 :class:`~repro.serve.journal.MetadataJournal` is a single copy
behind a single implicit leader — one lost process and the committed
metadata is gone with it.  This module replaces that with the HDFS
JournalNode / Raft-log shape:

* every committed frame carries a monotonic ``(epoch, seq)`` pair —
  ``epoch`` is the writing leader's fencing token, ``seq`` a dense
  per-journal sequence number, so any replica can detect gaps in what it
  holds and any reader can order frames without trusting the writer;
* :class:`ReplicatedJournal` fans each frame out to N
  :class:`JournalReplica` logs and acknowledges an append only once a
  majority (``n // 2 + 1``) holds it.  A minority of crashed or
  partitioned replicas never blocks commits and never loses them;
* replicas that fall behind (crash, partition, torn tail) catch up via
  **anti-entropy frame transfer**: the missing ``seq`` range is copied
  from the committed log before the next append lands, so logs are
  always dense prefixes and divergence is structurally impossible;
* **fencing**: :meth:`ReplicatedJournal.fence` has a majority promise a
  new epoch, after which any append stamped with an older epoch is
  rejected with :class:`~repro.errors.StaleLeaderError` — the split-brain
  guard that lets a deposed leader fail cleanly instead of corrupting
  the layout.

Everything is synchronous and deterministic: the same append sequence
over the same replica fault script yields byte-identical logs, which is
what lets the failover drills diff digests bit for bit.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import ConfigError, QuorumLostError, StaleLeaderError, TornFrameError

__all__ = ["QuorumFrame", "JournalReplica", "ReplicatedJournal"]

MAGIC = b"RPQ1"
KIND_BLOCK = 1
#: length | kind | block id | epoch | seq  (all little-endian)
_FRAME_HEAD = struct.Struct("<IBQQQ")
_CHECKSUM = struct.Struct("<Q")


def _frame_checksum(head: bytes, payload: bytes) -> int:
    digest = hashlib.blake2b(head + payload, digest_size=8).digest()
    return int.from_bytes(digest, "little")


@dataclass(frozen=True)
class QuorumFrame:
    """One replicated journal frame: a block payload stamped ``(epoch, seq)``."""

    epoch: int
    seq: int
    block_id: int
    payload: bytes

    def __post_init__(self) -> None:
        if self.epoch < 0 or self.seq <= 0 or self.block_id < 0:
            raise ConfigError(
                f"frame needs epoch >= 0, seq >= 1, block_id >= 0; got "
                f"({self.epoch}, {self.seq}, {self.block_id})"
            )

    def to_bytes(self) -> bytes:
        head = _FRAME_HEAD.pack(
            len(self.payload), KIND_BLOCK, self.block_id, self.epoch, self.seq
        )
        return head + self.payload + _CHECKSUM.pack(
            _frame_checksum(head, self.payload)
        )


def read_frames(blob: bytes) -> Tuple[List[QuorumFrame], int]:
    """Parse a replica log; returns ``(frames, torn_bytes)``.

    The same torn-tail discipline as the single journal: an incomplete or
    checksum-failing *final* frame is a crash artifact and a clean stop,
    while a corrupt frame with committed frames behind it raises
    :class:`~repro.errors.TornFrameError` (dropping it would silently
    lose committed records).
    """
    if blob[: len(MAGIC)] != MAGIC:
        raise ConfigError("not a replicated journal (bad magic)")
    frames: List[QuorumFrame] = []
    pos = len(MAGIC)
    n = len(blob)
    while pos + _FRAME_HEAD.size <= n:
        length, kind, block_id, epoch, seq = _FRAME_HEAD.unpack_from(blob, pos)
        body_start = pos + _FRAME_HEAD.size
        body_end = body_start + length
        frame_end = body_end + _CHECKSUM.size
        if frame_end > n:
            break  # torn tail — the crash cut this frame short
        payload = bytes(blob[body_start:body_end])
        (stored,) = _CHECKSUM.unpack_from(blob, body_end)
        head = bytes(blob[pos : pos + _FRAME_HEAD.size])
        computed = _frame_checksum(head, payload)
        if kind != KIND_BLOCK or stored != computed:
            if frame_end < n:
                raise TornFrameError(
                    f"corrupt non-final journal frame at offset {pos} "
                    f"(expected checksum {stored:#018x}, got {computed:#018x})",
                    offset=pos,
                    expected_checksum=stored,
                    actual_checksum=computed,
                )
            break  # corrupt final frame: a torn in-place write, clean stop
        frames.append(QuorumFrame(epoch, seq, block_id, payload))
        pos = frame_end
    return frames, n - pos


class JournalReplica:
    """One journal node: a dense, fenced, append-only frame log.

    The replica enforces the two local invariants the quorum layer leans
    on: its log is a *dense* seq prefix (a frame only lands at
    ``last_seq + 1``; anything else demands anti-entropy first), and it
    never accepts an install from a leader whose epoch is below the one
    it last promised (fencing).
    """

    def __init__(self, replica_id: str) -> None:
        if not replica_id:
            raise ConfigError("replica id must be non-empty")
        self.replica_id = replica_id
        self._buf = bytearray(MAGIC)
        self._frames: List[QuorumFrame] = []
        self.promised_epoch = 0
        self.up = True
        self.reachable = True

    # -- state -------------------------------------------------------------------

    @property
    def available(self) -> bool:
        """Whether the leader can currently reach this replica."""
        return self.up and self.reachable

    @property
    def last_seq(self) -> int:
        return self._frames[-1].seq if self._frames else 0

    @property
    def last_epoch(self) -> int:
        return self._frames[-1].epoch if self._frames else 0

    @property
    def frames(self) -> Tuple[QuorumFrame, ...]:
        return tuple(self._frames)

    def to_bytes(self) -> bytes:
        return bytes(self._buf)

    def __len__(self) -> int:
        return len(self._buf)

    # -- the replica protocol ------------------------------------------------------

    def promise(self, epoch: int) -> bool:
        """Promise to reject writes below ``epoch``; False when unreachable
        or the epoch regresses (promises are monotonic)."""
        if not self.available:
            return False
        if epoch < self.promised_epoch:
            return False
        self.promised_epoch = epoch
        return True

    def install(self, frame: QuorumFrame, *, leader_epoch: int) -> bool:
        """Store one frame driven by a leader at ``leader_epoch``.

        Old committed frames keep their original epoch stamp during
        anti-entropy transfer, so fencing is checked against the *driving
        leader's* epoch, not the frame's.  Returns False (no write) when
        the replica is unreachable, the leader is fenced off, or the
        frame would leave a gap; True on a store *or* an idempotent
        re-send of a frame already held.
        """
        if not self.available:
            return False
        if leader_epoch < self.promised_epoch:
            return False
        if frame.seq <= self.last_seq:
            return True  # duplicate re-send: already durable here
        if frame.seq != self.last_seq + 1:
            return False  # gap: this replica needs anti-entropy first
        if self._frames and (frame.epoch, frame.seq) <= (
            self._frames[-1].epoch,
            self._frames[-1].seq,
        ):
            return False  # (epoch, seq) must be strictly monotonic
        self._frames.append(frame)
        self._buf += frame.to_bytes()
        return True

    # -- fault injection -----------------------------------------------------------

    def crash(self, *, at_byte: Optional[int] = None) -> None:
        """Kill the replica; ``at_byte`` truncates its durable log there.

        Truncation models a crash mid-write: the surviving prefix is
        re-parsed with the torn-tail discipline, so a half-written final
        frame is dropped and the log stays a dense committed prefix.
        """
        self.up = False
        if at_byte is None:
            return
        if at_byte < len(MAGIC):
            at_byte = len(MAGIC)
        frames, _torn = read_frames(bytes(self._buf[:at_byte]))
        self._frames = frames
        self._buf = bytearray(MAGIC)
        for frame in frames:
            self._buf += frame.to_bytes()

    def restore(self) -> None:
        self.up = True


class ReplicatedJournal:
    """Leader-side quorum journal over N :class:`JournalReplica` logs.

    Exposes the same surface the serve daemon already journals through
    (``append_block`` / ``append_array`` / ``record_count`` /
    ``committed_blocks``), plus the replication verbs: ``fence`` a new
    epoch onto a majority, ``crash_replica``/``restore_replica``/
    ``partition``/``heal`` for fault drills, and ``recover`` to rebuild
    the committed state from any surviving majority after the leader
    itself dies.
    """

    def __init__(self, num_replicas: int) -> None:
        if num_replicas < 1:
            raise ConfigError(
                f"a replicated journal needs >= 1 replica, got {num_replicas}"
            )
        self.replicas: Dict[str, JournalReplica] = {
            f"journal-{i}": JournalReplica(f"journal-{i}")
            for i in range(num_replicas)
        }
        self._epoch = 0
        self._seq = 0
        self._frames: List[QuorumFrame] = []
        self._entries: Dict[int, bytes] = {}
        self.peak_lag = 0
        self.frames_transferred = 0
        self.stale_rejections = 0

    # -- introspection -------------------------------------------------------------

    @property
    def num_replicas(self) -> int:
        return len(self.replicas)

    @property
    def quorum(self) -> int:
        return len(self.replicas) // 2 + 1

    @property
    def replica_ids(self) -> List[str]:
        return sorted(self.replicas)

    @property
    def epoch(self) -> int:
        """The last epoch fenced onto a quorum (the live fencing token)."""
        return self._epoch

    @property
    def committed_seq(self) -> int:
        return self._seq

    @property
    def record_count(self) -> int:
        return len(self._frames)

    @property
    def committed_blocks(self) -> List[int]:
        return sorted(self._entries)

    @property
    def entries(self) -> Dict[int, bytes]:
        """Committed block id → payload (a copy)."""
        return dict(self._entries)

    def replica_lag(self) -> Dict[str, int]:
        """Committed frames each replica is missing (0 = fully caught up)."""
        return {
            rid: max(0, self._seq - replica.last_seq)
            for rid, replica in sorted(self.replicas.items())
        }

    def _note_lag(self) -> None:
        lags = self.replica_lag().values()
        if lags:
            self.peak_lag = max(self.peak_lag, max(lags))

    # -- fencing -------------------------------------------------------------------

    def fence(self, epoch: int) -> int:
        """Promise ``epoch`` onto a majority; returns the promise count.

        Raises:
            StaleLeaderError: the epoch regresses below the live fence.
            QuorumLostError: fewer than a majority could promise.
        """
        if epoch < self._epoch:
            raise StaleLeaderError(
                f"fencing token may not regress: {epoch} < {self._epoch}",
                epoch=epoch,
                fence=self._epoch,
            )
        promises = sum(
            1 for rid in self.replica_ids if self.replicas[rid].promise(epoch)
        )
        if promises < self.quorum:
            raise QuorumLostError(
                f"fencing epoch {epoch} reached {promises}/{self.num_replicas} "
                f"replicas; quorum is {self.quorum}",
                acks=promises,
                quorum=self.quorum,
            )
        self._epoch = epoch
        return promises

    # -- appends -------------------------------------------------------------------

    def _sync(self, replica: JournalReplica, *, leader_epoch: int) -> int:
        """Anti-entropy: copy the committed frames ``replica`` is missing."""
        moved = 0
        for frame in self._frames[replica.last_seq :]:
            if not replica.install(frame, leader_epoch=leader_epoch):
                break
            moved += 1
        self.frames_transferred += moved
        return moved

    def append_block(self, block_map, *, epoch: Optional[int] = None) -> bool:
        """Commit one block's metadata at majority quorum.

        ``epoch`` defaults to the last fenced epoch; a deposed leader
        still holding an older token passes it explicitly and is
        rejected.  Returns False when the block is already committed
        (idempotent replay, exactly like the single journal).

        Raises:
            StaleLeaderError: a newer epoch has been fenced; this writer
                must stop.
            QuorumLostError: fewer than a majority of replicas reachable.
        """
        e = self._epoch if epoch is None else epoch
        block_id = block_map.block_id
        if block_id in self._entries:
            return False
        # Synchronous pre-check: the set of replicas that will accept is
        # exact, so a failed round writes nothing and logs never diverge.
        ready: List[JournalReplica] = []
        fenced = 0
        for rid in self.replica_ids:
            replica = self.replicas[rid]
            if not replica.available:
                continue
            if replica.promised_epoch > e:
                fenced += 1
                continue
            ready.append(replica)
        if len(ready) < self.quorum:
            if fenced:
                self.stale_rejections += 1
                raise StaleLeaderError(
                    f"append at epoch {e} fenced off by {fenced} replica(s) "
                    f"promised a newer epoch",
                    epoch=e,
                    fence=max(
                        r.promised_epoch for r in self.replicas.values()
                    ),
                )
            raise QuorumLostError(
                f"append reached {len(ready)}/{self.num_replicas} replicas; "
                f"quorum is {self.quorum}",
                acks=len(ready),
                quorum=self.quorum,
            )
        frame = QuorumFrame(e, self._seq + 1, block_id, block_map.to_bytes())
        for replica in ready:
            if replica.last_seq < self._seq:
                self._sync(replica, leader_epoch=e)
            if not replica.install(frame, leader_epoch=e):
                raise ConfigError(
                    f"replica {replica.replica_id} refused a pre-checked "
                    "frame — quorum bookkeeping is inconsistent"
                )
        self._seq += 1
        self._frames.append(frame)
        self._entries[block_id] = frame.payload
        self._note_lag()
        return True

    def append_array(self, array) -> int:
        """Commit every block of an array; returns frames written."""
        return sum(1 for bm in array if self.append_block(bm))

    # -- fault drill verbs ---------------------------------------------------------

    def _replica(self, replica_id: str) -> JournalReplica:
        try:
            return self.replicas[replica_id]
        except KeyError:
            raise ConfigError(f"unknown journal replica {replica_id!r}") from None

    def crash_replica(
        self, replica_id: str, *, at_byte: Optional[int] = None
    ) -> None:
        self._replica(replica_id).crash(at_byte=at_byte)

    def restore_replica(self, replica_id: str) -> int:
        """Bring a replica back and catch it up; returns frames transferred."""
        replica = self._replica(replica_id)
        replica.restore()
        return self._sync(replica, leader_epoch=self._epoch)

    def partition(self, replica_ids: Iterable[str]) -> None:
        for rid in replica_ids:
            self._replica(rid).reachable = False

    def heal(self, replica_ids: Iterable[str]) -> int:
        """Reconnect partitioned replicas and catch them up."""
        moved = 0
        for rid in sorted(replica_ids):
            replica = self._replica(rid)
            replica.reachable = True
            if replica.up:
                moved += self._sync(replica, leader_epoch=self._epoch)
        return moved

    # -- recovery ------------------------------------------------------------------

    def recover(self) -> Dict[int, bytes]:
        """Rebuild committed state from a surviving majority.

        A new leader (or the restarted old one) reads every reachable
        replica, adopts the longest log among them — every committed
        frame was acked by a majority, and logs are dense prefixes, so
        any majority's longest log contains all of them — then
        anti-entropies the rest of the quorum up to it.  First commit
        per block wins, mirroring single-journal replay idempotence.

        Raises:
            QuorumLostError: fewer than a majority of replicas reachable.
        """
        up = [self.replicas[rid] for rid in self.replica_ids if self.replicas[rid].available]
        if len(up) < self.quorum:
            raise QuorumLostError(
                f"recovery found {len(up)}/{self.num_replicas} replicas; "
                f"quorum is {self.quorum}",
                acks=len(up),
                quorum=self.quorum,
            )
        best = max(up, key=lambda r: (r.last_seq, r.last_epoch, r.replica_id))
        frames = list(best.frames)
        self._frames = frames
        self._seq = frames[-1].seq if frames else 0
        entries: Dict[int, bytes] = {}
        for frame in frames:
            if frame.block_id not in entries:
                entries[frame.block_id] = frame.payload
        self._entries = entries
        for replica in up:
            if replica is not best:
                self._sync(replica, leader_epoch=self._epoch)
        self._note_lag()
        return dict(entries)
