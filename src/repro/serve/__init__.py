"""Long-lived multi-tenant analysis service over one DataNet deployment.

The serving layer stacks on the batch machinery: admission control and
weighted fair queueing (:mod:`repro.serve.admission`), a write-ahead
journal for crash-safe incremental metadata (:mod:`repro.serve.journal`),
and the driver event loop with deadlines, crash recovery, and graceful
degradation (:mod:`repro.serve.service`).  With ``journal_replicas > 1``
the journal is quorum-replicated and the leader role survives crashes
via fenced failover (:mod:`repro.replication`).  :mod:`repro.serve.scenario`
packages deterministic drills for the CLI, CI soak, and tests.
"""

from .admission import (
    AdmissionController,
    TenantSpec,
    TokenBucket,
    WeightedFairQueue,
)
from .journal import MetadataJournal, ReplayResult, array_digest
from .scenario import DrillConfig, DrillSetup, build_drill, run_service_drill
from .service import (
    AnalysisService,
    AppendBatch,
    JobRequest,
    MetaOutageWindow,
    ServiceConfig,
)

__all__ = [
    "AdmissionController",
    "AnalysisService",
    "AppendBatch",
    "DrillConfig",
    "DrillSetup",
    "JobRequest",
    "MetaOutageWindow",
    "MetadataJournal",
    "ReplayResult",
    "ServiceConfig",
    "TenantSpec",
    "TokenBucket",
    "WeightedFairQueue",
    "array_digest",
    "build_drill",
    "run_service_drill",
]
