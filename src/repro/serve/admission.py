"""Admission control and fair-share queueing for the analysis service.

Three cooperating pieces, all seed-free and simulated-time driven so two
runs of the same request stream admit identically:

* :class:`TokenBucket` — per-tenant rate limiting.  Tokens refill
  continuously at ``rate`` per simulated second up to ``burst``; a
  submission costs one token, and an empty bucket is a *typed*
  :class:`~repro.errors.Overloaded` rejection (reason ``"quota"``).
* :class:`WeightedFairQueue` — classic virtual-time weighted fair
  queueing over per-tenant FIFOs.  Each queued job advances its tenant's
  virtual finish time by ``1 / weight``, so a weight-2 tenant drains
  twice as often as a weight-1 tenant under contention, while an idle
  tenant's arrears are forgiven (its virtual time snaps forward to the
  queue's).  Ties break on submission sequence — deterministic.
* :class:`AdmissionController` — the front door: quota check, then a
  bounded queue that sheds load past ``high_water`` (reason
  ``"backpressure"``).  Every submission ends in exactly one ledger
  bucket — admitted or rejected-with-reason — never a silent drop.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, Generic, Iterable, List, Tuple, TypeVar

from ..errors import ConfigError, Overloaded
from ..obs import NULL_OBS, Observability

__all__ = ["TenantSpec", "TokenBucket", "WeightedFairQueue", "AdmissionController"]

T = TypeVar("T")


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's share and quota.

    Attributes:
        name: tenant id (unique within a service).
        weight: fair-share weight; a weight-2 tenant gets twice the
            dispatch slots of a weight-1 tenant under contention.
        rate: sustained admissions per simulated second (``inf`` = no
            quota).
        burst: bucket capacity — how many submissions can land back to
            back before the rate gates them.
    """

    name: str
    weight: float = 1.0
    rate: float = math.inf
    burst: float = 8.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("tenant name must be non-empty")
        if self.weight <= 0:
            raise ConfigError("tenant weight must be positive")
        if self.rate <= 0:
            raise ConfigError("tenant rate must be positive (inf disables quota)")
        if self.burst < 1:
            raise ConfigError("tenant burst must be >= 1")


class TokenBucket:
    """Continuous-refill token bucket on the simulated clock."""

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0 or burst < 1:
            raise ConfigError("token bucket needs rate > 0 and burst >= 1")
        self.rate = rate
        self.burst = burst
        self._tokens = burst
        self._last = 0.0

    def _refill(self, now: float) -> None:
        if now < self._last:
            raise ConfigError(f"token bucket clock moved backwards: {now} < {self._last}")
        if math.isinf(self.rate):
            self._tokens = self.burst
        else:
            self._tokens = min(self.burst, self._tokens + (now - self._last) * self.rate)
        self._last = now

    def try_take(self, now: float) -> bool:
        """Spend one token if available; False (and no spend) otherwise."""
        self._refill(now)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    def level(self, now: float) -> float:
        self._refill(now)
        return self._tokens


class WeightedFairQueue(Generic[T]):
    """Virtual-time weighted fair queue over per-tenant FIFOs."""

    def __init__(self, tenants: Iterable[TenantSpec]) -> None:
        specs = list(tenants)
        if not specs:
            raise ConfigError("WeightedFairQueue needs at least one tenant")
        names = [t.name for t in specs]
        if len(set(names)) != len(names):
            raise ConfigError("duplicate tenant names")
        self._weights: Dict[str, float] = {t.name: t.weight for t in specs}
        self._vtime = 0.0
        self._last_finish: Dict[str, float] = {t.name: 0.0 for t in specs}
        # heap of (virtual finish, submission seq, tenant, item)
        self._heap: List[Tuple[float, int, str, T]] = []
        self._seq = 0
        self._depth: Dict[str, int] = {t.name: 0 for t in specs}

    def push(self, tenant: str, item: T) -> None:
        if tenant not in self._weights:
            raise ConfigError(f"unknown tenant {tenant!r}")
        finish = max(self._vtime, self._last_finish[tenant]) + 1.0 / self._weights[tenant]
        self._last_finish[tenant] = finish
        heapq.heappush(self._heap, (finish, self._seq, tenant, item))
        self._seq += 1
        self._depth[tenant] += 1

    def pop(self) -> Tuple[str, T]:
        if not self._heap:
            raise ConfigError("pop from an empty fair queue")
        finish, _seq, tenant, item = heapq.heappop(self._heap)
        self._vtime = max(self._vtime, finish)
        self._depth[tenant] -= 1
        return tenant, item

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def depth_of(self, tenant: str) -> int:
        return self._depth[tenant]

    def drain(self) -> List[Tuple[str, T]]:
        """Pop everything in fair order (used by the batch compat path)."""
        out: List[Tuple[str, T]] = []
        while self._heap:
            out.append(self.pop())
        return out


class AdmissionController(Generic[T]):
    """Quota check + bounded fair queue with typed load shedding."""

    def __init__(
        self,
        tenants: Iterable[TenantSpec],
        *,
        high_water: int = 32,
        obs: Observability = NULL_OBS,
    ) -> None:
        specs = list(tenants)
        if high_water <= 0:
            raise ConfigError("high_water must be positive")
        self.tenants: Dict[str, TenantSpec] = {t.name: t for t in specs}
        self.high_water = high_water
        self.queue: WeightedFairQueue[T] = WeightedFairQueue(specs)
        self._buckets: Dict[str, TokenBucket] = {
            t.name: TokenBucket(t.rate, t.burst) for t in specs
        }
        self.obs = obs
        self.submitted = 0
        self.admitted = 0
        self.rejected: Dict[str, int] = {}

    def _reject(self, tenant: str, reason: str, message: str) -> None:
        self.rejected[reason] = self.rejected.get(reason, 0) + 1
        if self.obs.metrics.enabled:
            self.obs.metrics.counter(
                "service_jobs_rejected_total",
                help="submissions shed by admission control, by reason",
                labelnames=("reason",),
            ).inc(reason=reason)
        raise Overloaded(message, tenant=tenant, reason=reason)

    def submit(self, tenant: str, item: T, now: float, *, open_for_business: bool = True) -> None:
        """Admit one job into the fair queue or shed it.

        Raises:
            Overloaded: typed rejection — ``reason`` is ``"quota"``,
                ``"backpressure"`` or ``"unavailable"``; the ledger counts
                it either way, so ``submitted == admitted + rejections``.
        """
        if tenant not in self.tenants:
            raise ConfigError(f"unknown tenant {tenant!r}")
        self.submitted += 1
        if not open_for_business:
            self._reject(
                tenant, "unavailable", f"service restarting; tenant {tenant} shed"
            )
        if not self._buckets[tenant].try_take(now):
            self._reject(
                tenant,
                "quota",
                f"tenant {tenant} exceeded its admission quota "
                f"({self.tenants[tenant].rate}/s, burst {self.tenants[tenant].burst})",
            )
        if len(self.queue) >= self.high_water:
            self._reject(
                tenant,
                "backpressure",
                f"queue at high-water mark ({self.high_water}); tenant {tenant} shed",
            )
        self.queue.push(tenant, item)
        self.admitted += 1
        if self.obs.metrics.enabled:
            self.obs.metrics.counter(
                "service_jobs_admitted_total", help="jobs accepted into the fair queue"
            ).inc()
            self.obs.metrics.gauge(
                "service_queue_depth", help="jobs waiting in the admission queue"
            ).set(len(self.queue))

    def requeue(self, tenant: str, item: T) -> None:
        """Put an admitted-but-interrupted job back (crash recovery);
        bypasses quota and high-water — the job was already paid for."""
        self.queue.push(tenant, item)

    @property
    def rejected_total(self) -> int:
        return sum(self.rejected.values())

    @property
    def silent_drops(self) -> int:
        """Must be zero by construction; the summary asserts it."""
        return self.submitted - self.admitted - self.rejected_total
