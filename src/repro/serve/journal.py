"""Write-ahead journal for incremental ElasticMap metadata.

The analysis service keeps its metadata resident and extends it as blocks
stream in; a driver crash must never cost committed metadata nor leave it
half-applied.  The journal is the PR 2 checkpoint story carried from
waves to metadata: every indexed block's serialized
:class:`~repro.core.elasticmap.BlockElasticMap` is framed and appended
*before* the in-memory state is considered durable, and recovery replays
the journal to rebuild the exact array.

Frame layout (all little-endian)::

    magic   b"RPJ1"                      (file header, once)
    frame   u32 payload length | u8 kind | u64 block id
            payload bytes
            u64 blake2b(header + payload) checksum

A crash can truncate the tail mid-frame; :meth:`MetadataJournal.replay`
stops at the first torn *final* frame and returns only the committed
prefix — replay is *idempotent* (duplicate frames for a block are
ignored; the first committed copy wins) and rebuilding the blocks the
torn tail lost from the stored dataset reproduces byte-identical entries,
because ElasticMap construction is deterministic per block.

Corruption and truncation are deliberately distinguished: a bad frame at
the very end of the log is a crash artifact (the write was cut short) and
a clean stop, but a checksum-failing frame with committed frames *after*
it means mid-log corruption — silently truncating there would throw away
committed records.  Replay raises a typed
:class:`~repro.errors.TornFrameError` for that case, carrying the byte
offset and both checksums so repair tooling can point at the damage.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from ..core.elasticmap import BlockElasticMap, ElasticMapArray
from ..errors import ConfigError, TornFrameError

__all__ = ["MetadataJournal", "ReplayResult", "array_digest"]

MAGIC = b"RPJ1"
KIND_BLOCK = 1
_FRAME_HEAD = struct.Struct("<IBQ")
_CHECKSUM = struct.Struct("<Q")


def _frame_checksum(head: bytes, payload: bytes) -> int:
    digest = hashlib.blake2b(head + payload, digest_size=8).digest()
    return int.from_bytes(digest, "little")


def array_digest(array: ElasticMapArray) -> str:
    """Content digest of a whole metadata array (block order normalized).

    Two arrays digest equal iff every block's serialized form matches —
    the byte-identity oracle behind the crash/no-crash acceptance runs.
    """
    h = hashlib.blake2b(digest_size=16)
    for block_id in array.block_ids:
        blob = array[block_id].to_bytes()
        h.update(struct.pack("<QI", block_id, len(blob)))
        h.update(blob)
    return h.hexdigest()


@dataclass
class ReplayResult:
    """What a journal replay recovered.

    Attributes:
        entries: block id → committed payload, first commit wins.
        records: committed frames read (duplicates included).
        duplicates: frames ignored because their block was already
            committed (the idempotence counter).
        torn_bytes: bytes of torn/corrupt tail discarded.
    """

    entries: Dict[int, bytes]
    records: int
    duplicates: int
    torn_bytes: int

    def to_array(self, **kwargs: object) -> ElasticMapArray:
        """Deserialize the committed entries into a fresh array."""
        return ElasticMapArray(
            [
                BlockElasticMap.from_bytes(self.entries[bid], **kwargs)
                for bid in sorted(self.entries)
            ]
        )


class MetadataJournal:
    """Append-only byte log of committed per-block metadata."""

    def __init__(self) -> None:
        self._buf = bytearray(MAGIC)
        self._records = 0
        self._committed: set = set()

    # -- writing ---------------------------------------------------------------

    def append_block(self, block_map: BlockElasticMap) -> bool:
        """Commit one block's metadata; False when already journaled.

        Skipping re-commits keeps recovery idempotent: re-indexing a block
        the journal already holds (a replayed append) writes nothing.
        """
        if block_map.block_id in self._committed:
            return False
        payload = block_map.to_bytes()
        head = _FRAME_HEAD.pack(len(payload), KIND_BLOCK, block_map.block_id)
        self._buf += head
        self._buf += payload
        self._buf += _CHECKSUM.pack(_frame_checksum(head, payload))
        self._records += 1
        self._committed.add(block_map.block_id)
        return True

    def append_array(self, array: ElasticMapArray) -> int:
        """Commit every block of an array (the initial snapshot); returns
        the number of frames written."""
        return sum(1 for bm in array if self.append_block(bm))

    @property
    def record_count(self) -> int:
        return self._records

    @property
    def committed_blocks(self) -> List[int]:
        return sorted(self._committed)

    def to_bytes(self) -> bytes:
        return bytes(self._buf)

    def __len__(self) -> int:
        return len(self._buf)

    # -- recovery --------------------------------------------------------------

    @classmethod
    def from_bytes(cls, blob: bytes) -> "MetadataJournal":
        """Reopen a journal from its durable bytes, dropping any torn tail."""
        replayed = cls.replay(blob)
        journal = cls()
        for bid in sorted(replayed.entries):
            payload = replayed.entries[bid]
            head = _FRAME_HEAD.pack(len(payload), KIND_BLOCK, bid)
            journal._buf += head
            journal._buf += payload
            journal._buf += _CHECKSUM.pack(_frame_checksum(head, payload))
            journal._records += 1
            journal._committed.add(bid)
        return journal

    @staticmethod
    def frame_offsets(blob: bytes) -> List[int]:
        """Byte offsets of every committed frame boundary (crash points).

        ``offsets[k]`` is the journal length after exactly ``k`` committed
        records — the property tests truncate at (and between) these to
        model a crash at any record boundary.  Frames are checksum-verified
        while walking: a corrupt or torn *final* frame simply ends the
        walk, but a corrupt frame with committed frames after it raises
        :class:`~repro.errors.TornFrameError` (see :meth:`replay`).
        """
        offsets = [len(MAGIC)]
        pos = len(MAGIC)
        n = len(blob)
        while pos + _FRAME_HEAD.size <= n:
            length, kind, _bid = _FRAME_HEAD.unpack_from(blob, pos)
            body_end = pos + _FRAME_HEAD.size + length
            end = body_end + _CHECKSUM.size
            if end > n:
                break
            payload = bytes(blob[pos + _FRAME_HEAD.size : body_end])
            (stored,) = _CHECKSUM.unpack_from(blob, body_end)
            computed = _frame_checksum(bytes(blob[pos : pos + _FRAME_HEAD.size]), payload)
            if kind != KIND_BLOCK or stored != computed:
                if end < n:
                    raise TornFrameError(
                        f"corrupt non-final journal frame at offset {pos} "
                        f"(expected checksum {stored:#018x}, got {computed:#018x})",
                        offset=pos,
                        expected_checksum=stored,
                        actual_checksum=computed,
                    )
                break
            pos = end
            offsets.append(pos)
        return offsets

    @staticmethod
    def replay(blob: bytes) -> ReplayResult:
        """Parse committed frames; a torn or corrupt *tail* is discarded.

        Raises:
            ConfigError: when the magic header itself is wrong — that is
                not a torn write but the wrong file.
            TornFrameError: a checksum-failing frame has committed frames
                after it (mid-log corruption, not a crash artifact) —
                truncating there would silently lose committed records.
        """
        if blob[: len(MAGIC)] != MAGIC:
            raise ConfigError("not a metadata journal (bad magic)")
        entries: Dict[int, bytes] = {}
        records = 0
        duplicates = 0
        pos = len(MAGIC)
        n = len(blob)
        while pos + _FRAME_HEAD.size <= n:
            length, kind, block_id = _FRAME_HEAD.unpack_from(blob, pos)
            body_start = pos + _FRAME_HEAD.size
            body_end = body_start + length
            frame_end = body_end + _CHECKSUM.size
            if frame_end > n:
                break  # torn tail: the crash cut the final frame short
            payload = bytes(blob[body_start:body_end])
            (stored,) = _CHECKSUM.unpack_from(blob, body_end)
            head = blob[pos : pos + _FRAME_HEAD.size]
            computed = _frame_checksum(bytes(head), payload)
            if kind != KIND_BLOCK or stored != computed:
                if frame_end < n:
                    raise TornFrameError(
                        f"corrupt non-final journal frame at offset {pos} "
                        f"(expected checksum {stored:#018x}, got {computed:#018x})",
                        offset=pos,
                        expected_checksum=stored,
                        actual_checksum=computed,
                    )
                break  # corrupt final frame: torn in-place write, clean stop
            if block_id in entries:
                duplicates += 1
            else:
                entries[block_id] = payload
            records += 1
            pos = frame_end
        return ReplayResult(
            entries=entries,
            records=records,
            duplicates=duplicates,
            torn_bytes=n - pos,
        )
