"""Deterministic multi-tenant service drills (the soak workload).

:func:`run_service_drill` builds a small movie environment, withholds the
chronological tail of the review stream as streaming append batches, and
replays a fixed multi-tenant request schedule through
:class:`~repro.serve.service.AnalysisService`.  Everything — arrivals,
tenants, targets, fault windows — is a pure function of the
:class:`DrillConfig`, so the same config always produces byte-identical
:class:`~repro.metrics.ServiceSummary` digests.  The CLI, the CI soak
job, the example, and the tests all run through here.

The fault placement is deliberate:

* the :class:`~repro.faults.ServiceCrash` lands *inside* an ingest
  window (after the first appended block's journal frame, before the
  rest), in an arrival gap wide enough that the restart finishes before
  the next submission — so the crash perturbs timing but neither the
  admitted set nor any job's output, which is what makes the
  crash/no-crash digest comparison a meaningful oracle;
* the gray partition and the metadata-shard outage overlap the middle of
  the schedule, forcing real degraded-mode dispatches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..core.datanet import DataNet
from ..core.metastore import DistributedMetaStore
from ..errors import ConfigError
from ..faults.plan import (
    FaultPlan,
    JournalReplicaCrash,
    LeaderCrash,
    MetadataPartition,
    NetworkPartition,
    ServiceCrash,
)
from ..faults.retry import RetryPolicy
from ..hdfs.cluster import HDFSCluster
from ..mapreduce.apps import (
    histogram_job,
    moving_average_job,
    top_k_search_job,
    word_count_job,
)
from ..metrics.service import ServiceSummary
from ..obs import NULL_OBS, Observability
from ..rebalance import RebalanceExecutor, RebalancePlanner, WorkloadProfile
from ..workloads.movielens import GammaArrivalModel, MovieLensGenerator, most_popular
from .admission import TenantSpec
from .service import (
    AnalysisService,
    AppendBatch,
    JobRequest,
    MetaOutageWindow,
    ServiceConfig,
)

__all__ = ["DrillConfig", "DrillSetup", "build_drill", "run_service_drill"]

KiB = 1024

#: Per-tenant fair-share weights and quotas.  tenant-c is deliberately
#: rate-limited below its submission rate so the soak always exercises
#: typed ``quota`` shedding; the others are unlimited.
_TENANTS = (
    TenantSpec("tenant-a", weight=2.0),
    TenantSpec("tenant-b", weight=1.0),
    TenantSpec("tenant-c", weight=1.0, rate=1.0 / 40.0, burst=1.0),
)

_QUERY = "great movie amazing plot wonderful acting"


@dataclass(frozen=True)
class DrillConfig:
    """All knobs of one service drill, digest-determining.

    Attributes:
        seed: environment seed (data, placement, targets).
        num_nodes: cluster size.
        jobs: total submissions across all tenants.
        pressure: arrival-rate multiplier — 1.0 is the calibrated
            sustainable load; 2.0/4.0 overload the queue for the
            backpressure sweeps.
        append_batches: streaming ingest batches cut from the tail of the
            review stream.
        crash: inject a :class:`~repro.faults.ServiceCrash` mid-append.
        meta_down: take one metadata shard down mid-schedule.
        partition: gray-partition one rack mid-schedule.
        slots: concurrent job slots on the driver.
        high_water: admission queue bound.
        rebalance_budget: migration-byte budget (fraction of dataset
            bytes) for a background rebalance pass run before the drill;
            0.0 (the default) skips it, keeping legacy digests intact.
        journal_replicas: metadata-journal copies; >1 turns on the
            quorum-replicated plane.
        leader_crash: kill the metadata leader mid-drill and fail over
            to an elected successor (parks + replays, never sheds).
        journal_crash: kill one journal replica mid-drill (restored
            later via anti-entropy catch-up).
        meta_partition: cut a minority of journal replicas from the
            leader for a window mid-schedule.
        retry_jitter: ``"none"`` or ``"full"`` — jitter mode of the
            quorum-append retry backoff (see
            :class:`~repro.faults.RetryPolicy`).
        retry_max_elapsed: optional cap on cumulative quorum-append
            backoff, in simulated seconds.
    """

    seed: int = 7
    num_nodes: int = 12
    jobs: int = 18
    pressure: float = 1.0
    append_batches: int = 2
    crash: bool = False
    meta_down: bool = False
    partition: bool = False
    slots: int = 2
    high_water: int = 64
    rebalance_budget: float = 0.0
    journal_replicas: int = 1
    leader_crash: bool = False
    journal_crash: bool = False
    meta_partition: bool = False
    retry_jitter: str = "none"
    retry_max_elapsed: float | None = None

    def __post_init__(self) -> None:
        if self.jobs < 4:
            raise ConfigError("a drill needs at least 4 jobs")
        if self.pressure <= 0:
            raise ConfigError("pressure must be positive")
        if self.append_batches < 1:
            raise ConfigError("a drill streams at least one append batch")
        if not 0.0 <= self.rebalance_budget <= 1.0:
            raise ConfigError("rebalance_budget must be in [0, 1]")
        if self.journal_replicas < 1:
            raise ConfigError("journal_replicas must be >= 1")
        if self.journal_crash and self.journal_replicas < 2:
            raise ConfigError(
                "a journal-replica crash drill needs journal_replicas >= 2 "
                "(crashing the only copy just loses quorum)"
            )
        if self.meta_partition and self.journal_replicas < 3:
            raise ConfigError(
                "a metadata-partition drill needs journal_replicas >= 3 "
                "(a quorum must survive on the leader's side)"
            )
        # RetryPolicy owns jitter/max-elapsed validation; constructing one
        # here surfaces bad CLI values as a ConfigError at parse time.
        RetryPolicy(jitter=self.retry_jitter, max_elapsed_s=self.retry_max_elapsed)


@dataclass
class DrillSetup:
    """A fully wired drill: the service plus its request/append streams."""

    service: AnalysisService
    requests: List[JobRequest]
    appends: List[AppendBatch]


def _arrivals(config: DrillConfig) -> List[float]:
    gap = 9.0 / config.pressure
    return [1.0 + i * gap for i in range(config.jobs)]


def _job_for(index: int, query: str):
    kind = index % 4
    if kind == 0:
        return word_count_job(num_reducers=4)
    if kind == 1:
        return histogram_job(num_reducers=4)
    if kind == 2:
        return moving_average_job(window_days=7.0, num_reducers=4)
    return top_k_search_job(query, k=10)


def build_drill(
    config: DrillConfig, *, obs: Observability = NULL_OBS
) -> DrillSetup:
    """Construct the environment, service, and deterministic streams."""
    rng = np.random.default_rng(config.seed)
    cluster = HDFSCluster(
        num_nodes=config.num_nodes,
        block_size=64 * KiB,
        replication=3,
        rng=rng,
    )
    generator = MovieLensGenerator(
        num_movies=300,
        total_reviews=36_000,
        duration_days=60.0,
        zipf_s=0.95,
        arrival=GammaArrivalModel(0.9, 18.0),
        rng=rng,
    )
    records = generator.generate()

    # The chronological tail streams in later (the paper's Flume-style
    # continuous collection); targets are ranked over the full stream so
    # append contents matter to job outputs.
    tail = len(records) // 5
    initial, appended = records[:-tail], records[-tail:]
    chunk = -(-len(appended) // config.append_batches)
    chunks = [
        appended[i : i + chunk] for i in range(0, len(appended), chunk)
    ]

    dataset = cluster.write_dataset("movielens", initial)
    datanet = DataNet.build(dataset, alpha=0.3, obs=obs)
    if config.rebalance_budget > 0.0:
        # Background rebalance pass before the drill: fix the layout for
        # the hottest sub-datasets (the ones the request schedule will
        # query) under the migration budget, then let the same drill run
        # on the improved placement.  Seeded by the drill seed, so the
        # digest oracle still holds.
        sizes = dataset.subdataset_sizes()
        hot = sorted(sizes, key=sizes.get, reverse=True)[:6]
        profile = WorkloadProfile({sid: float(sizes[sid]) for sid in hot})
        plan = RebalancePlanner(
            dataset,
            datanet,
            profile,
            budget_fraction=config.rebalance_budget,
            seed=config.seed,
            iterations=3000,
            obs=obs,
        ).plan()
        cluster.watch_placement(dataset.name, datanet)
        RebalanceExecutor(cluster, obs=obs).apply(plan)
    metastore = DistributedMetaStore(num_nodes=3, replication=1)
    metastore.load_array(datanet.elasticmap)

    arrivals = _arrivals(config)
    gap = arrivals[1] - arrivals[0]
    service_config = ServiceConfig(
        slots=config.slots,
        high_water=config.high_water,
        slots_per_node=2,
        ingest_block_cost_s=0.5,
        journal_replicas=config.journal_replicas,
        retry=RetryPolicy(
            jitter=config.retry_jitter, max_elapsed_s=config.retry_max_elapsed
        ),
    )

    # The first append's ingest window deliberately straddles arrival 6
    # (an unthrottled tenant): the crash (when enabled) lands after that
    # dispatch, so it catches a live job whose requeue is parity-safe
    # (its dispatch-time view is identical before and after the restart).
    # Later appends land in plain arrival gaps.
    append_times = [arrivals[6] - 0.8]
    for i in range(1, len(chunks)):
        append_times.append(
            arrivals[min(4 + 5 * (i + 1), config.jobs - 1)] + 0.45 * gap
        )
    appends = [
        AppendBatch(time=t, records=tuple(chunk_records))
        for t, chunk_records in zip(append_times, chunks)
    ]

    crashes: Tuple[ServiceCrash, ...] = ()
    if config.crash:
        crash_time = append_times[0] + 1.2
        crashes = (ServiceCrash(time=crash_time, restart_delay_s=3.0),)
    partitions: Tuple[NetworkPartition, ...] = ()
    if config.partition:
        start = arrivals[config.jobs // 2] + 0.2 * gap
        partitions = (
            NetworkPartition(rack=1, start=start, heals_at=start + 2.2 * gap),
        )
    # The leader crash reuses the service-crash placement: right after the
    # first ingest window straddles a live dispatch, in a gap wide enough
    # that detection + election + recovery finish before the next arrival.
    # It therefore perturbs only timing — the digest oracle again.
    leader_crashes: Tuple[LeaderCrash, ...] = ()
    if config.leader_crash:
        leader_crashes = (LeaderCrash(time=append_times[0] + 1.2),)
    journal_crashes: Tuple[JournalReplicaCrash, ...] = ()
    if config.journal_crash:
        # Kill the highest-numbered replica across the ingest batches, so
        # it misses committed frames and the restore exercises anti-entropy
        # catch-up of everything the quorum wrote without it.
        start = append_times[0] - 0.3 * gap
        journal_crashes = (
            JournalReplicaCrash(
                f"journal-{config.journal_replicas - 1}",
                time=start,
                restores_at=append_times[-1] + 0.5 * gap,
            ),
        )
    meta_partitions: Tuple[MetadataPartition, ...] = ()
    if config.meta_partition:
        # Cut a minority from the leader, straddling the last ingest
        # batch: quorum survives, commits proceed, the cut replicas fall
        # behind (visible lag), and the heal catches them back up.
        start = append_times[-1] - 0.25 * gap
        meta_partitions = (
            MetadataPartition(
                replicas=tuple(
                    f"journal-{i}" for i in range(config.journal_replicas // 2)
                ),
                start=start,
                heals_at=start + 2.0 * gap,
            ),
        )
    plan = FaultPlan(
        seed=config.seed,
        service_crashes=crashes,
        partitions=partitions,
        leader_crashes=leader_crashes,
        journal_crashes=journal_crashes,
        meta_partitions=meta_partitions,
    )

    meta_windows: Tuple[MetaOutageWindow, ...] = ()
    if config.meta_down:
        start = arrivals[config.jobs // 3] + 0.2 * gap
        meta_windows = (
            MetaOutageWindow("meta-0", start=start, heals_at=start + 2.2 * gap),
        )

    from ..experiments.config import ReferenceConfig

    cost = ReferenceConfig(data_scale=384.0).cost_model()
    service = AnalysisService(
        cluster,
        "movielens",
        datanet,
        cost,
        _TENANTS,
        config=service_config,
        metastore=metastore,
        plan=plan,
        meta_windows=meta_windows,
        obs=obs,
    )

    requests: List[JobRequest] = []
    for i, submit in enumerate(arrivals):
        tenant = _TENANTS[i % len(_TENANTS)].name
        deadline: float | None = submit + 600.0
        timeout: float | None = None
        if i == 4:
            # One intentional in-flight timeout per drill: far below any
            # job's runtime, so it always resolves to a typed cancellation.
            timeout = 0.4
            deadline = None
        requests.append(
            JobRequest(
                tenant=tenant,
                job_id=f"job-{i:03d}",
                sub_id=most_popular(records, rank=i % 6),
                job=_job_for(i, _QUERY),
                submit_time=submit,
                deadline_s=deadline,
                timeout_s=timeout,
            )
        )
    return DrillSetup(service=service, requests=requests, appends=appends)


def run_service_drill(
    config: DrillConfig, *, obs: Observability = NULL_OBS
) -> ServiceSummary:
    """Build and run one drill end to end."""
    setup = build_drill(config, obs=obs)
    return setup.service.run(setup.requests, setup.appends)
