"""The long-lived multi-tenant analysis service (driver event loop).

:class:`AnalysisService` keeps one cluster + ElasticMap resident and
consumes concurrent job streams from multiple tenants on the simulated
clock.  Four layers stack on the existing building blocks:

1. **Admission + fair share** — every submission passes the
   :class:`~repro.serve.admission.AdmissionController` (quota bucket,
   weighted fair queue, bounded backlog).  Load is shed with *typed*
   :class:`~repro.errors.Overloaded` rejections, never dropped silently.
2. **Deadlines** — each dispatched job runs on its own
   :class:`~repro.sim.DiscreteEventSimulator` with a ``cancel_at``
   horizon; a cut run's partial task spans are rolled back through the
   tracer's mark/discard machinery and the job resolves to a typed
   cancellation at its limit, releasing its slot.
3. **Crash-safe ingest** — streamed appends are indexed incrementally
   and journaled block by block (:class:`~repro.serve.journal.MetadataJournal`)
   before they count as durable.  A :class:`~repro.faults.ServiceCrash`
   kills the driver mid-append: recovery replays the journal, re-indexes
   the uncommitted tail from the (durable) data plane, and the resulting
   metadata is byte-identical to an uninterrupted run.
4. **Graceful degradation** — a gray partition routes dispatches through
   :meth:`~repro.core.datanet.DataNet.gray_schedule` (stranded jobs are
   parked until the heal), and a metadata-shard outage falls back to
   :func:`~repro.faults.degrade.degraded_schedule`; both keep the
   service admitting at reduced QoS instead of failing closed.
5. **Replicated metadata plane** — with ``journal_replicas > 1`` (or any
   metadata-plane fault in the plan) the write-ahead journal becomes a
   :class:`~repro.replication.ReplicatedJournal` committing each frame
   at majority quorum, and a :class:`~repro.replication.LeaderElector`
   owns the leader role.  A :class:`~repro.faults.LeaderCrash` kills
   only that role: the φ-accrual detector takes its deterministic time
   to suspect the silence, an election fences a new epoch onto the
   quorum *and* the cluster mutation path, the successor recovers
   committed metadata from any surviving majority, and every job in
   flight or submitted during the outage is parked and replayed — never
   shed — so ``silent_drops`` stays 0 and the final digests match the
   crash-free run byte for byte.

Everything is simulated-time and seed-deterministic: two runs of the
same request stream produce byte-identical
:class:`~repro.metrics.ServiceSummary` digests, and the crash/no-crash
pair agrees on both the metadata digest and the per-job results digest
(job outputs are computed assignment-invariantly, so a recovery-induced
placement change cannot perturb them).
"""

from __future__ import annotations

import hashlib
import heapq
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

from ..core.builder import ElasticMapBuilder
from ..core.datanet import DataNet
from ..core.elasticmap import BlockElasticMap, ElasticMapArray
from ..core.metastore import DistributedMetaStore
from ..errors import ConfigError, MetadataError, Overloaded, SchedulingError
from ..faults.degrade import degraded_schedule
from ..faults.health import HealthDetector
from ..faults.injector import FaultInjector
from ..faults.plan import FaultPlan, LeaderCrash, ServiceCrash
from ..faults.retry import RetryPolicy
from ..hdfs.cluster import DatasetView, HDFSCluster
from ..replication import LeaderElector, ReplicatedJournal, detection_delay
from ..mapreduce.costmodel import ClusterCostModel
from ..mapreduce.job import MapReduceJob
from ..metrics.service import ServiceSummary
from ..obs import NULL_OBS, Observability
from ..sim import DiscreteEventSimulator, JobGraphBuilder
from .admission import AdmissionController, TenantSpec
from .journal import MetadataJournal, array_digest

__all__ = [
    "AnalysisService",
    "AppendBatch",
    "JobRequest",
    "MetaOutageWindow",
    "ServiceConfig",
]

NodeId = Hashable


@dataclass(frozen=True)
class JobRequest:
    """One tenant's analysis request.

    Attributes:
        tenant: submitting tenant (must be configured on the service).
        job_id: unique id; doubles as the task-id prefix and results key.
        sub_id: target sub-dataset.
        job: the MapReduce job to run over the selection.
        submit_time: simulated arrival time.
        deadline_s: absolute wall (simulated) deadline — the job is
            cancelled at this instant whether queued or in flight.
        timeout_s: relative limit on in-flight execution time.
    """

    tenant: str
    job_id: str
    sub_id: str
    job: MapReduceJob
    submit_time: float
    deadline_s: Optional[float] = None
    timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.job_id:
            raise ConfigError("job_id must be non-empty")
        if self.submit_time < 0:
            raise ConfigError("submit_time must be non-negative")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ConfigError("timeout_s must be positive")
        if self.deadline_s is not None and self.deadline_s <= self.submit_time:
            raise ConfigError("deadline_s must be after submit_time")


@dataclass(frozen=True)
class AppendBatch:
    """A chunk of fresh records streaming into the dataset at ``time``."""

    time: float
    records: Tuple[object, ...]

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigError("append time must be non-negative")
        if not self.records:
            raise ConfigError("an append batch needs at least one record")


@dataclass(frozen=True)
class MetaOutageWindow:
    """One metadata shard down during ``[start, heals_at)``.

    The windowed cousin of :class:`~repro.faults.MetaOutage` (which is
    whole-run): the service fails the shard at ``start``, recovers it at
    ``heals_at``, and runs degraded-mode scheduling in between.
    """

    node_id: str
    start: float
    heals_at: float

    def __post_init__(self) -> None:
        if not self.node_id:
            raise ConfigError("meta-node id must be non-empty")
        if self.start < 0 or self.heals_at <= self.start:
            raise ConfigError(
                f"inverted meta outage window [{self.start}, {self.heals_at})"
            )

    def active(self, time: float) -> bool:
        return self.start <= time < self.heals_at


@dataclass(frozen=True)
class ServiceConfig:
    """Service sizing knobs.

    Attributes:
        slots: jobs the driver executes concurrently.
        high_water: admission queue bound (backpressure threshold).
        slots_per_node: per-node task slots inside each job's simulation.
        ingest_block_cost_s: simulated seconds to index + journal one
            appended block — the window a :class:`~repro.faults.ServiceCrash`
            can land inside.
        journal_replicas: journal copies behind the metadata plane.  1
            (the default) keeps the legacy single
            :class:`~repro.serve.journal.MetadataJournal`; higher values
            (or any metadata-plane fault in the plan) switch to the
            quorum-replicated plane.
        heartbeat_interval_s: leader heartbeat cadence feeding the
            φ-accrual detector — sets how long a leader crash stays
            undetected.
        retry: backoff policy pacing quorum-append retry probes while a
            majority of journal replicas is unreachable (``None`` uses
            the default :class:`~repro.faults.RetryPolicy`).
    """

    slots: int = 2
    high_water: int = 32
    slots_per_node: int = 2
    ingest_block_cost_s: float = 0.5
    journal_replicas: int = 1
    heartbeat_interval_s: float = 0.5
    retry: Optional[RetryPolicy] = None

    def __post_init__(self) -> None:
        if self.slots <= 0 or self.slots_per_node <= 0:
            raise ConfigError("slots and slots_per_node must be positive")
        if self.high_water <= 0:
            raise ConfigError("high_water must be positive")
        if self.ingest_block_cost_s <= 0:
            raise ConfigError("ingest_block_cost_s must be positive")
        if self.journal_replicas < 1:
            raise ConfigError(
                f"journal_replicas must be >= 1, got {self.journal_replicas}"
            )
        if self.heartbeat_interval_s <= 0:
            raise ConfigError("heartbeat_interval_s must be positive")


@dataclass
class JobOutcome:
    """Terminal state of one admitted job."""

    job_id: str
    tenant: str
    status: str  # "completed" | "deadline" | "timeout"
    submit_time: float
    start_time: float
    end_time: float
    wait_s: float
    degraded: bool = False
    output_digest: str = ""


# Event kinds in pop order at equal times: the service restarts (and the
# metadata leader resumes) before anything else happens, faults heal
# before new ones land, running jobs finish (and free their slots) before
# a crash kills them "at the same instant", and ingest lands before the
# submissions that might query it.
_PRIO = {
    "restart": 0,
    "lrestore": 1,
    "jheal": 2,
    "mpheal": 3,
    "pheal": 4,
    "meta_up": 5,
    "crash": 6,
    "lcrash": 7,
    "jcrash": 8,
    "mpstart": 9,
    "failover": 10,
    "pstart": 11,
    "meta_down": 12,
    "finish": 13,
    "append": 14,
    "jretry": 15,
    "submit": 16,
}


class _Parked(Exception):
    """Internal: dispatch must wait for a partition heal."""


class AnalysisService:
    """Single-process analysis daemon over one dataset.

    Args:
        cluster: the (durable) data plane.
        dataset_name: dataset the service owns and extends.
        datanet: resident metadata; must come from
            :meth:`~repro.core.datanet.DataNet.build` so crash recovery
            can re-index blocks with the same builder configuration.
        cost: cost model pricing every simulated task.
        tenants: admission-control specs, one per tenant.
        config: sizing knobs.
        metastore: optional distributed metadata fleet (enables the
            shard-outage degradation path; populated from ``datanet`` if
            empty).
        plan: fault plan — ``service_crashes`` and ``partitions`` drive
            the crash and gray-degradation machinery.
        meta_windows: timed metadata-shard outages.
        obs: observability bundle (spans, counters, gauges).
    """

    def __init__(
        self,
        cluster: HDFSCluster,
        dataset_name: str,
        datanet: DataNet,
        cost: ClusterCostModel,
        tenants: Sequence[TenantSpec],
        *,
        config: Optional[ServiceConfig] = None,
        metastore: Optional[DistributedMetaStore] = None,
        plan: Optional[FaultPlan] = None,
        meta_windows: Sequence[MetaOutageWindow] = (),
        obs: Observability = NULL_OBS,
    ) -> None:
        self.cluster = cluster
        self.dataset_name = dataset_name
        self.datanet = datanet
        self.cost = cost
        self.config = config or ServiceConfig()
        self.obs = obs
        self.metastore = metastore
        self.meta_windows = tuple(meta_windows)
        self._view: DatasetView = cluster.dataset(dataset_name)

        builder_config = getattr(datanet, "_builder_config", None)
        if builder_config is None:
            raise ConfigError(
                "AnalysisService needs a DataNet created by DataNet.build() — "
                "crash recovery re-indexes appended blocks with the same "
                "builder configuration"
            )
        self._builder_config = dict(builder_config)

        self.plan = plan or FaultPlan()
        self._injector = FaultInjector(self.plan)
        if self.plan.partitions:
            self._partitions = self._injector.resolve_partitions(
                cluster.nodes, rack_of=cluster.rack_of
            )
        else:
            self._partitions = []
        self._crashes: List[ServiceCrash] = (
            self._injector.service_crashes_chronological()
        )
        self._crash_idx = 0

        self.controller: AdmissionController[JobRequest] = AdmissionController(
            tenants, high_water=self.config.high_water, obs=obs
        )
        # The journal's first frames snapshot the initial build — recovery
        # never needs to rescan blocks that predate the service.  Any
        # metadata-plane fault in the plan forces the replicated plane
        # even at replica count 1 (leader failover needs the quorum
        # machinery; a single replica is simply a quorum of one).
        meta_plane_faults = bool(
            self.plan.leader_crashes
            or self.plan.journal_crashes
            or self.plan.meta_partitions
        )
        self._replicated = self.config.journal_replicas > 1 or meta_plane_faults
        self._elector: Optional[LeaderElector] = None
        self._epoch = 0
        if self._replicated:
            rjournal = ReplicatedJournal(self.config.journal_replicas)
            for jc in self.plan.journal_crashes:
                if jc.replica not in rjournal.replicas:
                    raise ConfigError(
                        f"plan crashes unknown journal replica {jc.replica!r}"
                    )
            for mp in self.plan.meta_partitions:
                for rid in mp.replicas:
                    if rid not in rjournal.replicas:
                        raise ConfigError(
                            f"plan partitions unknown journal replica {rid!r}"
                        )
            # Startup election seats the first leader and installs its
            # fencing epoch everywhere before any frame is written.
            self._elector = LeaderElector(
                rjournal.replica_ids, seed=self.plan.seed
            )
            seated = self._elector.elect(rjournal.replica_ids)
            self._epoch = seated.term
            rjournal.fence(self._epoch)
            cluster.install_fence(self._epoch)
            self.journal = rjournal
        else:
            self.journal = MetadataJournal()
        self.journal.append_array(datanet.elasticmap)
        if self.metastore is not None and not self.metastore.block_ids:
            self.metastore.load_array(datanet.elasticmap)

        # runtime state
        self._up = True
        self._leader_up = True
        self._slots_free = self.config.slots
        self._run_token = 0
        self._live_tokens: Set[int] = set()
        self._inflight: Dict[int, Tuple[str, JobRequest]] = {}
        self._parked: List[Tuple[str, JobRequest]] = []
        self._append_backlog: List[AppendBatch] = []
        # metadata-fleet writes that found no live owner; flushed on heal
        self._meta_pending: Dict[int, object] = {}
        # quorum-append retry pacing (while a majority is unreachable)
        self._retry = self.config.retry or RetryPolicy()
        self._retry_attempts = 0
        self._retry_waited = 0.0
        self._retry_pending = False

        # accounting
        self.outcomes: List[JobOutcome] = []
        self._waits: Dict[str, List[float]] = {t.name: [] for t in tenants}
        self._max_queue_depth = 0
        self._appends = 0
        self._blocks_appended = 0
        self._journal_replays = 0
        self._crash_count = 0
        self._requeued = 0
        self._degraded_jobs = 0
        self._deferred = 0
        self._leadership_changes = 0
        self._failover_downtime = 0.0
        self._horizon = 0.0
        self._events: List[Tuple[float, int, int, str, object]] = []
        self._seq = 0

    # -- degradation state -------------------------------------------------------

    def _cut_at(self, time: float) -> Set[NodeId]:
        cut: Set[NodeId] = set()
        for part in self._partitions:
            if part.active(time):
                cut.update(part.nodes)
        return cut

    def _meta_down_at(self, time: float) -> List[str]:
        return [w.node_id for w in self.meta_windows if w.active(time)]

    def _degraded_at(self, time: float) -> bool:
        return bool(self._cut_at(time)) or bool(self._meta_down_at(time))

    def degraded_intervals(self) -> Tuple[Tuple[float, float], ...]:
        """Merged ``[start, end)`` windows of degraded operation."""
        raw = [(p.start, p.heals_at) for p in self._partitions]
        raw += [(w.start, w.heals_at) for w in self.meta_windows]
        raw.sort()
        merged: List[List[float]] = []
        for start, end in raw:
            if merged and start <= merged[-1][1]:
                merged[-1][1] = max(merged[-1][1], end)
            else:
                merged.append([start, end])
        return tuple((s, e) for s, e in merged)

    # -- assignment-invariant job output ----------------------------------------

    def _output_digest(self, req: JobRequest) -> str:
        """Digest of the job's final output, independent of placement.

        Selection filters the same records whichever nodes scan them, so
        the output is a pure function of (dataset contents, sub_id, job).
        Computing it block-by-block in id order — no per-node combiner —
        keeps the digest identical across healthy, degraded, and
        post-recovery assignments; it is the crash/no-crash oracle.
        """
        job = req.job
        partitions: Dict[int, Dict[object, List[object]]] = {}
        for bid in self._view.block_ids:
            for record in self._view.block(bid).filter(req.sub_id):
                for key, value in job.run_mapper(record):
                    partitions.setdefault(job.partition(key), {}).setdefault(
                        key, []
                    ).append(value)
        output: Dict[object, object] = {}
        for pid in sorted(partitions):
            bucket = partitions[pid]
            for key in sorted(bucket, key=repr):
                for rkey, rvalue in job.run_reducer(key, bucket[key]):
                    output[rkey] = rvalue
        digest = hashlib.blake2b(digest_size=16)
        for key in sorted(output, key=repr):
            digest.update(f"{key!r}={output[key]!r};".encode("utf-8"))
        return digest.hexdigest()

    # -- dispatch ----------------------------------------------------------------

    def _schedule_for(self, now: float, req: JobRequest):
        """Pick an assignment for the current health state.

        Returns ``(assignment, degraded)``; raises :class:`_Parked` when
        some needed block is unreachable until a partition heals.
        """
        cut = self._cut_at(now)
        down = self._meta_down_at(now)
        if down and self.metastore is not None:
            try:
                assignment, _healthy, degraded_blocks = degraded_schedule(
                    self.metastore,
                    self._view,
                    req.sub_id,
                    exclude_nodes=sorted(cut, key=repr),
                )
            except SchedulingError as exc:
                raise _Parked(str(exc))
            return assignment, bool(degraded_blocks or cut)
        if cut:
            assignment, stranded = self.datanet.gray_schedule(
                req.sub_id, unreachable=sorted(cut, key=repr)
            )
            if stranded:
                raise _Parked(f"{len(stranded)} blocks behind the partition cut")
            return assignment, True
        return self.datanet.schedule(req.sub_id), False

    def _start_job(self, now: float, tenant: str, req: JobRequest) -> bool:
        """Dispatch one queued job; returns True iff a slot was consumed."""
        tracer = self.obs.tracer
        wait = now - req.submit_time
        if req.deadline_s is not None and now >= req.deadline_s:
            # Expired while queued: resolve without ever taking a slot.
            self._resolve(
                JobOutcome(
                    job_id=req.job_id,
                    tenant=tenant,
                    status="deadline",
                    submit_time=req.submit_time,
                    start_time=now,
                    end_time=now,
                    wait_s=wait,
                )
            )
            return False

        assignment, degraded = self._schedule_for(now, req)

        builder = JobGraphBuilder(self.cost)
        sel_ids, local_data = builder.add_selection(
            f"{req.job_id}/select",
            self._view,
            req.sub_id,
            assignment,
            req.job.profile,
        )
        builder.add_analysis(req.job_id, req.job, local_data, deps=sel_ids)

        limits: List[Tuple[str, float]] = []
        if req.timeout_s is not None:
            limits.append(("timeout", req.timeout_s))
        if req.deadline_s is not None:
            limits.append(("deadline", req.deadline_s - now))
        cancel_at = min(v for _k, v in limits) if limits else None

        sim = DiscreteEventSimulator(slots_per_node=self.config.slots_per_node)
        result = sim.run(builder.tasks, cancel_at=cancel_at)

        if result.cancelled_tasks:
            # The limit cut the run.  Record the partial waves, then roll
            # them back through the tracer mark — cancelled work leaves no
            # durable spans, only the terminal cancellation record.
            assert cancel_at is not None
            which = min(limits, key=lambda kv: kv[1])[0]
            mark = tracer.mark()
            for task_id, (t_start, t_end) in sorted(
                result.timeline.intervals.items()
            ):
                tracer.record(
                    f"task/{task_id}",
                    category="service-task",
                    sim_start=now + t_start,
                    sim_end=now + t_end,
                )
            rolled_back = tracer.discard_from(mark)
            end = now + cancel_at
            outcome = JobOutcome(
                job_id=req.job_id,
                tenant=tenant,
                status=which,
                submit_time=req.submit_time,
                start_time=now,
                end_time=end,
                wait_s=wait,
                degraded=degraded,
            )
            if self.obs.metrics.enabled:
                self.obs.metrics.counter(
                    "service_spans_rolled_back_total",
                    help="partial task spans discarded on job cancellation",
                ).inc(rolled_back)
        else:
            end = now + result.makespan
            outcome = JobOutcome(
                job_id=req.job_id,
                tenant=tenant,
                status="completed",
                submit_time=req.submit_time,
                start_time=now,
                end_time=end,
                wait_s=wait,
                degraded=degraded,
                output_digest=self._output_digest(req),
            )

        self._run_token += 1
        token = self._run_token
        self._live_tokens.add(token)
        self._inflight[token] = (tenant, req)
        self._slots_free -= 1
        self._push(end, "finish", (token, outcome))
        if degraded:
            self._degraded_jobs += 1
            if self.obs.metrics.enabled:
                self.obs.metrics.counter(
                    "service_degraded_jobs_total",
                    help="jobs dispatched in degraded (fallback) mode",
                ).inc()
        return True

    def _dispatch(self, now: float) -> None:
        while (
            self._up
            and self._leader_up
            and self._slots_free > 0
            and self.controller.queue
        ):
            tenant, req = self.controller.queue.pop()
            try:
                self._start_job(now, tenant, req)
            except _Parked:
                self._parked.append((tenant, req))
                self._deferred += 1
        self._note_queue_depth(now)

    def _resolve(self, outcome: JobOutcome) -> None:
        """Record one job's terminal state (span, wait, counters)."""
        self.outcomes.append(outcome)
        self._waits[outcome.tenant].append(outcome.wait_s)
        self.obs.tracer.record(
            f"job/{outcome.job_id}",
            category="service-job",
            sim_start=outcome.start_time,
            sim_end=max(outcome.end_time, outcome.start_time + 1e-9),
            tenant=outcome.tenant,
            status=outcome.status,
            degraded=outcome.degraded,
        )
        if self.obs.metrics.enabled:
            metrics = self.obs.metrics
            if outcome.status == "completed":
                metrics.counter(
                    "service_jobs_completed_total", help="jobs that produced output"
                ).inc()
            else:
                metrics.counter(
                    "service_jobs_cancelled_total",
                    help="jobs cancelled by deadline or timeout",
                    labelnames=("reason",),
                ).inc(reason=outcome.status)
            waits = self._waits[outcome.tenant]
            metrics.gauge(
                "service_tenant_wait_seconds",
                help="mean admission-queue wait per tenant",
                labelnames=("tenant",),
            ).set(sum(waits) / len(waits), tenant=outcome.tenant)

    def _note_queue_depth(self, now: float) -> None:
        depth = len(self.controller.queue)
        self._max_queue_depth = max(self._max_queue_depth, depth)
        if self.obs.metrics.enabled:
            self.obs.metrics.gauge(
                "service_queue_depth", help="jobs waiting in the admission queue"
            ).set(depth)

    # -- ingest ------------------------------------------------------------------

    def _next_crash(self) -> Optional[ServiceCrash]:
        if self._crash_idx < len(self._crashes):
            return self._crashes[self._crash_idx]
        return None

    def _apply_append(self, now: float, batch: AppendBatch) -> None:
        """Index one append batch; a crash inside the window commits a prefix."""
        self._appends += 1
        view = self.cluster.append_records(self.dataset_name, list(batch.records))
        self._view = view
        covered = set(self.datanet.elasticmap.block_ids)
        covered.update(self.journal.committed_blocks)
        new_ids = [bid for bid in view.block_ids if bid not in covered]
        window_end = now + len(new_ids) * self.config.ingest_block_cost_s
        self._horizon = max(self._horizon, window_end)

        crash = self._next_crash()
        if crash is not None and now <= crash.time < window_end:
            # The driver dies mid-append: only the blocks whose journal
            # frames landed before the crash instant are durable.  The
            # in-memory DataNet is about to be lost, so it is not touched;
            # recovery re-indexes the tail from the stored blocks.
            committed = int((crash.time - now) // self.config.ingest_block_cost_s)
            self._commit_blocks(new_ids[:committed])
            return
        self.datanet.extend(view)
        for bid in new_ids:
            self.journal.append_block(self.datanet.elasticmap[bid])
            self._meta_put(self.datanet.elasticmap[bid])
        self._blocks_appended += len(new_ids)
        if self.obs.metrics.enabled and new_ids:
            self.obs.metrics.counter(
                "service_blocks_appended_total",
                help="blocks indexed incrementally from streamed appends",
            ).inc(len(new_ids))

    def _meta_put(self, block_map) -> None:
        """Spread one block's metadata; buffer it if no shard is alive.

        During a total shard outage the journal is still the durability
        anchor — the fleet write is retried when a shard heals, so the
        degraded window never blocks ingest.
        """
        if self.metastore is None:
            return
        try:
            self.metastore.put_block(block_map)
        except MetadataError:
            self._meta_pending[block_map.block_id] = block_map

    def _flush_meta_pending(self) -> None:
        for bid in sorted(self._meta_pending):
            try:
                self.metastore.put_block(self._meta_pending[bid])
            except MetadataError:
                continue
            del self._meta_pending[bid]

    def _commit_blocks(self, block_ids: Sequence[int]) -> None:
        """Journal a prefix of an append without touching the live DataNet."""
        builder = ElasticMapBuilder(**self._builder_config)
        fingerprint_of = getattr(self._view, "block_fingerprint", None)
        for bid in block_ids:
            block_map = builder.build_block(
                bid,
                self._view.block(bid).scan(),
                fingerprint=(
                    fingerprint_of(bid) if fingerprint_of is not None else None
                ),
            )
            self.journal.append_block(block_map)
            self._meta_put(block_map)
            self._blocks_appended += 1

    # -- crash & recovery --------------------------------------------------------

    def _crash(self, now: float, crash: ServiceCrash) -> None:
        self._crash_count += 1
        self._crash_idx += 1
        self._up = False
        # Every in-flight job dies with the driver; the admission ledger
        # already paid for them, so they re-enter the queue without a new
        # quota charge and reach a terminal state after the restart.
        for token in sorted(self._inflight):
            tenant, req = self._inflight[token]
            self._live_tokens.discard(token)
            self.controller.requeue(tenant, req)
            self._requeued += 1
        self._inflight.clear()
        self._slots_free = self.config.slots
        self.obs.tracer.record(
            "service/crash",
            category="service",
            sim_start=now,
            sim_end=now + crash.restart_delay_s,
            requeued=self._requeued,
        )
        if self.obs.metrics.enabled:
            self.obs.metrics.counter(
                "service_crashes_total", help="driver crashes survived"
            ).inc()
        self._push(now + crash.restart_delay_s, "restart", None)

    def _rebuild_metadata(self, array: ElasticMapArray) -> int:
        """Re-seat resident metadata from recovered entries.

        Blocks the crash caught before their journal frame landed are
        re-indexed from the durable data plane — deterministic per block,
        so the rebuilt array is byte-identical to the uninterrupted one —
        and journaled now.  Returns the number of re-indexed blocks.
        """
        needed = (
            self._view.fragments_needed()
            if hasattr(self._view, "fragments_needed")
            else {}
        )
        datanet = DataNet(
            array,
            self._view.placement(),
            nodes=list(self._view.nodes),
            needed=needed or None,
            obs=self.obs,
        )
        datanet._builder_config = dict(self._builder_config)
        readded = datanet.extend(self._view)
        for bid in datanet.elasticmap.block_ids:
            if self.journal.append_block(datanet.elasticmap[bid]):
                self._blocks_appended += 1
                self._meta_put(datanet.elasticmap[bid])
        self.datanet = datanet
        return readded

    def _restart(self, now: float) -> None:
        """Rebuild resident metadata from the journal, then resume."""
        if self._replicated:
            # The journal replicas are separate processes and survive the
            # driver: recovery reads committed state back from any quorum.
            entries = self.journal.recover()
            array = ElasticMapArray(
                [
                    BlockElasticMap.from_bytes(entries[bid])
                    for bid in sorted(entries)
                ]
            )
            replayed_records = len(entries)
        else:
            blob = self.journal.to_bytes()
            replayed = MetadataJournal.replay(blob)
            self.journal = MetadataJournal.from_bytes(blob)
            array = replayed.to_array()
            replayed_records = replayed.records
        self._journal_replays += 1
        readded = self._rebuild_metadata(array)
        self._up = True
        self.obs.tracer.record(
            "service/recovery",
            category="service",
            sim_start=now,
            sim_end=now,
            replayed_records=replayed_records,
            reindexed_blocks=readded,
        )
        if self.obs.metrics.enabled:
            self.obs.metrics.counter(
                "service_journal_replays_total",
                help="metadata recoveries from the write-ahead journal",
            ).inc()
        self._try_flush_appends(now)

    # -- leader failover ----------------------------------------------------------

    def _quorum_ok(self) -> bool:
        """Whether a majority of journal replicas is currently reachable."""
        if not self._replicated:
            return True
        up = sum(1 for r in self.journal.replicas.values() if r.available)
        return up >= self.journal.quorum

    def _try_flush_appends(self, now: float) -> None:
        """Apply backlogged ingest once the plane can accept it again."""
        if not (self._up and self._leader_up and self._quorum_ok()):
            return
        self._retry_attempts = 0
        self._retry_waited = 0.0
        backlog, self._append_backlog = self._append_backlog, []
        for batch in backlog:
            self._apply_append(now, batch)

    def _maybe_schedule_append_retry(self, now: float) -> None:
        """Probe for quorum return on the retry policy's backoff schedule.

        Heal events flush the backlog the instant a majority returns;
        these bounded probes only pace the case where the retry budget
        should give up first (surfacing ``max_elapsed`` in the drill).
        """
        if not self._replicated or self._retry_pending:
            return
        if not (self._up and self._leader_up):
            return  # restart / lrestore will flush instead
        if self._retry_attempts >= self._retry.max_attempts:
            return  # budget exhausted: wait for an explicit heal
        self._retry_attempts += 1
        delay = self._retry.backoff(
            self._retry_attempts,
            task_key="journal-append",
            seed=self.plan.seed,
            waited_s=self._retry_waited,
        )
        self._retry_waited += delay
        self._retry_pending = True
        self._push(now + delay, "jretry", None)

    def _leader_crash(self, now: float, crash: LeaderCrash) -> None:
        """The metadata leader dies: park in-flight work, start suspecting.

        Unlike :meth:`_crash` nothing is shed — admission stays open (the
        daemon's front door is not the leader), queued submissions simply
        wait, and in-flight jobs are re-queued without a fresh quota
        charge, to be replayed by the successor.
        """
        self._leader_up = False
        for token in sorted(self._inflight):
            tenant, req = self._inflight[token]
            self._live_tokens.discard(token)
            self.controller.requeue(tenant, req)
            self._requeued += 1
        self._inflight.clear()
        self._slots_free = self.config.slots
        # φ-accrual suspicion: replay the heartbeats the leader actually
        # sent into a detector, then find when the silence crosses the
        # threshold.  Deterministic — same cadence, same detection time.
        hb = self.config.heartbeat_interval_s
        detector = HealthDetector(expected_interval_s=hb)
        beats = int(now // hb) + 1
        for i in range(max(0, beats - detector.window), beats):
            detector.record("leader", i * hb)
        mean = detector.mean_interval("leader") or hb
        last_beat = (beats - 1) * hb
        detect_at = max(
            now, last_beat + detection_delay(mean, crash.suspicion_threshold)
        )
        self._push(detect_at, "failover", crash)
        self.obs.tracer.record(
            "service/leader-crash",
            category="service",
            sim_start=now,
            sim_end=detect_at,
            suspicion_threshold=crash.suspicion_threshold,
        )

    def _failover(self, now: float, crash: LeaderCrash) -> None:
        """Elect a successor, fence its epoch, recover from the quorum."""
        assert self._elector is not None
        live = [
            rid
            for rid in self.journal.replica_ids
            if self.journal.replicas[rid].available
        ]
        result = self._elector.elect(live)
        self._epoch = result.term
        self.journal.fence(self._epoch)
        self.cluster.install_fence(self._epoch)
        entries = self.journal.recover()
        array = ElasticMapArray(
            [BlockElasticMap.from_bytes(entries[bid]) for bid in sorted(entries)]
        )
        readded = self._rebuild_metadata(array)
        self._journal_replays += 1
        self._leadership_changes += 1
        resume = now + result.elapsed_s
        self._failover_downtime += resume - crash.time
        self._push(resume, "lrestore", (crash, result, readded))
        if self.obs.metrics.enabled:
            self.obs.metrics.counter(
                "service_leadership_changes_total",
                help="metadata-plane leader elections completed",
            ).inc()
            self.obs.metrics.gauge(
                "service_leader_term", help="current metadata-leader term"
            ).set(float(result.term))
            self.obs.metrics.gauge(
                "service_failover_latency_seconds",
                help="crash-to-resume latency of the last leader failover",
            ).set(resume - crash.time)

    def _leader_restore(
        self, now: float, crash: LeaderCrash, result, readded: int
    ) -> None:
        self._leader_up = True
        self.obs.tracer.record(
            "service/failover",
            category="service",
            sim_start=crash.time,
            sim_end=now,
            term=result.term,
            leader=result.leader,
            election_rounds=len(result.rounds),
            reindexed_blocks=readded,
        )
        self._try_flush_appends(now)
        self._dispatch(now)

    # -- event loop --------------------------------------------------------------

    def _push(self, time: float, kind: str, payload: object) -> None:
        self._seq += 1
        heapq.heappush(self._events, (time, _PRIO[kind], self._seq, kind, payload))

    def run(
        self,
        requests: Sequence[JobRequest],
        appends: Sequence[AppendBatch] = (),
    ) -> ServiceSummary:
        """Consume the full request/append streams; returns the summary."""
        self._events = []
        self._seq = 0
        for req in requests:
            self._push(req.submit_time, "submit", req)
        for batch in appends:
            self._push(batch.time, "append", batch)
        for crash in self._crashes:
            self._push(crash.time, "crash", crash)
        for window in self.meta_windows:
            self._push(window.start, "meta_down", window)
            self._push(window.heals_at, "meta_up", window)
        for part in self._partitions:
            self._push(part.start, "pstart", part)
            self._push(part.heals_at, "pheal", part)
        for lcrash in self._injector.leader_crashes_chronological():
            self._push(lcrash.time, "lcrash", lcrash)
        for jcrash in self._injector.journal_crashes_chronological():
            self._push(jcrash.time, "jcrash", jcrash)
            if jcrash.restores_at is not None:
                self._push(jcrash.restores_at, "jheal", jcrash)
        for mpart in self._injector.meta_partitions_chronological():
            self._push(mpart.start, "mpstart", mpart)
            self._push(mpart.heals_at, "mpheal", mpart)

        degraded_gauge = (
            self.obs.metrics.gauge(
                "service_degraded_mode",
                help="1 while a fault window forces fallback scheduling",
            )
            if self.obs.metrics.enabled
            else None
        )

        while self._events:
            now, _prio, _seq, kind, payload = heapq.heappop(self._events)
            self._horizon = max(self._horizon, now)
            if kind == "submit":
                req = payload
                try:
                    self.controller.submit(
                        req.tenant, req, now, open_for_business=self._up
                    )
                except Overloaded:
                    pass  # typed + ledgered; the stream carries on
                self._note_queue_depth(now)
                if self.obs.metrics.enabled:
                    self.obs.metrics.gauge(
                        "service_admission_rate",
                        help="fraction of submissions admitted so far",
                    ).set(
                        self.controller.admitted / self.controller.submitted
                    )
                self._dispatch(now)
            elif kind == "append":
                if self._up and self._leader_up and self._quorum_ok():
                    self._apply_append(now, batch=payload)
                else:
                    self._append_backlog.append(payload)
                    self._maybe_schedule_append_retry(now)
            elif kind == "jretry":
                self._retry_pending = False
                if self._quorum_ok():
                    self._try_flush_appends(now)
                elif self._append_backlog:
                    self._maybe_schedule_append_retry(now)
            elif kind == "lcrash":
                if self._up and self._leader_up:
                    self._leader_crash(now, payload)
            elif kind == "failover":
                self._failover(now, payload)
            elif kind == "lrestore":
                crash, result, readded = payload
                self._leader_restore(now, crash, result, readded)
            elif kind == "jcrash":
                self.journal.crash_replica(
                    payload.replica, at_byte=payload.at_byte
                )
            elif kind == "jheal":
                moved = self.journal.restore_replica(payload.replica)
                if self.obs.metrics.enabled and moved:
                    self.obs.metrics.counter(
                        "service_antientropy_frames_total",
                        help="journal frames copied to lagging replicas",
                    ).inc(moved)
                self._try_flush_appends(now)
            elif kind == "mpstart":
                self.journal.partition(payload.replicas)
            elif kind == "mpheal":
                moved = self.journal.heal(payload.replicas)
                if self.obs.metrics.enabled and moved:
                    self.obs.metrics.counter(
                        "service_antientropy_frames_total",
                        help="journal frames copied to lagging replicas",
                    ).inc(moved)
                self._try_flush_appends(now)
            elif kind == "crash":
                if (
                    self._crash_idx < len(self._crashes)
                    and self._crashes[self._crash_idx] is payload
                ):
                    if self._up:
                        self._crash(now, payload)
                    else:
                        # Landed inside another crash's downtime: the
                        # process is already dead, nothing extra to kill.
                        self._crash_idx += 1
            elif kind == "restart":
                self._restart(now)
                self._dispatch(now)
            elif kind == "meta_down":
                if self.metastore is not None:
                    self.metastore.fail_node(payload.node_id)
                if degraded_gauge is not None:
                    degraded_gauge.set(1.0)
            elif kind == "meta_up":
                if self.metastore is not None:
                    self.metastore.recover_node(payload.node_id)
                    self._flush_meta_pending()
                if degraded_gauge is not None:
                    degraded_gauge.set(1.0 if self._degraded_at(now) else 0.0)
            elif kind == "pstart":
                if degraded_gauge is not None:
                    degraded_gauge.set(1.0)
            elif kind == "pheal":
                if degraded_gauge is not None:
                    degraded_gauge.set(1.0 if self._degraded_at(now) else 0.0)
                parked, self._parked = self._parked, []
                for tenant, req in parked:
                    self.controller.requeue(tenant, req)
                self._dispatch(now)
            elif kind == "finish":
                token, outcome = payload
                if token not in self._live_tokens:
                    continue  # the crash already requeued this job
                self._live_tokens.discard(token)
                del self._inflight[token]
                self._slots_free += 1
                self._resolve(outcome)
                self._dispatch(now)

        if self._parked:
            raise ConfigError(
                f"{len(self._parked)} jobs still parked at end of run — the "
                "fault plan's partitions must heal before the stream ends"
            )
        if self._replicated and self.obs.metrics.enabled:
            self.obs.metrics.gauge(
                "service_journal_replica_lag",
                help="peak committed frames any journal replica was missing",
            ).set(float(self.journal.peak_lag))
        return self._summary()

    # -- summary -----------------------------------------------------------------

    def _summary(self) -> ServiceSummary:
        completed = [o for o in self.outcomes if o.status == "completed"]
        digest = hashlib.blake2b(digest_size=16)
        for outcome in sorted(completed, key=lambda o: o.job_id):
            digest.update(
                f"{outcome.job_id}|{outcome.output_digest}\n".encode("utf-8")
            )
        all_waits = sorted(w for waits in self._waits.values() for w in waits)
        if all_waits:
            p99_index = max(0, -(-99 * len(all_waits) // 100) - 1)
            wait_p99 = all_waits[p99_index]
        else:
            wait_p99 = 0.0
        return ServiceSummary(
            tenants=len(self.controller.tenants),
            submitted=self.controller.submitted,
            admitted=self.controller.admitted,
            completed=len(completed),
            rejected=dict(self.controller.rejected),
            cancelled_deadline=sum(
                1 for o in self.outcomes if o.status == "deadline"
            ),
            cancelled_timeout=sum(
                1 for o in self.outcomes if o.status == "timeout"
            ),
            requeued_on_crash=self._requeued,
            degraded_jobs=self._degraded_jobs,
            deferred_jobs=self._deferred,
            appends=self._appends,
            blocks_appended=self._blocks_appended,
            journal_records=self.journal.record_count,
            journal_replays=self._journal_replays,
            service_crashes=self._crash_count,
            max_queue_depth=self._max_queue_depth,
            makespan=self._horizon,
            wait_mean_by_tenant={
                tenant: sum(waits) / len(waits)
                for tenant, waits in self._waits.items()
                if waits
            },
            wait_p99_s=wait_p99,
            degraded_intervals=self.degraded_intervals(),
            leadership_changes=self._leadership_changes,
            failover_downtime=self._failover_downtime,
            journal_replica_lag=(
                self.journal.peak_lag if self._replicated else 0
            ),
            metadata_digest=array_digest(self.datanet.elasticmap),
            results_digest=digest.hexdigest(),
        )
